//! Umbrella crate for the IndexMAC reproduction workspace.
//!
//! Re-exports the individual crates so that the repository-level examples
//! and integration tests can reach everything through one dependency.
//! Library users should depend on [`indexmac`] (the core crate) directly.

#![warn(missing_docs)]

pub use indexmac as core;
pub use indexmac_isa as isa;
pub use indexmac_kernels as kernels;
pub use indexmac_mem as mem;
pub use indexmac_models as models;
pub use indexmac_sparse as sparse;
pub use indexmac_vpu as vpu;
