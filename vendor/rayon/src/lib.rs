//! Offline shim of the part of the `rayon` API this workspace uses.
//!
//! The build environment has no crates.io access, so this path crate
//! stands in for the real `rayon`. Parallelism is real: terminal
//! operations split the work into one contiguous chunk per thread and
//! run the chunks on `std::thread::scope` threads, preserving input
//! order in the output. What is *not* reproduced is rayon's
//! work-stealing scheduler — chunks are static, which is fine for the
//! uniform-cost grids this workspace fans out.

#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Threads terminal operations will use: the innermost installed pool
/// size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_num_threads)
}

/// Error from [`ThreadPoolBuilder::build`]; the shim never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads (0 means the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_num_threads),
        })
    }
}

/// A scoped thread-count override mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(prev));
        result
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

pub mod iter {
    //! Parallel iterator traits and adaptors.

    use super::current_num_threads;

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Types whose references iterate in parallel (`.par_iter()`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: Send + 'a;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Parallel iterator over references.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParVec<T>;
        fn into_par_iter(self) -> ParVec<T> {
            ParVec(self)
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = ParVec<&'a T>;
        fn par_iter(&'a self) -> ParVec<&'a T> {
            ParVec(self.iter().collect())
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = ParVec<&'a T>;
        fn par_iter(&'a self) -> ParVec<&'a T> {
            self.as_slice().par_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParVec<usize>;
        fn into_par_iter(self) -> ParVec<usize> {
            ParVec(self.collect())
        }
    }

    /// A parallel pipeline ending in a terminal operation.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Materialises the pipeline, running stages in parallel.
        fn drive(self) -> Vec<Self::Item>;

        /// Maps each element through `f` in parallel.
        fn map<R, F>(self, f: F) -> ParMap<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            ParMap { base: self, f }
        }

        /// Collects into any `FromIterator` collection, preserving the
        /// input order.
        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            self.drive().into_iter().collect()
        }

        /// Runs `f` on every element in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            let _ = self.map(f).drive();
        }

        /// Parallel sum.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.drive().into_iter().sum()
        }
    }

    /// Parallel iterator over an owned vector.
    pub struct ParVec<T>(Vec<T>);

    impl<T: Send> ParallelIterator for ParVec<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.0
        }
    }

    /// See [`ParallelIterator::map`].
    pub struct ParMap<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for ParMap<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            parallel_map(self.base.drive(), &self.f)
        }
    }

    /// Order-preserving parallel map: one contiguous chunk per thread.
    fn parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
        let threads = current_num_threads().max(1);
        if threads == 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk_len = items.len().div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut rest = items;
        while rest.len() > chunk_len {
            let tail = rest.split_off(chunk_len);
            chunks.push(rest);
            rest = tail;
        }
        chunks.push(rest);

        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::new();
            for h in handles {
                out.extend(h.join().expect("parallel worker panicked"));
            }
            out
        })
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude::*`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

pub use iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        let ids = Mutex::new(HashSet::new());
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(
            ids.into_inner().unwrap().len() > 1,
            "expected multiple worker threads"
        );
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 2);
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn par_iter_by_reference() {
        let v = vec![1u32, 2, 3, 4];
        let sum: u32 = v.par_iter().map(|x| *x).sum();
        assert_eq!(sum, 10);
        assert_eq!(v.len(), 4);
    }
}
