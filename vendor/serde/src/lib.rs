//! Offline shim of the part of the `serde` API this workspace uses.
//!
//! The build environment has no crates.io access, so this path crate
//! stands in for the real `serde`. Instead of the visitor-based
//! `Serializer` machinery (and the `serde_derive` proc macro, which
//! cannot be built offline without `syn`/`quote`), serialization goes
//! through one self-describing [`Value`] tree: types implement
//! [`Serialize`] by hand via [`Serialize::to_value`], and the
//! `serde_json` shim renders that tree. Field order is preserved.

#![warn(missing_docs)]

use std::collections::BTreeMap;

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of field name to value.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(name, value)` pairs, preserving order.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up `key` in an object; `None` for other variants or
    /// missing keys. First match wins on (malformed) duplicate keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`: floats verbatim, integers widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Types that can serialize themselves into a [`Value`] tree.
///
/// This replaces `#[derive(Serialize)]`: implement [`Serialize::to_value`]
/// listing the fields explicitly (see the `sweep` module of the core
/// crate for examples).
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $as)
            }
        }
    )*};
}

impl_serialize_int!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64,
    u64 => UInt as u64, usize => UInt as u64,
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64,
    i64 => Int as i64, isize => Int as i64,
);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::UInt(7));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn accessors_select_the_right_variants() {
        let v = Value::object([
            ("n", Value::UInt(7)),
            ("i", Value::Int(-3)),
            ("f", Value::Float(1.5)),
            ("s", Value::Str("hi".into())),
            ("b", Value::Bool(true)),
            ("a", Value::Array(vec![Value::Null])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("i").and_then(Value::as_i64), Some(-3));
        assert_eq!(v.get("i").and_then(Value::as_u64), None);
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(v.as_object().map(<[_]>::len), Some(6));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("n").is_none());
        assert_eq!(Value::UInt(u64::MAX).as_i64(), None);
    }

    #[test]
    fn object_builder_preserves_field_order() {
        let v = Value::object([("z", Value::Int(1)), ("a", Value::Int(2))]);
        match v {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
