//! Offline shim of the part of the `serde_json` API this workspace
//! uses: rendering the `serde` shim's [`Value`] tree to JSON text via
//! [`to_string`] / [`to_string_pretty`] / [`to_value`], and parsing
//! JSON text back into a [`Value`] tree via [`from_str`].

#![warn(missing_docs)]

use serde::Serialize;
pub use serde::Value;
use std::fmt::Write as _;

/// Serialization or parse error. Rendering is total in the shim, so
/// only [`from_str`] produces one.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any [`Serialize`] type into its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Numbers land in the narrowest fitting variant: non-negative
/// integers as `UInt`, negative integers as `Int`, everything with a
/// fraction or exponent as `Float`. Duplicate object keys are kept in
/// order (the [`Value::get`] accessor returns the first).
///
/// # Errors
///
/// Returns a positioned message for malformed input: unexpected
/// characters, unterminated strings/containers, bad escapes, numbers
/// out of range, or trailing garbage after the top-level value.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting limit for the recursive-descent parser; service payloads
/// are a handful of levels deep, so this bounds hostile input without
/// constraining real use.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain UTF-8 in one slice.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a following \uXXXX low half.
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ASCII by construction");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => render_seq(out, indent, depth, ('[', ']'), items.len(), |out, i| {
            render(&items[i], indent, depth + 1, out)
        }),
        Value::Object(fields) => {
            render_seq(out, indent, depth, ('{', '}'), fields.len(), |out, i| {
                render_string(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(&fields[i].1, indent, depth + 1, out);
            })
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(brackets.1);
}

fn render_float(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep integral floats readable ("2.0" not "2").
            let _ = write!(out, "{f:.1}");
        } else {
            let _ = write!(out, "{f}");
        }
    } else {
        // JSON has no Inf/NaN; real serde_json errors here, the shim
        // degrades to null.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::object([
            ("name", Value::Str("fig4".into())),
            ("speedup", Value::Float(1.75)),
            ("cells", Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            ("note", Value::Null),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"fig4","speedup":1.75,"cells":[1,2],"note":null}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::object([("a", Value::Array(vec![Value::Int(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(from_str("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(from_str("-0.25").unwrap(), Value::Float(-0.25));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(
            from_str("-9223372036854775808").unwrap(),
            Value::Int(i64::MIN)
        );
        assert_eq!(from_str(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parse_containers_and_nesting() {
        let v = from_str(r#"{"a":[1,2,{"b":null}],"c":"d"}"#).unwrap();
        assert_eq!(
            v,
            Value::object([
                (
                    "a",
                    Value::Array(vec![
                        Value::UInt(1),
                        Value::UInt(2),
                        Value::object([("b", Value::Null)]),
                    ])
                ),
                ("c", Value::Str("d".into())),
            ])
        );
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(
            from_str(" [ 1 , 2 ] ").unwrap(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\nd\tAé""#).unwrap(),
            Value::Str("a\"b\\c\nd\tAé".into())
        );
        // Surrogate-pair escape for U+1F600, and raw UTF-8 passthrough.
        assert_eq!(
            from_str("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert_eq!(
            from_str("\"\u{1F600}\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert_eq!(from_str(r#""A""#).unwrap(), Value::Str("A".into()));
        assert!(from_str(r#""\ud83d""#).is_err());
        assert!(from_str(r#""\x""#).is_err());
        assert!(from_str(r#""unterminated"#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "1.2.3", "01x", "nul", "--1", "1 2",
            "[1,]",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(from_str(&deep).is_err(), "depth limit missing");
    }

    #[test]
    fn render_parse_round_trip() {
        let v = Value::object([
            ("name", Value::Str("fig4 \"quoted\"\n".into())),
            ("speedup", Value::Float(1.75)),
            ("neg", Value::Int(-3)),
            ("big", Value::UInt(u64::MAX)),
            ("cells", Value::Array(vec![Value::UInt(1), Value::Null])),
        ]);
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }
}
