//! Offline shim of the part of the `serde_json` API this workspace
//! uses: rendering the `serde` shim's [`Value`] tree to JSON text via
//! [`to_string`] / [`to_string_pretty`] / [`to_value`].

#![warn(missing_docs)]

use serde::Serialize;
pub use serde::Value;
use std::fmt::Write as _;

/// Serialization error. The shim's rendering is total, so this is
/// never produced; it exists so call sites match the real API.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization failed: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any [`Serialize`] type into its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => render_seq(out, indent, depth, ('[', ']'), items.len(), |out, i| {
            render(&items[i], indent, depth + 1, out)
        }),
        Value::Object(fields) => {
            render_seq(out, indent, depth, ('{', '}'), fields.len(), |out, i| {
                render_string(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(&fields[i].1, indent, depth + 1, out);
            })
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(brackets.1);
}

fn render_float(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep integral floats readable ("2.0" not "2").
            let _ = write!(out, "{f:.1}");
        } else {
            let _ = write!(out, "{f}");
        }
    } else {
        // JSON has no Inf/NaN; real serde_json errors here, the shim
        // degrades to null.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::object([
            ("name", Value::Str("fig4".into())),
            ("speedup", Value::Float(1.75)),
            ("cells", Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            ("note", Value::Null),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"fig4","speedup":1.75,"cells":[1,2],"note":null}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::object([("a", Value::Array(vec![Value::Int(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
