//! Offline shim of the part of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so this path crate
//! stands in for the real `proptest`. It implements deterministic
//! random testing: strategies (`Just`, ranges, tuples, `prop_map`,
//! `prop_filter`, `prop_oneof!`, `collection::vec`, `any`), the
//! `proptest!` test macro and the `prop_assert*` assertion macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   failure message; the run is fully deterministic (the RNG is seeded
//!   from the test name), so a failure always reproduces.
//! * `prop_oneof!` ignores weights (none are used in this repo).
//! * The case count honours `PROPTEST_CASES` (env var) as an override,
//!   like the real crate.

pub mod test_runner {
    //! Test configuration, RNG and failure type.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test configuration; only `cases` is modelled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `#[test]` runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Resolves the case count, honouring `PROPTEST_CASES`.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed case with an explanatory message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }

        /// Real proptest distinguishes rejects from failures; the shim
        /// treats both as failures.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::fail(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic RNG driving every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeded from a stable hash of `name`, so each test owns a
        /// reproducible stream independent of execution order.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a, stable across platforms and runs.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self(StdRng::seed_from_u64(h))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform index in `0..n`.
        pub fn index(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Keeps only values for which `f` returns true, resampling
        /// otherwise.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        base: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.base.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 10000 consecutive samples",
                self.whence
            )
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over `arms`; sampling picks one arm uniformly.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.0.len());
            self.0[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (self.end - self.start) * unit as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

pub mod arbitrary {
    //! Canonical strategies per type (`any::<T>()`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            Self(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Accepted element-count specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.index(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among the listed strategies (weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{}` == `{}` ({:?} vs {:?})",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{}` != `{}` (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Declares property tests. Each `fn` runs `config.cases` times with
/// freshly sampled arguments; failures panic with the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let cases = config.resolved_cases();
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, cases, e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B(u8),
    }

    fn kind() -> impl Strategy<Value = Kind> {
        prop_oneof![Just(Kind::A), (0u8..32).prop_map(Kind::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..17,
            y in -5i64..6,
            z in 1u8..=4,
            f in -1.0f32..1.0,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..6).contains(&y));
            prop_assert!((1..=4).contains(&z));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in prop::collection::vec(any::<bool>(), 2..10),
            w in prop::collection::vec(0u32..5, 7),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert_eq!(w.len(), 7);
            prop_assert!(w.iter().all(|x| *x < 5));
        }

        #[test]
        fn oneof_and_filter_work(
            k in kind(),
            odd in (0u32..100).prop_filter("odd", |v| v % 2 == 1),
        ) {
            match k {
                Kind::A => {}
                Kind::B(b) => prop_assert!(b < 32),
            }
            prop_assert!(odd % 2 == 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::test_runner::TestRng::deterministic("t");
        let mut r2 = crate::test_runner::TestRng::deterministic("t");
        let s = (0u64..1000, -10i32..10);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
