//! Offline shim of the small part of the `rand` API this workspace uses.
//!
//! The build environment has no crates.io access, so this path crate
//! stands in for the real `rand`. It provides a seedable, deterministic
//! generator (`rngs::StdRng`) plus `SeedableRng` / `RngExt` with
//! `random_range` over the primitive ranges the workspace samples.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand` documents for reproducible streams. It
//! is **not** cryptographically secure and is only meant for seeded
//! experiment data.

#![warn(missing_docs)]

use std::ops::Range;

/// Constructors taking a seed; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source; mirrors the `rand::RngCore` surface we need.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// A uniform sample in `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                debug_assert!(span > 0, "empty range");
                // Multiply-shift bounded sampling (Lemire); the bias for
                // the tiny spans used in tests/experiments is negligible
                // and determinism is all that matters here.
                let hi128 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(hi128 as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
}

/// Convenience sampling methods; mirrors the `rand::Rng` extension
/// trait (named `RngExt` to match this workspace's imports).
pub trait RngExt: RngCore {
    /// A uniform sample from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample an empty range");
        T::sample_uniform(self, range.start, range.end)
    }

    /// A uniformly distributed `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators; mirrors `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.random_range(-1.0_f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = r.random_range(-100i32..100);
            assert!((-100..100).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }
}
