//! Offline shim of the part of the `criterion` API this workspace uses.
//!
//! The build environment has no crates.io access, so this path crate
//! stands in for the real `criterion`. It provides `Criterion`,
//! `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is intentionally simple: each
//! benchmark runs a short warm-up, then `sample_size` timed samples,
//! and prints the per-iteration minimum / mean / maximum. There is no
//! statistical analysis, plotting or baseline comparison.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point configuring and running benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target: self.sample_size,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, and an estimate of how many iterations fit a sample.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.target {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples collected)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// `name = ...; config = ...; targets = ...` form and the positional
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("shim/trivial_add", |b| b.iter(|| black_box(2u64) + 2));
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        trivial(&mut c);
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(2);
        targets = trivial
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        shim_group();
    }
}
