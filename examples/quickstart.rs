//! Quickstart: multiply a structured-sparse matrix by a dense one on the
//! simulated vector processor, with and without the `vindexmac`
//! instruction, and verify both against a reference product.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use indexmac::experiment::{compare_gemm, ExperimentConfig};
use indexmac::kernels::GemmDims;
use indexmac::sparse::NmPattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64 x 256 weight matrix pruned to 2:4 structured sparsity,
    // multiplied by a 256 x 128 dense feature matrix.
    let dims = GemmDims {
        rows: 64,
        inner: 256,
        cols: 128,
    };
    let pattern = NmPattern::P2_4;

    // Table I machine, L = 16 resident B rows, x4 unrolling. Every run
    // is checked against the reference product before reporting.
    let cfg = ExperimentConfig::paper();

    println!(
        "IndexMAC quickstart — GEMM {}x{}x{} with {pattern} sparse A",
        dims.rows, dims.inner, dims.cols
    );
    println!("simulated machine:\n{}\n", cfg.sim);

    let cmp = compare_gemm(dims, pattern, &cfg)?;

    println!("Row-Wise-SpMM (Algorithm 2, baseline):");
    println!("{}\n", cmp.baseline.report);
    println!("Proposed vindexmac kernel (Algorithm 3):");
    println!("{}\n", cmp.proposed.report);

    println!("speedup:                    {:.2}x", cmp.speedup());
    println!(
        "memory accesses eliminated: {:.1}% ({} -> {})",
        (1.0 - cmp.mem_ratio()) * 100.0,
        cmp.baseline.report.mem.total_accesses(),
        cmp.proposed.report.mem.total_accesses(),
    );
    println!(
        "vector loads eliminated:    {} -> {}",
        cmp.baseline.report.mem.vector_loads, cmp.proposed.report.mem.vector_loads
    );
    println!("\nboth kernels' outputs matched the reference product bit-for-bit-ordered math");
    Ok(())
}
