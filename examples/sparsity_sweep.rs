//! Sweep N:M sparsity templates on a fixed GEMM to see how the benefit
//! of `vindexmac` scales with the non-zero density — extending the
//! paper's 1:4 / 2:4 evaluation to the wider template family.
//!
//! ```text
//! cargo run --release --example sparsity_sweep
//! ```

use indexmac::experiment::{run_gemm, Algorithm, ExperimentConfig};
use indexmac::kernels::{Dataflow, GemmDims};
use indexmac::sparse::NmPattern;
use indexmac::sweep::{run_cells, SweepCell};
use indexmac::table::{fmt_pct, fmt_speedup, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = GemmDims {
        rows: 64,
        inner: 256,
        cols: 128,
    };
    let cfg = ExperimentConfig::paper();
    println!(
        "sparsity sweep on a {}x{}x{} GEMM (Table I machine, L=16, unroll x4)\n",
        dims.rows, dims.inner, dims.cols
    );

    // Dense reference point (Algorithm 1).
    let dense = run_gemm(dims, NmPattern::P1_4, Algorithm::Dense, &cfg)?;
    println!(
        "dense row-wise baseline (Algorithm 1): {} cycles\n",
        dense.report.cycles
    );

    // Fan the whole template family out in parallel; pin every cell to
    // the campaign seed so the rows match a serial compare_gemm loop.
    let patterns = [(1usize, 2usize), (1, 4), (2, 4), (1, 8), (2, 8), (4, 8)]
        .into_iter()
        .map(|(n, m)| NmPattern::new(n, m))
        .collect::<Result<Vec<_>, _>>()?;
    let cells = patterns
        .iter()
        .map(|&pattern| SweepCell {
            dims,
            pattern,
            dataflow: Dataflow::BStationary,
            seed: cfg.seed,
        })
        .collect();
    let result = run_cells(cells, &cfg)?;

    let mut table = Table::new(vec![
        "N:M",
        "density",
        "speedup vs Row-Wise-SpMM",
        "normalized mem accesses",
        "cycles vs dense",
    ]);
    for cell in &result {
        let cmp = &cell.comparison;
        table.row(vec![
            cell.cell.pattern.to_string(),
            fmt_pct(cell.cell.pattern.density()),
            fmt_speedup(cell.speedup()),
            fmt_pct(cell.mem_ratio()),
            fmt_speedup(dense.report.cycles as f64 / cmp.proposed.report.cycles as f64),
        ]);
    }
    print!("{}", table.render());
    println!("\ndenser templates do more MACs per row of A, so the eliminated B-loads");
    println!("are a larger share of the baseline and the memory cut grows (paper Fig. 6),");
    println!("while the speedup shrinks slightly (paper Section IV-B)");
    Ok(())
}
