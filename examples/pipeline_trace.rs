//! Look inside the machine: trace the first instructions of both
//! kernels through the pipeline and see exactly where the cycles go —
//! the per-nonzero B load latency of Row-Wise-SpMM and the
//! engine-to-core round trips that `vindexmac` halves.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use indexmac::isa::InstrClass;
use indexmac::kernels::{indexmac as imac, rowwise, GemmLayout, KernelParams};
use indexmac::sparse::{prune, DenseMatrix, NmPattern};
use indexmac::vpu::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::table_i();
    let a = prune::random_structured(4, 16, NmPattern::P2_4, 7);
    let b = DenseMatrix::random(16, 16, 8);
    let layout = GemmLayout::plan(&a, 16, &cfg, 16)?;
    let params = KernelParams {
        unroll: 1,
        ..Default::default()
    };

    for (name, program) in [
        (
            "Row-Wise-SpMM (Algorithm 2)",
            rowwise::build(&layout, &params)?,
        ),
        (
            "Proposed vindexmac (Algorithm 3)",
            imac::build(&layout, &params)?,
        ),
    ] {
        let mut sim = Simulator::new(cfg);
        layout.write_operands(&a, &b, sim.memory_mut());
        let (report, trace) = sim.run_traced(&program, 120)?;
        println!("================ {name} ================");
        println!("{trace}");
        println!(
            "total: {} cycles for {} instructions",
            report.cycles, report.instructions
        );
        for class in [
            InstrClass::VLoad,
            InstrClass::VMvToScalar,
            InstrClass::VMac,
            InstrClass::VIndexMac,
            InstrClass::VSlide,
        ] {
            if let Some(mean) = trace.mean_latency(class) {
                println!("  mean latency {class:?}: {mean:.1} cycles");
            }
        }
        if let Some(slow) = trace.slowest() {
            println!(
                "  slowest traced instruction: `{}` ({} cycles)",
                slow.instr,
                slow.latency()
            );
        }
        println!();
    }
    println!("note the vle32 through t0 (the moved B address) in Algorithm 2 and its");
    println!("latency; Algorithm 3 replaces it with a vindexmac that never leaves the");
    println!("register file");
    Ok(())
}
