//! Drop below the experiment API: hand-write a vector program that uses
//! `vindexmac.vx`, inspect its machine encoding, run it on the
//! simulator, and read the result out of simulated memory.
//!
//! This is the level a toolchain/intrinsics user would work at.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use indexmac::isa::{decode, encode, Instruction, Lmul, ProgramBuilder, Sew, VReg, XReg};
use indexmac::vpu::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::table_i();
    let mut sim = Simulator::new(cfg);

    // Operands in simulated memory: two "B rows" and a values vector.
    sim.memory_mut().write_f32_slice(0x1000, &[1.0; 16]); // B row 0
    sim.memory_mut().write_f32_slice(0x1040, &[10.0; 16]); // B row 1
    sim.memory_mut()
        .write_f32_slice(0x2000, &[2.0, 3.0, 0.0, 0.0]); // values

    // C += values[0] * B[0,:]  then (after a slide)  C += values[1] * B[1,:]
    let mut b = ProgramBuilder::new();
    b.li(XReg::A0, 16);
    b.push(Instruction::Vsetvli {
        rd: XReg::T0,
        rs1: XReg::A0,
        sew: Sew::E32,
        lmul: Lmul::M1,
    });
    b.li(XReg::A1, 0x1000);
    b.comment("preload two B rows into v20/v21 (the resident tile)");
    b.push(Instruction::Vle32 {
        vd: VReg::new(20),
        rs1: XReg::A1,
    });
    b.li(XReg::A1, 0x1040);
    b.push(Instruction::Vle32 {
        vd: VReg::new(21),
        rs1: XReg::A1,
    });
    b.li(XReg::A2, 0x2000);
    b.push(Instruction::Vle32 {
        vd: VReg::V4,
        rs1: XReg::A2,
    });
    b.comment("first nonzero: select v20 through the scalar register");
    b.li(XReg::T1, 20);
    b.push(Instruction::VindexmacVx {
        vd: VReg::V1,
        vs2: VReg::V4,
        rs: XReg::T1,
    });
    b.comment("walk the values register and select v21");
    b.push(Instruction::Vslide1downVx {
        vd: VReg::V4,
        vs2: VReg::V4,
        rs1: XReg::ZERO,
    });
    b.li(XReg::T1, 21);
    b.push(Instruction::VindexmacVx {
        vd: VReg::V1,
        vs2: VReg::V4,
        rs: XReg::T1,
    });
    b.li(XReg::A3, 0x3000);
    b.push(Instruction::Vse32 {
        vs3: VReg::V1,
        rs1: XReg::A3,
    });
    b.halt();
    let program = b.build();

    println!("program listing:\n{program}");

    // What a patched toolchain would emit for the custom instruction.
    let imac = Instruction::VindexmacVx {
        vd: VReg::V1,
        vs2: VReg::V4,
        rs: XReg::T1,
    };
    let word = encode(&imac)?;
    println!("vindexmac.vx v1, v4, t1  encodes to  {word:#010x}");
    println!("  opcode OP-V, funct3 OPMVX, funct6 0b011011 (free slot in RVV 1.0)");
    assert_eq!(decode(word)?, imac);
    println!("  decode(encode(..)) round-trips\n");

    let report = sim.run(&program)?;
    let c = sim.memory().read_f32_slice(0x3000, 16);
    println!("result C = {:?}...", &c[..4]);
    assert_eq!(c, vec![2.0 * 1.0 + 3.0 * 10.0; 16]);
    println!("expected 2*1 + 3*10 = 32 in every lane — correct\n");
    println!("{report}");
    Ok(())
}
