//! Simulate one CNN layer the way the paper's evaluation does: map the
//! convolution to an im2col GEMM, prune the weights to an N:M template,
//! and compare Row-Wise-SpMM against the vindexmac kernel.
//!
//! ```text
//! cargo run --release --example cnn_layer [layer-name]
//! # e.g. cargo run --release --example cnn_layer layer4.0.conv2
//! ```

use indexmac::experiment::{compare_layer, ExperimentConfig};
use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_speedup, Table};
use indexmac_models::resnet50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "layer2.0.conv2".to_string());
    let model = resnet50();
    let layer = model
        .layer(&wanted)
        .ok_or_else(|| format!("no ResNet50 layer named `{wanted}`; try e.g. layer2.0.conv2"))?;

    let cfg = ExperimentConfig::paper();
    println!("{layer}");
    let g = layer.gemm;
    let capped = cfg.caps.apply(g);
    if cfg.caps.clips(g) {
        println!(
            "simulating capped GEMM {}x{}x{} ({:.2}% of the full MAC volume; ratios are preserved)",
            capped.rows,
            capped.inner,
            capped.cols,
            cfg.caps.retained_fraction(g) * 100.0
        );
    }
    println!();

    let mut table = Table::new(vec![
        "sparsity",
        "baseline cycles",
        "proposed cycles",
        "speedup",
        "mem accesses (base->prop)",
    ]);
    for pattern in NmPattern::ALL {
        let r = compare_layer(layer, pattern, &cfg)?;
        let c = &r.comparison;
        table.row(vec![
            pattern.to_string(),
            c.baseline.report.cycles.to_string(),
            c.proposed.report.cycles.to_string(),
            fmt_speedup(c.speedup()),
            format!(
                "{} -> {}",
                c.baseline.report.mem.total_accesses(),
                c.proposed.report.mem.total_accesses()
            ),
        ]);
    }
    print!("{}", table.render());
    println!("\n(each row verified against the reference sparse x dense product)");
    Ok(())
}
