//! Integration of the transformer workload family with the experiment
//! pipeline: the attention/FFN GEMM decomposition end-to-end at smoke
//! scale, mirroring `cnn_pipeline.rs` for the repo's second scenario
//! family. Every simulated product is verified against the sparse
//! reference (tolerance-checked at f32, bit-exact at e8/e16).

use indexmac::experiment::{
    compare_layer, compare_model, run_gemm, Algorithm, ExperimentConfig, Precision,
};
use indexmac::sparse::NmPattern;
use indexmac_models::{GemmCaps, LayerKind, Model, ModelFamily, TransformerConfig};

fn smoke_cfg() -> ExperimentConfig {
    ExperimentConfig {
        caps: GemmCaps::smoke(),
        ..ExperimentConfig::transformer()
    }
}

/// A campaign at `precision` with smoke caps (the quantized arms run
/// the vx-vs-vvi pair; f32 runs the transformer campaign).
fn smoke_cfg_at(precision: Precision) -> ExperimentConfig {
    if precision.is_int() {
        ExperimentConfig {
            caps: GemmCaps::smoke(),
            ..ExperimentConfig::quantized(precision)
        }
    } else {
        smoke_cfg()
    }
}

#[test]
fn presets_have_expected_decompositions() {
    for preset in Model::transformer_models() {
        assert_eq!(preset.family, ModelFamily::Transformer);
        assert_eq!(preset.layers.len(), 12 * 6, "{}", preset.name);
        assert_eq!(preset.unique_shapes().len(), 3, "{}", preset.name);
        // 4 attention projections + 2 FFN projections per block.
        let attn = preset
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Attention)
            .count();
        let ffn = preset
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Ffn)
            .count();
        assert_eq!((attn, ffn), (48, 24), "{}", preset.name);
    }
    // Sequence lengths are the one geometric difference.
    let models = Model::transformer_models();
    let cols: Vec<usize> = models.iter().map(|m| m.layers[0].gemm.cols).collect();
    assert_eq!(cols, vec![128, 1024, 197]);
}

#[test]
fn heaviest_layers_run_both_generations_at_every_sew() {
    // The acceptance sweep: every preset's heaviest layers (the FFN
    // pair) through both kernel generations at e8, e16 and e32, each
    // verified against the sparse reference product.
    for preset in Model::transformer_models() {
        for layer in preset.heaviest_layers(2) {
            assert_eq!(layer.kind, LayerKind::Ffn, "{}", layer.name);
            for precision in [Precision::F32, Precision::I16, Precision::I8] {
                let cfg = smoke_cfg_at(precision);
                assert!(cfg.verify, "reference verification must be on");
                for algorithm in [Algorithm::IndexMac, Algorithm::IndexMac2] {
                    let r = run_gemm(layer.gemm, NmPattern::P2_4, algorithm, &cfg).unwrap_or_else(
                        |e| panic!("{} {} @{precision}: {e}", preset.name, layer.name),
                    );
                    assert!(r.report.cycles > 0);
                    assert_eq!(r.full_gemm, layer.gemm);
                }
            }
        }
    }
}

#[test]
fn attention_projections_win_on_both_patterns() {
    let bert = indexmac_models::bert_base();
    let q = bert.layer("block0.attn.q").unwrap();
    for pattern in NmPattern::EVALUATED {
        let r = compare_layer(q, pattern, &smoke_cfg()).unwrap();
        assert!(
            r.comparison.speedup() > 1.0,
            "{pattern}: speedup {}",
            r.comparison.speedup()
        );
    }
}

#[test]
fn one_block_aggregates_through_compare_model() {
    // One full encoder block (6 GEMMs) through the whole-model driver.
    let block = indexmac_models::bert_base().head(6);
    let c = compare_model(&block, NmPattern::P2_4, &smoke_cfg()).unwrap();
    assert_eq!(c.layers.len(), 6);
    assert!(c.total_speedup() > 1.0);
    assert!(c.total_mem_ratio() < 1.0);
    let (lo, hi) = c.speedup_range();
    assert!(lo > 1.0 && hi < 3.0, "range {lo}-{hi}");
    assert_eq!(c.model, "BERT-base-head");
}

#[test]
fn int8_preset_runs_the_e8_datapath() {
    // The quantized preset must simulate e8 with the vindexmac pair
    // even under the f32-default transformer campaign, with grouping
    // clamped to the widening budget (m2 × widen-4 would exceed m4).
    let block = indexmac_models::bert_base_int8().head(6);
    let c = compare_model(&block, NmPattern::P1_4, &smoke_cfg()).unwrap();
    assert_eq!(c.precision, Precision::I8);
    for l in &c.layers {
        assert_eq!(l.comparison.baseline.algorithm, Algorithm::IndexMac);
        assert_eq!(l.comparison.proposed.algorithm, Algorithm::IndexMac2);
        assert!(
            l.comparison.proposed.report.instructions < l.comparison.baseline.report.instructions,
            "{}: vvi must cut dynamic instructions at e8",
            l.name
        );
    }
}

#[test]
fn gpt2_context_and_vit_patch_sequences_simulate() {
    // The decoder (1024-token) and vision (197-token) presets exercise
    // ragged/odd column counts through the same pipeline.
    for preset in [indexmac_models::gpt2_small(), indexmac_models::vit_b16()] {
        let down = preset.layer("block0.ffn.down").unwrap();
        let r = compare_layer(down, NmPattern::P1_4, &smoke_cfg())
            .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
        assert!(r.comparison.speedup() > 1.0, "{}", preset.name);
    }
}

#[test]
fn seq_len_rescaling_reaches_the_simulation() {
    // A shorter sequence means fewer B columns before capping; at
    // sub-cap lengths the simulated shape itself must shrink.
    let short = TransformerConfig::bert_base().with_seq_len(16).model();
    let q = short.layer("block0.attn.q").unwrap();
    assert_eq!(q.gemm.cols, 16);
    let r = compare_layer(q, NmPattern::P2_4, &smoke_cfg()).unwrap();
    assert_eq!(r.comparison.proposed.gemm.cols, 16, "16 < smoke col cap");
}

#[test]
fn capping_preserves_the_transformer_speedup_within_tolerance() {
    // The EXPERIMENTS.md soundness claim, restated for the new family:
    // capped and larger-capped simulations of the BERT FFN agree on the
    // speedup ratio.
    let bert = indexmac_models::bert_base();
    let layer = bert.layer("block0.ffn.up").unwrap();
    let small = compare_layer(layer, NmPattern::P1_4, &smoke_cfg()).unwrap();
    let bigger_cfg = ExperimentConfig {
        caps: GemmCaps {
            max_rows: 32,
            max_inner: 256,
            max_cols: 64,
        },
        ..ExperimentConfig::transformer()
    };
    let bigger = compare_layer(layer, NmPattern::P1_4, &bigger_cfg).unwrap();
    let (s1, s2) = (small.comparison.speedup(), bigger.comparison.speedup());
    assert!(
        (s1 - s2).abs() / s2 < 0.25,
        "speedup unstable under capping: {s1} vs {s2}"
    );
}
