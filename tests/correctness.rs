//! Cross-crate integration: every kernel, on the full simulator, must
//! produce the reference sparse x dense product, across patterns,
//! dataflows, unroll factors and deliberately awkward shapes.

use indexmac_kernels::{
    dense, indexmac, rowwise, scalar_idx, verify, Dataflow, GemmLayout, KernelParams,
};
use indexmac_sparse::{prune, DenseMatrix, NmPattern};
use indexmac_vpu::SimConfig;

fn check_all_kernels(rows: usize, inner: usize, cols: usize, pattern: NmPattern, seed: u64) {
    let cfg = SimConfig::table_i();
    let a = prune::random_structured(rows, inner, pattern, seed);
    let b = DenseMatrix::random(inner, cols, seed + 1);
    let layout = GemmLayout::plan(&a, cols, &cfg, 16).unwrap();
    let params = KernelParams::default();

    for (name, program) in [
        ("rowwise", rowwise::build(&layout, &params).unwrap()),
        ("indexmac", indexmac::build(&layout, &params).unwrap()),
        ("scalar_idx", scalar_idx::build(&layout, &params).unwrap()),
    ] {
        verify::run_and_check(&program, &a, &b, &layout, &cfg).unwrap_or_else(|e| {
            panic!("{name} failed on {rows}x{inner}x{cols} {pattern} seed {seed}: {e}")
        });
    }

    // The dense baseline computes the same product (A expanded).
    let p1 = dense::build(&layout, &params).unwrap();
    let run = verify::run_kernel(&p1, &a, &b, &layout, &cfg).unwrap();
    let reference = a.to_dense().matmul(&b).unwrap();
    assert!(
        run.c.approx_eq(&reference, 1e-3),
        "dense kernel diverged on {rows}x{inner}x{cols} {pattern}: {}",
        run.c.max_abs_diff(&reference)
    );
}

#[test]
fn paper_patterns_on_square_shapes() {
    for pattern in [NmPattern::P1_2, NmPattern::P1_4, NmPattern::P2_4] {
        check_all_kernels(8, 32, 32, pattern, 100);
    }
}

#[test]
fn awkward_shapes() {
    // rows not divisible by unroll; inner not by L; cols not by VL.
    check_all_kernels(5, 17, 3, NmPattern::P1_4, 200);
    check_all_kernels(9, 50, 31, NmPattern::P2_4, 201);
    check_all_kernels(1, 16, 1, NmPattern::P1_4, 202);
    check_all_kernels(3, 100, 65, NmPattern::P1_2, 203);
}

#[test]
fn wide_patterns() {
    check_all_kernels(6, 64, 20, NmPattern::new(1, 8).unwrap(), 300);
    check_all_kernels(6, 64, 20, NmPattern::new(2, 8).unwrap(), 301);
    check_all_kernels(4, 32, 20, NmPattern::new(4, 4).unwrap(), 302); // fully dense blocks
}

#[test]
fn every_dataflow_and_unroll_is_correct() {
    let cfg = SimConfig::table_i();
    let a = prune::random_structured(7, 48, NmPattern::P2_4, 400);
    let b = DenseMatrix::random(48, 22, 401);
    let layout = GemmLayout::plan(&a, 22, &cfg, 16).unwrap();
    for dataflow in Dataflow::ALL {
        for unroll in [1, 2, 3, 4] {
            let params = KernelParams { unroll, dataflow };
            let p = rowwise::build(&layout, &params).unwrap();
            verify::run_and_check(&p, &a, &b, &layout, &cfg)
                .unwrap_or_else(|e| panic!("rowwise {dataflow} u{unroll}: {e}"));
            let p = indexmac::build(&layout, &params).unwrap();
            verify::run_and_check(&p, &a, &b, &layout, &cfg)
                .unwrap_or_else(|e| panic!("indexmac u{unroll}: {e}"));
        }
    }
}

#[test]
fn tile_rows_variants_are_correct() {
    let cfg = SimConfig::table_i();
    let a = prune::random_structured(5, 40, NmPattern::P1_4, 500);
    let b = DenseMatrix::random(40, 18, 501);
    for tile_rows in [4, 8, 12, 16, 20] {
        let layout = GemmLayout::plan(&a, 18, &cfg, tile_rows).unwrap();
        let p = indexmac::build(&layout, &KernelParams::default()).unwrap();
        verify::run_and_check(&p, &a, &b, &layout, &cfg)
            .unwrap_or_else(|e| panic!("L={tile_rows}: {e}"));
    }
}

#[test]
fn non_table_i_vlens_are_correct() {
    for vlen in [256usize, 1024] {
        let cfg = SimConfig::table_i().with_vlen(vlen);
        let a = prune::random_structured(5, 32, NmPattern::P2_4, 600);
        let b = DenseMatrix::random(32, 40, 601);
        let layout = GemmLayout::plan(&a, 40, &cfg, 16).unwrap();
        for p in [
            rowwise::build(&layout, &KernelParams::default()).unwrap(),
            indexmac::build(&layout, &KernelParams::default()).unwrap(),
        ] {
            verify::run_and_check(&p, &a, &b, &layout, &cfg)
                .unwrap_or_else(|e| panic!("vlen {vlen}: {e}"));
        }
    }
}
