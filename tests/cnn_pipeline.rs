//! Integration of the CNN tables with the experiment pipeline: the
//! evaluation path of the paper end-to-end at smoke scale.

use indexmac::experiment::{compare_layer, compare_model, ExperimentConfig};
use indexmac::sparse::NmPattern;
use indexmac_models::{densenet121, inception_v3, resnet50, GemmCaps};

fn smoke_cfg() -> ExperimentConfig {
    ExperimentConfig {
        caps: GemmCaps::smoke(),
        ..ExperimentConfig::paper()
    }
}

#[test]
fn model_tables_have_paper_layer_counts() {
    assert_eq!(resnet50().layers.len(), 53);
    assert_eq!(densenet121().layers.len(), 120);
    assert_eq!(inception_v3().layers.len(), 94);
}

#[test]
fn every_resnet_layer_simulates_and_wins() {
    // Head, middle and tail layers of ResNet50 through the whole
    // pipeline, verified against the reference product.
    let model = resnet50();
    for idx in [0, 1, 20, 40, 52] {
        let r = compare_layer(&model.layers[idx], NmPattern::P1_4, &smoke_cfg())
            .unwrap_or_else(|e| panic!("layer {idx}: {e}"));
        assert!(
            r.comparison.speedup() > 1.0,
            "layer {} speedup {}",
            r.name,
            r.comparison.speedup()
        );
    }
}

#[test]
fn odd_inception_layers_simulate() {
    // Factorised 1x7 / 7x1 convolutions produce unusual inner dims.
    let model = inception_v3();
    for name in [
        "Mixed_6b.branch7x7_2",
        "Mixed_6b.branch7x7_3",
        "Mixed_7b.branch3x3_2a",
    ] {
        let layer = model.layer(name).unwrap();
        let r = compare_layer(layer, NmPattern::P2_4, &smoke_cfg())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.comparison.speedup() > 1.0);
    }
}

#[test]
fn model_comparison_aggregates() {
    // A truncated DenseNet through compare_model.
    let model = densenet121().head(6);
    let c = compare_model(&model, NmPattern::P2_4, &smoke_cfg()).unwrap();
    assert_eq!(c.layers.len(), 6);
    assert!(c.total_speedup() > 1.0);
    assert!(c.total_mem_ratio() < 0.6);
    let (lo, hi) = c.speedup_range();
    assert!(lo > 1.0 && hi < 3.0, "range {lo}-{hi}");
}

#[test]
fn capping_preserves_the_speedup_within_tolerance() {
    // The soundness claim behind EXPERIMENTS.md: capped and
    // larger-capped simulations of the same layer agree on the ratio.
    let model = resnet50();
    let layer = &model.layers[10];
    let small = compare_layer(layer, NmPattern::P1_4, &smoke_cfg()).unwrap();
    let bigger_cfg = ExperimentConfig {
        caps: GemmCaps {
            max_rows: 32,
            max_inner: 256,
            max_cols: 64,
        },
        ..ExperimentConfig::paper()
    };
    let bigger = compare_layer(layer, NmPattern::P1_4, &bigger_cfg).unwrap();
    let (s1, s2) = (small.comparison.speedup(), bigger.comparison.speedup());
    assert!(
        (s1 - s2).abs() / s2 < 0.25,
        "speedup unstable under capping: {s1} vs {s2}"
    );
}
