//! End-to-end property test: for random shapes, patterns and seeds, the
//! full pipeline (prune -> plan -> generate -> simulate on the decoupled
//! machine) equals the reference product, and the proposed kernel never
//! issues more memory accesses than the baseline.

use indexmac_kernels::{indexmac, rowwise, verify, GemmLayout, KernelParams};
use indexmac_sparse::{prune, DenseMatrix, NmPattern};
use indexmac_vpu::SimConfig;
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = NmPattern> {
    prop_oneof![
        Just(NmPattern::P1_2),
        Just(NmPattern::P1_4),
        Just(NmPattern::P2_4),
        Just(NmPattern::new(2, 8).unwrap()),
    ]
}

proptest! {
    // Each case runs two full timed simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_kernels_match_reference(
        rows in 1usize..10,
        inner in 1usize..70,
        cols in 1usize..40,
        pattern in pattern_strategy(),
        unroll in 1usize..=4,
        seed in 0u64..10_000,
    ) {
        let cfg = SimConfig::table_i();
        let a = prune::random_structured(rows, inner, pattern, seed);
        let b = DenseMatrix::random(inner, cols, seed ^ 0xABCD);
        let layout = GemmLayout::plan(&a, cols, &cfg, 16).unwrap();
        let params = KernelParams { unroll, ..Default::default() };

        let base = verify::run_and_check(
            &rowwise::build(&layout, &params).unwrap(), &a, &b, &layout, &cfg)
            .map_err(|e| TestCaseError::fail(format!("rowwise: {e}")))?;
        let prop = verify::run_and_check(
            &indexmac::build(&layout, &params).unwrap(), &a, &b, &layout, &cfg)
            .map_err(|e| TestCaseError::fail(format!("indexmac: {e}")))?;

        // Exact traffic relation: the proposed kernel trades one B load
        // per (row, slot) for L preloads per (k-tile, col-tile); all
        // other accesses (metadata, C) are identical. (For tiny row
        // counts the preload is not amortised and the proposed kernel
        // may legitimately access memory *more* — the paper's layers
        // have hundreds of rows.)
        let tiles = (layout.num_ktiles * layout.num_coltiles) as u64;
        let per_nonzero_loads = (rows * layout.slots_per_tile) as u64 * tiles;
        let preloads = layout.tile_rows as u64 * tiles;
        prop_assert_eq!(
            prop.report.mem.total_accesses() + per_nonzero_loads,
            base.report.mem.total_accesses() + preloads,
            "traffic mismatch: proposed {:?} baseline {:?}",
            prop.report.mem,
            base.report.mem
        );
    }
}
