//! Integration tests asserting the paper's quantitative claims hold in
//! this reproduction (with tolerances appropriate to a re-implemented
//! timing model — see EXPERIMENTS.md for the measured values).

use indexmac::experiment::{compare_gemm, run_gemm, Algorithm, ExperimentConfig};
use indexmac::kernels::{Dataflow, GemmDims, KernelParams};
use indexmac::sparse::NmPattern;
use indexmac_models::GemmCaps;

/// A representative mid-network layer shape at evaluation scale.
const DIMS: GemmDims = GemmDims {
    rows: 64,
    inner: 512,
    cols: 128,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        caps: GemmCaps {
            max_rows: 64,
            max_inner: 512,
            max_cols: 128,
        },
        ..ExperimentConfig::paper()
    }
}

#[test]
fn speedups_fall_in_the_papers_bands() {
    // Paper Fig. 4: 1.60x-2.15x (1:4) and 1.63x-1.99x (2:4); allow a
    // modest margin for the re-implemented substrate.
    let c14 = compare_gemm(DIMS, NmPattern::P1_4, &cfg()).unwrap();
    assert!(
        (1.5..=2.4).contains(&c14.speedup()),
        "1:4 speedup {} outside the paper's band",
        c14.speedup()
    );
    let c24 = compare_gemm(DIMS, NmPattern::P2_4, &cfg()).unwrap();
    assert!(
        (1.5..=2.2).contains(&c24.speedup()),
        "2:4 speedup {} outside the paper's band",
        c24.speedup()
    );
}

#[test]
fn sparser_template_speeds_up_more() {
    // Paper Section IV-B: 2:4 speedup is slightly lower than 1:4
    // because A-side work doubles while the B-side optimisation target
    // stays the same.
    let c14 = compare_gemm(DIMS, NmPattern::P1_4, &cfg()).unwrap();
    let c24 = compare_gemm(DIMS, NmPattern::P2_4, &cfg()).unwrap();
    assert!(
        c14.speedup() > c24.speedup(),
        "1:4 ({}) must outpace 2:4 ({})",
        c14.speedup(),
        c24.speedup()
    );
}

#[test]
fn memory_access_reductions_match_fig6() {
    // Paper Fig. 6: ~52% normalized accesses for 1:4, ~35% for 2:4.
    let c14 = compare_gemm(DIMS, NmPattern::P1_4, &cfg()).unwrap();
    assert!(
        (0.45..=0.60).contains(&c14.mem_ratio()),
        "1:4 normalized accesses {} (paper ~0.52)",
        c14.mem_ratio()
    );
    let c24 = compare_gemm(DIMS, NmPattern::P2_4, &cfg()).unwrap();
    assert!(
        (0.30..=0.42).contains(&c24.mem_ratio()),
        "2:4 normalized accesses {} (paper ~0.35)",
        c24.mem_ratio()
    );
}

#[test]
fn proposed_eliminates_per_nonzero_vector_loads() {
    let c = compare_gemm(DIMS, NmPattern::P1_4, &cfg()).unwrap();
    // Baseline loads one B slice per nonzero; proposed only preloads
    // tiles, so its vector-load count must be several times smaller.
    assert!(
        c.proposed.report.mem.vector_loads * 2 < c.baseline.report.mem.vector_loads,
        "proposed {} vs baseline {} vector loads",
        c.proposed.report.mem.vector_loads,
        c.baseline.report.mem.vector_loads
    );
    // And it halves the cross-domain synchronisations (one move per
    // nonzero instead of two).
    assert_eq!(c.proposed.report.v2s_syncs * 2, c.baseline.report.v2s_syncs);
}

/// A shape whose B matrix (512 x 512 x 4 B = 1 MiB) overflows the 512 KiB
/// L2 — the full-size-layer regime the paper's dataflow claim is about.
/// (At small B sizes the dataflows tie, because B stays L2-resident no
/// matter the loop order.)
const BIG_B_DIMS: GemmDims = GemmDims {
    rows: 64,
    inner: 512,
    cols: 512,
};

fn big_b_cfg(dataflow: Dataflow) -> ExperimentConfig {
    ExperimentConfig {
        caps: GemmCaps {
            max_rows: 64,
            max_inner: 512,
            max_cols: 512,
        },
        params: KernelParams {
            unroll: 4,
            dataflow,
        },
        ..ExperimentConfig::paper()
    }
}

#[test]
fn b_stationary_is_the_best_rowwise_dataflow() {
    // Paper Section IV-A.
    let mut cycles = Vec::new();
    for dataflow in Dataflow::ALL {
        let c = big_b_cfg(dataflow);
        let r = run_gemm(BIG_B_DIMS, NmPattern::P1_4, Algorithm::RowWiseSpmm, &c).unwrap();
        cycles.push((dataflow, r.report.cycles));
    }
    let best = cycles.iter().min_by_key(|(_, c)| *c).unwrap();
    assert_eq!(best.0, Dataflow::BStationary, "cycles: {cycles:?}");
}

#[test]
fn c_stationary_cuts_stores_not_time() {
    let b_st = run_gemm(
        BIG_B_DIMS,
        NmPattern::P1_4,
        Algorithm::RowWiseSpmm,
        &big_b_cfg(Dataflow::BStationary),
    )
    .unwrap();
    let c_st = run_gemm(
        BIG_B_DIMS,
        NmPattern::P1_4,
        Algorithm::RowWiseSpmm,
        &big_b_cfg(Dataflow::CStationary),
    )
    .unwrap();
    // "its total number of memory stores would decrease significantly"
    assert!(c_st.report.mem.vector_stores * 4 < b_st.report.mem.vector_stores);
    // "...does not improve the total execution time"
    assert!(c_st.report.cycles as f64 >= 0.95 * b_st.report.cycles as f64);
}

#[test]
fn unrolling_benefits_both_kernels() {
    // Paper Section IV-A: "Both approaches benefit equally from loop
    // unrolling." Require >=20% gain for each and gains within 2x of
    // each other.
    let gain = |alg: Algorithm| {
        let u1 = ExperimentConfig {
            params: KernelParams {
                unroll: 1,
                ..Default::default()
            },
            ..cfg()
        };
        let u4 = cfg();
        let r1 = run_gemm(DIMS, NmPattern::P1_4, alg, &u1).unwrap();
        let r4 = run_gemm(DIMS, NmPattern::P1_4, alg, &u4).unwrap();
        r1.report.cycles as f64 / r4.report.cycles as f64
    };
    let g_base = gain(Algorithm::RowWiseSpmm);
    let g_prop = gain(Algorithm::IndexMac);
    assert!(g_base > 1.2, "baseline unroll gain {g_base}");
    assert!(g_prop > 1.2, "proposed unroll gain {g_prop}");
    assert!(
        (0.5..=2.0).contains(&(g_base / g_prop)),
        "gains diverge: baseline {g_base} vs proposed {g_prop}"
    );
}

#[test]
fn structured_sparsity_beats_dense_execution() {
    // The motivation for pruning at all: 1:4 sparse execution must be
    // far faster than the dense kernel on the same shape.
    let dense = run_gemm(DIMS, NmPattern::P1_4, Algorithm::Dense, &cfg()).unwrap();
    let sparse = run_gemm(DIMS, NmPattern::P1_4, Algorithm::IndexMac, &cfg()).unwrap();
    assert!(sparse.report.cycles * 2 < dense.report.cycles);
}

/// The BERT-base FFN-up GEMM at its standard fine-tuning sequence
/// length (d_ff=3072 output features, d_model=768 inputs, 128 tokens)
/// — the heaviest shape of the transformer workload family.
const BERT_FFN: GemmDims = GemmDims {
    rows: 3072,
    inner: 768,
    cols: 128,
};

#[test]
fn indexmac2_beats_vx_at_the_bert_ffn_shape() {
    // Pinned transformer regression: the second-generation kernel
    // (`vindexmac.vvi` under m2 register grouping) must beat the
    // `vindexmac.vx` baseline on BOTH cycles and dynamic instructions
    // at the BERT-base FFN shape, for 1:4 and 2:4 sparsity. The
    // configuration is exactly what `indexmac-cli model --preset
    // bert-base` runs (`ExperimentConfig::transformer()`, default
    // caps), so the CLI's aggregate speedup columns reproduce these
    // bands. Measured: 1.92x (1:4) and 2.43x (2:4).
    let cfg = ExperimentConfig::transformer();
    assert_eq!(cfg.lmul, 2);
    {
        // The shape really is the preset's FFN layer, not a transcription.
        let bert = indexmac_models::bert_base();
        assert_eq!(bert.layer("block0.ffn.up").unwrap().gemm, BERT_FFN);
    }
    for (pattern, band) in [(NmPattern::P1_4, 1.7..=2.1), (NmPattern::P2_4, 2.2..=2.7)] {
        let c = compare_gemm(BERT_FFN, pattern, &cfg).unwrap();
        assert_eq!(c.baseline.algorithm, Algorithm::IndexMac);
        assert_eq!(c.proposed.algorithm, Algorithm::IndexMac2);
        assert!(
            c.proposed.report.cycles < c.baseline.report.cycles,
            "{pattern}: vvi {} cycles vs vx {}",
            c.proposed.report.cycles,
            c.baseline.report.cycles
        );
        assert!(
            c.proposed.report.instructions < c.baseline.report.instructions,
            "{pattern}: vvi {} instret vs vx {}",
            c.proposed.report.instructions,
            c.baseline.report.instructions
        );
        assert!(
            band.contains(&c.speedup()),
            "{pattern}: speedup {} left the pinned band {band:?}",
            c.speedup()
        );
    }
}

#[test]
fn vvi_lead_survives_every_timing_backend_at_bert_ffn() {
    // The follow-up work's argument (arXiv 2501.10189): `vindexmac.vvi`
    // has zero scalar-side coupling per nonzero, so moving from the
    // in-order scoreboard to an out-of-order scalar core should widen —
    // never shrink — its cycle lead over `vindexmac.vx`, whose per-index
    // vector-to-scalar round trips serialise through the ROB commit on
    // any machine. Run the pinned BERT-FFN comparison under all three
    // backends from one decoded program pair and check:
    //   * instret is bit-identical across backends (timing models only
    //     reorder cycles, never instructions);
    //   * the OoO lead (vx/vvi cycles) is no smaller than in-order's,
    //     compared exactly by cross-multiplication in u128.
    use indexmac::vpu::TimingKind;
    indexmac::experiment::reset_decode_cache();
    let mut by_backend = Vec::new();
    for kind in TimingKind::ALL {
        let cfg = ExperimentConfig::transformer().with_timing(kind);
        let c = compare_gemm(BERT_FFN, NmPattern::P1_4, &cfg).unwrap();
        assert_eq!(c.baseline.algorithm, Algorithm::IndexMac);
        assert_eq!(c.proposed.algorithm, Algorithm::IndexMac2);
        by_backend.push((kind, c));
    }
    // One decoded program pair drove all three backends: the decode
    // cache saw exactly two kernels (vx and vvi), everything else hit.
    let stats = indexmac::experiment::decode_cache_stats();
    assert_eq!(stats.misses, 2, "backends must reuse the decoded pair");
    let (_, base) = &by_backend[0];
    for (kind, c) in &by_backend {
        assert_eq!(
            c.baseline.report.instructions, base.baseline.report.instructions,
            "{kind}: vx instret must be backend-invariant"
        );
        assert_eq!(
            c.proposed.report.instructions, base.proposed.report.instructions,
            "{kind}: vvi instret must be backend-invariant"
        );
        assert!(
            c.proposed.report.cycles < c.baseline.report.cycles,
            "{kind}: vvi {} cycles vs vx {}",
            c.proposed.report.cycles,
            c.baseline.report.cycles
        );
    }
    let lead = |c: &indexmac::experiment::GemmComparison| {
        (
            c.baseline.report.cycles as u128,
            c.proposed.report.cycles as u128,
        )
    };
    let (vx_io, vvi_io) = lead(&by_backend[0].1);
    let (vx_ooo, vvi_ooo) = lead(&by_backend[2].1);
    assert!(
        vx_ooo * vvi_io >= vx_io * vvi_ooo,
        "OoO lead {:.3} must not shrink below in-order lead {:.3}",
        vx_ooo as f64 / vvi_ooo as f64,
        vx_io as f64 / vvi_io as f64
    );
}

#[test]
fn tile_preload_bound_enforced() {
    // Paper Section III: at most M*VL/N rows of B are addressable. For
    // an 8:8 pattern that bound is 16, so L=20 must be rejected even
    // though the register budget would allow it.
    let cfg_l20 = ExperimentConfig {
        tile_rows: 20,
        ..cfg()
    };
    let r = run_gemm(
        GemmDims {
            rows: 8,
            inner: 40,
            cols: 16,
        },
        NmPattern::new(8, 8).unwrap(),
        Algorithm::IndexMac,
        &cfg_l20,
    );
    assert!(r.is_err(), "L beyond M*VL/N must be rejected");
}
