//! Property tests over randomized transformer geometries: the
//! layer→GEMM decomposition must hold its invariants (MAC totals,
//! shape consistency, cap fitting) for any valid architecture, and a
//! randomly chosen layer must simulate correctly against the sparse
//! reference through both kernel generations.

use indexmac::experiment::{run_gemm, Algorithm, ExperimentConfig, Precision};
use indexmac::sparse::NmPattern;
use indexmac_models::{GemmCaps, LayerKind, ModelFamily, TransformerConfig, TransformerKind};
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = NmPattern> {
    prop_oneof![
        Just(NmPattern::P1_2),
        Just(NmPattern::P1_4),
        Just(NmPattern::P2_4),
        Just(NmPattern::new(2, 8).unwrap()),
    ]
}

fn kind_strategy() -> impl Strategy<Value = TransformerKind> {
    prop_oneof![
        Just(TransformerKind::Encoder),
        Just(TransformerKind::Decoder),
        Just(TransformerKind::Vision),
    ]
}

/// A randomized but always-valid geometry: `d_model` is a multiple of
/// 32 and the head count divides it.
fn geometry_strategy() -> impl Strategy<Value = TransformerConfig> {
    (
        1usize..=12,  // d_model / 32
        0usize..=3,   // log2(num_heads) — heads ∈ {1,2,4,8} divide 32k
        1usize..=4,   // d_ff / d_model
        1usize..=4,   // blocks
        1usize..=384, // seq_len
        kind_strategy(),
    )
        .prop_map(|(dm32, heads_log2, ff_mult, blocks, seq_len, kind)| {
            let d_model = 32 * dm32;
            TransformerConfig::new(
                "prop",
                kind,
                d_model,
                1 << heads_log2,
                ff_mult * d_model,
                blocks,
                seq_len,
            )
        })
}

proptest! {
    // Pure-geometry invariants: no simulation, so the case budget is
    // cheap.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decomposition_invariants_hold(tc in geometry_strategy()) {
        let model = tc.model();
        prop_assert_eq!(model.family, ModelFamily::Transformer);
        prop_assert_eq!(model.layers.len(), tc.blocks * 6);

        // MAC total: blocks × seq_len × (4·d_model² + 2·d_model·d_ff).
        let expected = tc.blocks as u64
            * tc.seq_len as u64
            * (4 * (tc.d_model as u64).pow(2)
                + 2 * tc.d_model as u64 * tc.d_ff as u64);
        prop_assert_eq!(model.total_macs(), expected);
        prop_assert_eq!(tc.block_macs() * tc.blocks as u64, expected);

        // Shape consistency: every column count is the sequence length;
        // attention projections are square in d_model; the FFN pair
        // chains (up's output features feed down's inputs).
        for (i, layer) in model.layers.iter().enumerate() {
            prop_assert_eq!(layer.gemm.cols, tc.seq_len, "layer {}", i);
            match layer.kind {
                LayerKind::Attention => {
                    prop_assert_eq!(layer.gemm.rows, tc.d_model);
                    prop_assert_eq!(layer.gemm.inner, tc.d_model);
                }
                LayerKind::Ffn | LayerKind::Conv => {}
            }
        }
        for b in 0..tc.blocks {
            let up = model.layer(&format!("block{b}.ffn.up")).unwrap();
            let down = model.layer(&format!("block{b}.ffn.down")).unwrap();
            prop_assert_eq!(up.gemm.inner, tc.d_model);
            prop_assert_eq!(up.gemm.rows, tc.d_ff);
            prop_assert_eq!(down.gemm.inner, up.gemm.rows);
            prop_assert_eq!(down.gemm.rows, tc.d_model);
        }

        // At most three distinct shapes, each fitting under the caps.
        let shapes = model.unique_shapes();
        prop_assert!(shapes.len() <= 3);
        let counted: usize = shapes.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(counted, model.layers.len());
        for caps in [GemmCaps::smoke(), GemmCaps::default_eval()] {
            for (g, _) in &shapes {
                let capped = caps.apply(*g);
                prop_assert!(!caps.clips(capped), "caps must be idempotent");
                prop_assert!(capped.rows >= 1 && capped.inner >= 1 && capped.cols >= 1);
                let retained = caps.retained_fraction(*g);
                prop_assert!(retained > 0.0 && retained <= 1.0);
            }
        }

        // Sequence rescaling is linear in the MAC total.
        let doubled = tc.clone().with_seq_len(2 * tc.seq_len).model();
        prop_assert_eq!(doubled.total_macs(), 2 * model.total_macs());
    }
}

proptest! {
    // Each case runs two full timed simulations; keep the count modest
    // (the shapes are smoke-capped so a case stays sub-second).
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_layer_simulates_correctly_at_random_sew(
        tc in geometry_strategy(),
        layer_pick in 0usize..6,
        sew_pick in 0usize..3,
        pattern in pattern_strategy(),
        seed in 0u64..10_000,
    ) {
        let model = tc.model();
        let layer = &model.layers[layer_pick % model.layers.len()];
        let precision = [Precision::F32, Precision::I16, Precision::I8][sew_pick];
        let base = if precision.is_int() {
            ExperimentConfig::quantized(precision)
        } else {
            ExperimentConfig::transformer()
        };
        let cfg = ExperimentConfig {
            caps: GemmCaps::smoke(),
            seed,
            ..base
        };
        // verify=true: run_gemm checks the simulated product against
        // the sparse reference (bit-exactly at the int precisions) and
        // errors on any mismatch.
        prop_assert!(cfg.verify);
        for algorithm in [Algorithm::IndexMac, Algorithm::IndexMac2] {
            let r = run_gemm(layer.gemm, pattern, algorithm, &cfg)
                .map_err(|e| TestCaseError::fail(format!(
                    "{} {algorithm:?} @{precision}: {e}", layer.name
                )))?;
            prop_assert!(r.report.cycles > 0);
            prop_assert!(r.report.instructions > 0);
            prop_assert_eq!(r.full_gemm, layer.gemm);
        }
    }
}
