//! Criterion micro-benchmarks of the simulation substrate itself:
//! host-side throughput of the cache model, the functional executor,
//! kernel generation and a small end-to-end kernel comparison. These
//! guard against performance regressions of the simulator (which bound
//! how large a `full`-profile run can be).

use criterion::{criterion_group, criterion_main, Criterion};
use indexmac::experiment::{run_gemm, Algorithm, ExperimentConfig};
use indexmac::kernels::GemmDims;
use indexmac::sparse::NmPattern;
use indexmac_kernels::{indexmac as imac_kernel, rowwise, GemmLayout, KernelParams};
use indexmac_mem::{AccessKind, Cache, CacheConfig};
use indexmac_models::GemmCaps;
use indexmac_sparse::{prune, DenseMatrix};
use indexmac_vpu::SimConfig;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/64KiB-4way_sequential_sweep", |b| {
        let mut cache = Cache::new(CacheConfig::table_i_l1d());
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..4096u64 {
                if cache.access(black_box(i * 64), AccessKind::Read).hit {
                    hits += 1;
                }
            }
            hits
        });
    });
}

fn bench_kernel_generation(c: &mut Criterion) {
    let cfg = SimConfig::table_i();
    let a = prune::random_structured(32, 256, NmPattern::P1_4, 1);
    let layout = GemmLayout::plan(&a, 128, &cfg, 16).unwrap();
    let params = KernelParams::default();
    c.bench_function("kernelgen/indexmac_32x256x128", |b| {
        b.iter(|| {
            imac_kernel::build(black_box(&layout), &params)
                .unwrap()
                .len()
        });
    });
    c.bench_function("kernelgen/rowwise_32x256x128", |b| {
        b.iter(|| rowwise::build(black_box(&layout), &params).unwrap().len());
    });
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let cfg = SimConfig::table_i();
    let a = prune::random_structured(16, 128, NmPattern::P2_4, 2);
    let bm = DenseMatrix::random(128, 32, 3);
    let layout = GemmLayout::plan(&a, 32, &cfg, 16).unwrap();
    let program = imac_kernel::build(&layout, &KernelParams::default()).unwrap();
    c.bench_function("simulate/indexmac_16x128x32_timed", |b| {
        b.iter(|| {
            let run =
                indexmac_kernels::verify::run_kernel(&program, &a, &bm, &layout, &cfg).unwrap();
            black_box(run.report.cycles)
        });
    });
}

fn bench_end_to_end_compare(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        caps: GemmCaps::smoke(),
        verify: false,
        ..ExperimentConfig::paper()
    };
    let dims = GemmDims {
        rows: 16,
        inner: 128,
        cols: 32,
    };
    c.bench_function("endtoend/compare_16x128x32_1of4", |b| {
        b.iter(|| {
            let base = run_gemm(dims, NmPattern::P1_4, Algorithm::RowWiseSpmm, &cfg).unwrap();
            let prop = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &cfg).unwrap();
            black_box(prop.report.speedup_over(&base.report))
        });
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_cache, bench_kernel_generation, bench_simulator_throughput,
              bench_end_to_end_compare
}
criterion_main!(micro);
