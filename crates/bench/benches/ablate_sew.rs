//! Ablation for the **multi-precision datapath**: sweeps
//! SEW ∈ {8, 16, 32} for `vindexmac.vvi` at fixed dims/pattern and
//! prints every precision against the e32 baseline on the same shapes.
//!
//! At e8 every 512-bit register holds 64 elements instead of 16, so a
//! column tile is covered in 4× fewer vector instructions and the
//! fixed-shape metadata reload is paid 4× less often; the engine's
//! bit-sliced lanes keep elements-per-cycle constant, so the
//! instruction cut converts directly into cycles. The integer runs
//! verify **bit-exactly** against the i32 reference (no tolerance).
//!
//! Like the other harnesses, the simulations batch through the
//! parallel sweep runner (`indexmac::sweep::run_grid`), one grid per
//! precision, with identical per-cell seeds so only SEW varies.

use indexmac::experiment::{Algorithm, ExperimentConfig, Precision};
use indexmac::kernels::GemmDims;
use indexmac::sparse::NmPattern;
use indexmac::sweep::{run_grid, SweepGrid, SweepResult};
use indexmac::table::{fmt_speedup, Table};
use indexmac_bench::{banner, Profile};

fn sweep_at(precision: Precision, grid: &SweepGrid, base: &ExperimentConfig) -> SweepResult {
    let cfg = ExperimentConfig {
        precision,
        baseline: Algorithm::IndexMac,
        proposed: Algorithm::IndexMac2,
        ..*base
    };
    run_grid(grid, &cfg).expect("sweep simulates")
}

fn main() {
    let base_cfg = Profile::from_env().config();
    banner("Ablation: IndexMAC2 element width (SEW 8/16/32)", &base_cfg);
    let dims = vec![
        GemmDims {
            rows: 64,
            inner: 256,
            cols: 128,
        },
        GemmDims {
            rows: 32,
            inner: 128,
            cols: 256,
        },
    ];

    for pattern in NmPattern::EVALUATED {
        println!("\n{pattern} structured sparsity, vindexmac.vvi vs vindexmac.vx");
        let grid = SweepGrid::new(vec![pattern], dims.clone());
        let e32 = sweep_at(Precision::F32, &grid, &base_cfg);
        let mut table = Table::new(vec![
            "GEMM (RxKxN)",
            "sew",
            "cycles",
            "vs e32 cycles",
            "instret",
            "vector instrs (vvi side)",
            "verification",
        ]);
        for precision in [Precision::F32, Precision::I16, Precision::I8] {
            let result = if precision == Precision::F32 {
                e32.clone()
            } else {
                sweep_at(precision, &grid, &base_cfg)
            };
            for (cell, ref32) in result.cells.iter().zip(&e32.cells) {
                let d = cell.cell.dims;
                let prop = &cell.comparison.proposed.report;
                table.row(vec![
                    format!("{}x{}x{}", d.rows, d.inner, d.cols),
                    format!("e{}", precision.bits()),
                    prop.cycles.to_string(),
                    fmt_speedup(
                        ref32.comparison.proposed.report.cycles as f64 / prop.cycles as f64,
                    ),
                    prop.instructions.to_string(),
                    prop.counts.vector_total().to_string(),
                    if precision.is_int() {
                        "bit-exact i32"
                    } else {
                        "k-scaled tol"
                    }
                    .to_string(),
                ]);
            }
        }
        print!("{}", table.render());
    }
    println!(
        "\nexpected: e16 halves and e8 quarters the vector-instruction count of e32 at \
         equal dims (wider tiles amortise the fixed-shape metadata), which carries \
         straight into cycles; both integer precisions verify bit-exactly"
    );
}
