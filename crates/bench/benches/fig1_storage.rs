//! Quantifies **Fig. 1** — the representation cost of unstructured vs
//! structured block sparsity. Unstructured CSR needs a full column index
//! per non-zero (plus row pointers); the N:M format needs only
//! `log2(M)` bits per slot because indexes are bounded by the block.
//! This is the storage half of the paper's motivation (the hardware
//! half being that bounded indexes make the B tile pinnable at all).

use indexmac::sparse::{prune, CsrMatrix, NmPattern};
use indexmac::table::{fmt_pct, Table};
use indexmac_bench::{banner, Profile};

fn main() {
    let cfg = Profile::from_env().config();
    banner(
        "Fig. 1: storage cost of unstructured (CSR) vs structured N:M",
        &cfg,
    );

    // A weight-matrix-sized example: 512 x 1152 (a 3x3 conv on 128 ch).
    let (rows, cols) = (512, 1152);
    let mut table = Table::new(vec![
        "pattern",
        "nnz",
        "dense bytes",
        "CSR bytes",
        "structured bytes",
        "structured/CSR",
    ]);
    for pattern in NmPattern::ALL {
        let s = prune::random_structured(rows, cols, pattern, cfg.seed);
        let csr = CsrMatrix::from_dense(&s.to_dense());
        let dense_bytes = rows * cols * 4;
        table.row(vec![
            pattern.to_string(),
            s.nnz().to_string(),
            dense_bytes.to_string(),
            csr.storage_bytes().to_string(),
            s.storage_bytes().to_string(),
            fmt_pct(s.storage_bytes() as f64 / csr.storage_bytes() as f64),
        ]);
    }
    print!("{}", table.render());
    println!("\nstructured indexes cost log2(M) = 2 bits/slot vs CSR's 32 bits/nnz,");
    println!("and the fixed N-per-block shape needs no row pointers at all");
}
