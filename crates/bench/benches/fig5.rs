//! Reproduces **Fig. 5** — total-network speedup of the proposed kernel
//! over Row-Wise-SpMM for ResNet50, DenseNet121 and InceptionV3, under
//! 1:4 and 2:4 structured sparsity. The paper reports averages of 1.95x
//! (1:4) and 1.88x (2:4) across the three CNNs.

use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_speedup, Table};
use indexmac_bench::{banner, CachedCompare, Profile};
use indexmac_models::Model;

fn main() {
    let cfg = Profile::from_env().config();
    banner(
        "Fig. 5: total execution-time speedup per CNN (normalised to Row-Wise-SpMM)",
        &cfg,
    );

    for (panel, pattern) in ["(a)", "(b)"].into_iter().zip(NmPattern::EVALUATED) {
        // The per-layer range column also checks the paper's remark that
        // the other two CNNs show "similar behavior" to ResNet50's
        // per-layer profile (their Fig. 4 equivalents are omitted there
        // for brevity).
        let mut table = Table::new(vec!["CNN", "layers", "speedup", "per-layer range"]);
        let mut sum = 0.0;
        let models = Model::paper_models();
        for model in &models {
            let mut cache = CachedCompare::new(cfg);
            cache.warm(model.layers.iter().map(|l| (l.gemm, pattern)));
            let mut base_cycles: u64 = 0;
            let mut prop_cycles: u64 = 0;
            let mut lo = f64::INFINITY;
            let mut hi = 0.0_f64;
            for layer in &model.layers {
                let cmp = cache.compare(layer.gemm, pattern);
                base_cycles += cmp.baseline.report.cycles;
                prop_cycles += cmp.proposed.report.cycles;
                let s = cmp.speedup();
                lo = lo.min(s);
                hi = hi.max(s);
            }
            let speedup = base_cycles as f64 / prop_cycles as f64;
            sum += speedup;
            table.row(vec![
                model.name.clone(),
                model.layers.len().to_string(),
                fmt_speedup(speedup),
                format!("{}-{}", fmt_speedup(lo), fmt_speedup(hi)),
            ]);
        }
        println!("\nFig. 5{panel} — {pattern} structured sparsity");
        print!("{}", table.render());
        println!(
            "average {}  (paper: {})",
            fmt_speedup(sum / models.len() as f64),
            if pattern == NmPattern::P1_4 {
                "1.95x"
            } else {
                "1.88x"
            }
        );
    }
}
