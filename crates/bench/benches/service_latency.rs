//! Latency of the sweep service: a cold miss (full simulation through
//! the daemon) vs a warm hit (content-addressed store), per GEMM
//! shape, plus the store's open/scan throughput. Emits
//! `BENCH_service.json`.
//!
//! Three latencies per shape, all through `SweepService::sweep_grid`
//! so they include the digest, store and daemon overheads a real
//! client pays:
//!
//! * **cold** — empty store: the cell simulates on a worker;
//! * **warm (memory)** — same digest again: served by the store's LRU
//!   front;
//! * **warm (disk)** — a reopened store with the LRU disabled: served
//!   by a checksummed log read + record decode.
//!
//! The acceptance bar: a warm hit is **>100×** faster than the
//! recompute it replaces, for every measured shape (the asserts at the
//! bottom fail the harness otherwise).
//!
//! The store-scan section times `ResultStore::open` over a populated
//! store twice — trusting the index, and with the index removed
//! (crash-recovery path: a full log scan with checksum validation).

use indexmac::experiment::ExperimentConfig;
use indexmac::sweep::SweepGrid;
use indexmac::Digest;
use indexmac_bench::{banner, Profile};
use indexmac_kernels::GemmDims;
use indexmac_service::{ResultStore, SweepService};
use indexmac_sparse::NmPattern;
use serde::{Serialize, Value};
use std::time::Instant;

/// Warm-path iterations (the minimum is reported; see
/// `engine_throughput` for why minimum beats mean on shared hosts).
const WARM_ITERS: usize = 200;
/// Synthetic records for the store-scan measurement.
const SCAN_RECORDS: usize = 512;

struct Row {
    label: String,
    dims: GemmDims,
    cold_ms: f64,
    warm_mem_us: f64,
    warm_disk_us: f64,
}

impl Row {
    fn mem_speedup(&self) -> f64 {
        self.cold_ms * 1e3 / self.warm_mem_us
    }

    fn disk_speedup(&self) -> f64 {
        self.cold_ms * 1e3 / self.warm_disk_us
    }

    fn to_value(&self) -> Value {
        Value::object([
            ("label", self.label.to_value()),
            (
                "dims",
                format!("{}x{}x{}", self.dims.rows, self.dims.inner, self.dims.cols).to_value(),
            ),
            ("cold_miss_ms", self.cold_ms.to_value()),
            ("warm_hit_memory_us", self.warm_mem_us.to_value()),
            ("warm_hit_disk_us", self.warm_disk_us.to_value()),
            ("warm_memory_speedup", self.mem_speedup().to_value()),
            ("warm_disk_speedup", self.disk_speedup().to_value()),
        ])
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "indexmac-bench-service-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Minimum elapsed seconds of `f` over `iters` runs.
fn min_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn measure_shape(label: &str, dims: GemmDims, cfg: &ExperimentConfig) -> Row {
    let dir = temp_dir(label);
    let grid = SweepGrid::new(vec![NmPattern::P1_4], vec![dims]);

    // Cold: the store is empty, the daemon simulates the cell.
    let store = ResultStore::open(&dir).expect("store opens");
    let service = SweepService::start(*cfg, store, 2);
    let t = Instant::now();
    let (cold, statuses) = service.sweep_grid(&grid).expect("cold sweep runs");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        statuses.iter().all(|s| s.name() == "computed"),
        "cold pass must simulate"
    );

    // Warm (memory): same digest, served by the LRU front.
    let warm_mem_us = min_secs(WARM_ITERS, || {
        let (warm, statuses) = service.sweep_grid(&grid).expect("warm sweep runs");
        debug_assert!(statuses.iter().all(|s| s.name() == "hit"));
        debug_assert_eq!(warm.cells, cold.cells);
    }) * 1e6;
    service.shutdown();

    // Warm (disk): reopen with the LRU disabled, so every hit pays the
    // checksummed log read + record decode.
    let store = ResultStore::open_with_lru(&dir, 0).expect("store reopens");
    let service = SweepService::start(*cfg, store, 2);
    let warm_disk_us = min_secs(WARM_ITERS, || {
        let (warm, statuses) = service.sweep_grid(&grid).expect("disk-warm sweep runs");
        debug_assert!(statuses.iter().all(|s| s.name() == "hit"));
        debug_assert_eq!(warm.cells, cold.cells);
    }) * 1e6;
    service.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    Row {
        label: label.to_string(),
        dims,
        cold_ms,
        warm_mem_us,
        warm_disk_us,
    }
}

/// Populates a store with `SCAN_RECORDS` records and times reopening
/// it with and without the index file.
fn measure_scan(cfg: &ExperimentConfig) -> Value {
    let dir = temp_dir("scan");
    let grid = SweepGrid::new(
        vec![NmPattern::P1_4],
        vec![GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        }],
    );
    let mut store = ResultStore::open(&dir).expect("store opens");
    let result = indexmac::sweep::run_grid(&grid, cfg).expect("seed cell simulates");
    let record = &result.cells[0];
    // One real record under many synthetic digests: the scan cost is
    // per-frame, not per-distinct-simulation.
    for i in 0..SCAN_RECORDS {
        store
            .put(Digest(i as u128), record)
            .expect("synthetic record persists");
    }
    store.flush().expect("store flushes");
    let log_bytes = store.stats().log_bytes;
    drop(store);

    let t = Instant::now();
    let store = ResultStore::open(&dir).expect("indexed reopen");
    let indexed_open_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(store.len(), SCAN_RECORDS);
    drop(store);

    std::fs::remove_file(dir.join("index.json")).expect("index removed");
    let t = Instant::now();
    let store = ResultStore::open(&dir).expect("scan reopen");
    let scan_s = t.elapsed().as_secs_f64();
    assert_eq!(store.len(), SCAN_RECORDS, "full scan finds every record");
    drop(store);

    let records_per_sec = SCAN_RECORDS as f64 / scan_s;
    let mb_per_sec = log_bytes as f64 / (1024.0 * 1024.0) / scan_s;
    println!(
        "store scan: {SCAN_RECORDS} records, {log_bytes} log bytes | indexed open {indexed_open_ms:.2} ms | full scan {:.2} ms ({records_per_sec:.0} records/sec, {mb_per_sec:.1} MB/sec)",
        scan_s * 1e3,
    );
    let _ = std::fs::remove_dir_all(&dir);
    Value::object([
        ("records", SCAN_RECORDS.to_value()),
        ("log_bytes", log_bytes.to_value()),
        ("indexed_open_ms", indexed_open_ms.to_value()),
        ("full_scan_ms", (scan_s * 1e3).to_value()),
        ("scan_records_per_sec", records_per_sec.to_value()),
        ("scan_mb_per_sec", mb_per_sec.to_value()),
    ])
}

fn main() {
    let profile = Profile::from_env();
    let cfg = profile.config();
    banner("service_latency: sweep-service cold miss vs warm hit", &cfg);

    let shapes = [
        (
            "gemm-8x64x32",
            GemmDims {
                rows: 8,
                inner: 64,
                cols: 32,
            },
        ),
        (
            "gemm-16x128x32",
            GemmDims {
                rows: 16,
                inner: 128,
                cols: 32,
            },
        ),
        (
            "bert-ffn-capped",
            cfg.caps.apply(GemmDims {
                rows: 3072,
                inner: 768,
                cols: 128,
            }),
        ),
    ];
    let rows: Vec<Row> = shapes
        .iter()
        .map(|(label, dims)| measure_shape(label, *dims, &cfg))
        .collect();

    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>13} {:>11} {:>11}",
        "shape", "dims", "cold ms", "warm(mem) us", "warm(disk) us", "mem x", "disk x"
    );
    for r in &rows {
        println!(
            "{:<18} {:>12} {:>12.2} {:>14.1} {:>13.1} {:>10.0}x {:>10.0}x",
            r.label,
            format!("{}x{}x{}", r.dims.rows, r.dims.inner, r.dims.cols),
            r.cold_ms,
            r.warm_mem_us,
            r.warm_disk_us,
            r.mem_speedup(),
            r.disk_speedup(),
        );
    }
    println!();
    let scan = measure_scan(&cfg);

    let json = Value::object([
        ("bench", "service_latency".to_value()),
        ("profile", format!("{}", cfg.caps).to_value()),
        ("warm_iters", WARM_ITERS.to_value()),
        (
            "rows",
            Value::Array(rows.iter().map(Row::to_value).collect()),
        ),
        ("store_scan", scan),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("total"))
        .expect("write BENCH_service.json");
    println!("\nwrote {path}");

    // The acceptance bar for the whole service: a warm hit (the LRU
    // front is on by default, so this is what clients actually see)
    // must beat recomputation by >100x on every shape. The LRU-disabled
    // disk path is a diagnostic — on smoke-capped shapes the recompute
    // itself is only ~1 ms, so it gets a softer regression bar.
    for r in &rows {
        assert!(
            r.mem_speedup() > 100.0,
            "{}: warm hit only {:.0}x faster than recompute",
            r.label,
            r.mem_speedup()
        );
        assert!(
            r.disk_speedup() > 10.0,
            "{}: LRU-disabled disk hit only {:.0}x faster than recompute",
            r.label,
            r.disk_speedup()
        );
    }
    println!("warm-hit acceptance: every shape >100x faster than recompute");
}
