//! Ablation for the **transformer workload family**: sweeps the
//! sequence length of the BERT-base FFN-up and Q-projection GEMMs and
//! prints how the second-generation comparison (`vindexmac.vvi` at
//! `m2` vs `vindexmac.vx`) scales with the batched column count.
//!
//! Sequence length is the transformer's analogue of the CNN
//! output-pixel count: every weight GEMM batches `seq_len` columns, so
//! short sequences under-fill the resident B column tile (fixed
//! per-tile work dominates) while long ones amortise it and push B past
//! L2 residency — the same two regimes behind the paper's declining
//! per-layer CNN speedups.
//!
//! The sweeps drive through `indexmac::seqlen::seqlen_scaling`, which
//! holds the weight matrix fixed and rescales only the activation
//! batch, exactly like serving one network at different lengths.

use indexmac::experiment::ExperimentConfig;
use indexmac::seqlen::seqlen_scaling;
use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_pair, fmt_pct, fmt_speedup, Table};
use indexmac_bench::{banner, Profile};
use indexmac_models::TransformerConfig;

fn main() {
    let profile = Profile::from_env();
    let base_cfg = ExperimentConfig {
        caps: profile.caps(),
        ..ExperimentConfig::transformer()
    };
    banner(
        "Ablation: transformer sequence-length scaling (BERT-base, vvi m2 vs vx)",
        &base_cfg,
    );
    let seq_lens: &[usize] = match profile {
        Profile::Smoke => &[8, 16, 32],
        _ => &[16, 32, 64, 128, 256, 512],
    };
    let tc = TransformerConfig::bert_base();

    for layer in ["block0.ffn.up", "block0.attn.q"] {
        for pattern in NmPattern::EVALUATED {
            let scaling = seqlen_scaling(&tc, layer, seq_lens, pattern, &base_cfg)
                .expect("sequence-length sweep simulates");
            println!("\n{} — {layer}, {pattern} structured sparsity", tc.name);
            let mut table = Table::new(vec![
                "seq_len",
                "GEMM (RxKxN)",
                "cycles (vx -> vvi)",
                "instret (vx -> vvi)",
                "speedup",
                "normalized mem accesses",
            ]);
            for p in &scaling.points {
                let base = &p.comparison.baseline.report;
                let prop = &p.comparison.proposed.report;
                table.row(vec![
                    p.seq_len.to_string(),
                    format!("{}x{}x{}", p.gemm.rows, p.gemm.inner, p.gemm.cols),
                    fmt_pair(base.cycles, prop.cycles),
                    fmt_pair(base.instructions, prop.instructions),
                    fmt_speedup(p.comparison.speedup()),
                    fmt_pct(p.comparison.mem_ratio()),
                ]);
            }
            print!("{}", table.render());
            if let Some(best) = scaling.best() {
                println!(
                    "best speedup {} at seq_len {}",
                    fmt_speedup(best.comparison.speedup()),
                    best.seq_len
                );
            }
        }
    }
    println!(
        "\nexpected: the vvi kernel wins at every length; the gap settles once the \
         sequence fills a whole column tile (the capped simulations saturate at the \
         column cap, mirroring the CNN size-capping argument)"
    );
}
