//! Reproduces **Fig. 4** — per-layer speedup of the proposed vindexmac
//! kernel over Row-Wise-SpMM on ResNet50, for 1:4 and 2:4 structured
//! sparsity. Prints one row per convolution layer (the paper's bars),
//! normalised to Row-Wise-SpMM, plus the min/max range the paper quotes
//! (1.60x–2.15x for 1:4; 1.63x–1.99x for 2:4).

use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_speedup, Table};
use indexmac_bench::{banner, CachedCompare, Profile};
use indexmac_models::resnet50;

fn main() {
    let cfg = Profile::from_env().config();
    banner(
        "Fig. 4: per-layer speedup on ResNet50 (normalised to Row-Wise-SpMM)",
        &cfg,
    );
    let model = resnet50();

    for (panel, pattern) in ["(a)", "(b)"].into_iter().zip(NmPattern::EVALUATED) {
        let mut cache = CachedCompare::new(cfg);
        // Fan the whole layer list through the parallel sweep runner;
        // the serial loop below then prints from cache hits only.
        cache.warm(model.layers.iter().map(|l| (l.gemm, pattern)));
        let mut table = Table::new(vec!["layer", "GEMM (RxKxN)", "simulated", "speedup"]);
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for layer in &model.layers {
            let dims = layer.gemm;
            let cmp = cache.compare(dims, pattern);
            let s = cmp.speedup();
            lo = lo.min(s);
            hi = hi.max(s);
            table.row(vec![
                layer.name.clone(),
                format!("{}x{}x{}", dims.rows, dims.inner, dims.cols),
                format!(
                    "{}x{}x{}",
                    cmp.proposed.gemm.rows, cmp.proposed.gemm.inner, cmp.proposed.gemm.cols
                ),
                fmt_speedup(s),
            ]);
        }
        println!("\nFig. 4{panel} — {pattern} structured sparsity");
        print!("{}", table.render());
        println!(
            "range {}-{}  ({} unique simulations; paper reports {} across layers)",
            fmt_speedup(lo),
            fmt_speedup(hi),
            cache.unique_runs(),
            if pattern == NmPattern::P1_4 {
                "1.60x-2.15x"
            } else {
                "1.63x-1.99x"
            },
        );
    }
}
