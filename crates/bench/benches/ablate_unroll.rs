//! Ablation for the Section IV-A statement that x4 loop unrolling
//! (producing four output rows per iteration, after [17]) benefits both
//! kernels: sweeps the unroll factor for Row-Wise-SpMM and the proposed
//! kernel on a representative layer.

use indexmac::experiment::{run_gemm, Algorithm};
use indexmac::kernels::KernelParams;
use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_speedup, Table};
use indexmac_bench::{banner, Profile};
use indexmac_models::resnet50;

fn main() {
    let base_cfg = Profile::from_env().config();
    banner(
        "Ablation: loop-unroll factor (both kernels, paper uses x4)",
        &base_cfg,
    );
    let model = resnet50();
    let layer = model
        .layers
        .iter()
        .find(|l| l.name == "layer2.1.conv2")
        .expect("layer exists");

    for pattern in NmPattern::EVALUATED {
        println!(
            "\n{pattern} structured sparsity on {} (GEMM {:?})",
            layer.name, layer.gemm
        );
        let mut table = Table::new(vec![
            "unroll",
            "Row-Wise-SpMM cycles",
            "Proposed cycles",
            "speedup",
            "RWS gain vs u1",
            "Prop gain vs u1",
        ]);
        let mut first: Option<(u64, u64)> = None;
        for unroll in [1usize, 2, 4] {
            let cfg = indexmac::ExperimentConfig {
                params: KernelParams {
                    unroll,
                    ..Default::default()
                },
                ..base_cfg
            };
            let base =
                run_gemm(layer.gemm, pattern, Algorithm::RowWiseSpmm, &cfg).expect("baseline runs");
            let prop =
                run_gemm(layer.gemm, pattern, Algorithm::IndexMac, &cfg).expect("proposed runs");
            let (b1, p1) = *first.get_or_insert((base.report.cycles, prop.report.cycles));
            table.row(vec![
                format!("x{unroll}"),
                base.report.cycles.to_string(),
                prop.report.cycles.to_string(),
                fmt_speedup(prop.report.speedup_over(&base.report)),
                fmt_speedup(b1 as f64 / base.report.cycles as f64),
                fmt_speedup(p1 as f64 / prop.report.cycles as f64),
            ]);
        }
        print!("{}", table.render());
    }
    println!("\nexpected: unrolling helps both kernels; the speedup ratio stays comparable");
}
