//! Throughput of the decode-once execution engine vs the legacy
//! interpret-per-step loop — the perf trajectory's first data points.
//!
//! Two measurements, both emitted to `BENCH_engine.json`:
//!
//! * **instructions/sec** — `run_functional` of the pinned BERT-FFN
//!   kernel (`3072x768x128`, the heaviest transformer shape; the e8
//!   quantized row and the f32 `m2` row of the transformer campaign),
//!   through the legacy stepwise oracle, the decoded engine, the
//!   check-elided verified path with trace compilation disabled (the
//!   static analyzer proves the kernel fault-free against the layout
//!   contract, mints a [`Verified`] token, and the engine drops the
//!   per-µop legality checks), the trace-compiled path (the fused
//!   steady-state blocks run as native batched lane loops), and the
//!   sharded counting engine. The acceptance bars: a ≥2× wall-clock
//!   win for the decoded engine on the e8 row, and a ≥2× win for the
//!   trace-compiled path over the untraced verified one.
//! * **cells/sec** — a warm sweep: the same grid swept twice through
//!   `indexmac::sweep::run_cells` on one thread, so the second pass
//!   runs entirely against the decode-once `ProgramCache` and the
//!   reused per-thread simulator.
//!
//! `INDEXMAC_PROFILE=smoke` caps the GEMM (CI); `default`/`full` run
//! the uncapped pinned shape.

use indexmac::experiment::{decode_cache_stats, reset_decode_cache, ExperimentConfig, Precision};
use indexmac::kernels::{indexmac2, GemmDims, GemmLayout, KernelParams};
use indexmac::sparse::{prune, quant, DenseMatrix, NmPattern, StructuredSparseMatrix};
use indexmac::sweep::{run_cells, SweepGrid};
use indexmac::vpu::{analyze_with_contract, DecodedProgram, NullObserver, SimConfig, Simulator};
use indexmac_bench::{banner, Profile};
use serde::{Serialize, Value};
use std::time::Instant;

/// The BERT-base FFN-up GEMM (d_ff x d_model x seq_len), as pinned in
/// `tests/paper_claims.rs`.
const BERT_FFN: GemmDims = GemmDims {
    rows: 3072,
    inner: 768,
    cols: 128,
};

struct Row {
    label: &'static str,
    sew_bits: usize,
    lmul: usize,
    dims: GemmDims,
    instructions: u64,
    decode_ms: f64,
    analyze_ms: f64,
    legacy_ns: f64,
    decoded_ns: f64,
    verified_ns: f64,
    traced_ns: f64,
    sharded_ns: f64,
    shards: usize,
    fused_runs: usize,
    fused_uops: usize,
    traces: usize,
    traced_uops: usize,
    static_uops: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy_ns / self.decoded_ns
    }

    fn verified_speedup(&self) -> f64 {
        self.legacy_ns / self.verified_ns
    }

    /// The tentpole metric: trace-compiled vs the untraced verified
    /// path (the previous fastest engine configuration).
    fn trace_speedup(&self) -> f64 {
        self.verified_ns / self.traced_ns
    }

    fn fused_coverage(&self) -> f64 {
        self.fused_uops as f64 / self.static_uops as f64
    }

    /// Fraction of static µops covered by a compiled trace (a superset
    /// of the fused runs, which traces embed).
    fn trace_coverage(&self) -> f64 {
        self.traced_uops as f64 / self.static_uops as f64
    }

    fn ips(&self, ns: f64) -> f64 {
        self.instructions as f64 / (ns * 1e-9)
    }

    fn to_value(&self) -> Value {
        Value::object([
            ("label", self.label.to_value()),
            ("sew", self.sew_bits.to_value()),
            ("lmul", self.lmul.to_value()),
            (
                "dims",
                format!("{}x{}x{}", self.dims.rows, self.dims.inner, self.dims.cols).to_value(),
            ),
            ("dynamic_instructions", self.instructions.to_value()),
            ("decode_ms", self.decode_ms.to_value()),
            ("analyze_ms", self.analyze_ms.to_value()),
            ("legacy_run_ns", self.legacy_ns.to_value()),
            ("decoded_run_ns", self.decoded_ns.to_value()),
            ("verified_run_ns", self.verified_ns.to_value()),
            ("traced_run_ns", self.traced_ns.to_value()),
            ("sharded_run_ns", self.sharded_ns.to_value()),
            ("shards", self.shards.to_value()),
            ("fused_runs", self.fused_runs.to_value()),
            ("fused_uops", self.fused_uops.to_value()),
            ("fused_coverage", self.fused_coverage().to_value()),
            ("traces", self.traces.to_value()),
            ("traced_uops", self.traced_uops.to_value()),
            ("trace_coverage", self.trace_coverage().to_value()),
            (
                "legacy_instructions_per_sec",
                self.ips(self.legacy_ns).to_value(),
            ),
            (
                "decoded_instructions_per_sec",
                self.ips(self.decoded_ns).to_value(),
            ),
            (
                "verified_instructions_per_sec",
                self.ips(self.verified_ns).to_value(),
            ),
            (
                "traced_instructions_per_sec",
                self.ips(self.traced_ns).to_value(),
            ),
            ("speedup", self.speedup().to_value()),
            ("verified_speedup", self.verified_speedup().to_value()),
            (
                "trace_speedup_over_verified",
                self.trace_speedup().to_value(),
            ),
        ])
    }
}

/// Builds the pinned-shape `vindexmac.vvi` kernel at one precision and
/// measures `run_functional` through both execution paths.
fn measure_row(
    label: &'static str,
    precision: Precision,
    requested_lmul: usize,
    caps_dims: GemmDims,
    iters: u32,
) -> Row {
    let sim_cfg = SimConfig::table_i();
    let pattern = NmPattern::P1_4;
    let seed = 0xE16E_2026u64;
    let (a, b): (StructuredSparseMatrix, DenseMatrix) = if precision.is_int() {
        (
            quant::random_structured_int(caps_dims.rows, caps_dims.inner, pattern, seed, precision),
            quant::random_dense_int(caps_dims.inner, caps_dims.cols, seed + 1, precision),
        )
    } else {
        (
            prune::random_structured(caps_dims.rows, caps_dims.inner, pattern, seed),
            DenseMatrix::random(caps_dims.inner, caps_dims.cols, seed + 1),
        )
    };
    // The e8 widening accumulator caps grouping at m1 (lmul*32/SEW <= 4)
    // — the same clamp `compare_model` applies to quantized presets.
    let lmul = requested_lmul.min(4 / precision.widen()).max(1);
    let tile_rows = GemmLayout::fit_tile_rows(16, lmul, pattern);
    let layout = GemmLayout::plan_elem(&a, caps_dims.cols, &sim_cfg, tile_rows, lmul, precision)
        .expect("pinned layout plans");
    let params = KernelParams {
        unroll: 4usize.min(indexmac2::max_unroll(&layout)),
        ..KernelParams::default()
    };
    let program = indexmac2::build(&layout, &params).expect("pinned kernel builds");

    let t0 = Instant::now();
    let decoded = DecodedProgram::decode(&program);
    let decode_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Static analysis is a one-time cost like decoding: prove the
    // kernel fault-free against the layout contract, mint the token.
    let t0 = Instant::now();
    let vlen_bits = layout.vl * layout.elem.bits();
    let token = analyze_with_contract(&decoded, vlen_bits, Some(&layout.analysis_contract()))
        .verified()
        .expect("pinned kernel analyzes clean");
    let analyze_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut sim = Simulator::new(sim_cfg);
    layout.write_operands(&a, &b, sim.memory_mut());

    // Warm-up + instruction count (identical across paths by the
    // differential suite).
    let instructions = sim
        .run_functional_decoded(&decoded)
        .expect("pinned kernel executes");

    // The shard size for the sharded counting run: large enough that
    // per-shard overheads (memory clone, checkpoint) amortize, small
    // enough that capped (smoke) runs still split.
    let shard_size = (instructions / 8).max(10_000);

    // The five paths are interleaved within each iteration (rather
    // than measured in back-to-back blocks) so slow drift of the
    // host — CPU frequency, steal time — lands on all of them equally.
    // Each path reports its *minimum* over the iterations: on a shared
    // host a steal-time spike only ever adds time, so the minimum is
    // the estimate closest to the undisturbed cost (a mean lets one
    // spike in one path skew every ratio).
    let mut legacy_s = f64::INFINITY;
    let mut decoded_s = f64::INFINITY;
    let mut verified_s = f64::INFINITY;
    let mut traced_s = f64::INFINITY;
    let mut sharded_s = f64::INFINITY;
    let mut shards = 0usize;
    for _ in 0..iters {
        let t = Instant::now();
        sim.run_stepwise(&program, &mut NullObserver)
            .expect("legacy loop executes");
        legacy_s = legacy_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        sim.run_functional_decoded(&decoded)
            .expect("decoded engine executes");
        decoded_s = decoded_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        sim.run_functional_verified_untraced(&decoded, token)
            .expect("verified engine executes");
        verified_s = verified_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        sim.run_functional_verified(&decoded, token)
            .expect("traced engine executes");
        traced_s = traced_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let sharded = sim
            .run_sharded(&decoded, Some(token), shard_size)
            .expect("sharded engine executes");
        sharded_s = sharded_s.min(t.elapsed().as_secs_f64());
        shards = sharded.shards;
    }
    let legacy_ns = legacy_s * 1e9;
    let decoded_ns = decoded_s * 1e9;
    let verified_ns = verified_s * 1e9;
    let traced_ns = traced_s * 1e9;
    let sharded_ns = sharded_s * 1e9;

    Row {
        label,
        sew_bits: precision.bits(),
        lmul,
        dims: caps_dims,
        instructions,
        decode_ms,
        analyze_ms,
        legacy_ns,
        decoded_ns,
        verified_ns,
        traced_ns,
        sharded_ns,
        shards,
        fused_runs: decoded.fused_runs(),
        fused_uops: decoded.fused_uops(),
        traces: decoded.trace_segments(),
        traced_uops: decoded.traced_uops(),
        static_uops: decoded.len(),
    }
}

/// Sweeps one grid twice on this thread and reports cold/warm cell
/// throughput plus the decode-cache counters.
fn measure_sweep(cfg: &ExperimentConfig) -> Value {
    reset_decode_cache();
    let grid = SweepGrid::new(
        NmPattern::EVALUATED.to_vec(),
        vec![
            GemmDims {
                rows: 16,
                inner: 128,
                cols: 32,
            },
            GemmDims {
                rows: 32,
                inner: 128,
                cols: 64,
            },
        ],
    );
    let cells = grid.cells();
    let n_cells = cells.len();
    let n = n_cells as f64;
    let t = Instant::now();
    run_cells(cells.clone(), cfg).expect("cold sweep runs");
    let cold_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    run_cells(cells, cfg).expect("warm sweep runs");
    let warm_s = t.elapsed().as_secs_f64();
    let stats = decode_cache_stats();
    println!(
        "warm sweep: {:.1} cells/sec cold -> {:.1} cells/sec warm ({n_cells} cells; decode cache: {stats})",
        n / cold_s,
        n / warm_s,
    );
    Value::object([
        ("cells", n_cells.to_value()),
        ("cold_cells_per_sec", (n / cold_s).to_value()),
        ("warm_cells_per_sec", (n / warm_s).to_value()),
        ("decode_cache_hits", stats.hits.to_value()),
        ("decode_cache_misses", stats.misses.to_value()),
    ])
}

fn main() {
    let profile = Profile::from_env();
    let base_cfg = profile.config();
    banner(
        "engine_throughput: decode-once engine vs interpret-per-step",
        &base_cfg,
    );
    let dims = profile.caps().apply(BERT_FFN);
    let iters = if dims == BERT_FFN { 5 } else { 10 };
    println!(
        "pinned shape {}x{}x{} (BERT-FFN{}), vindexmac.vvi kernel, functional runs x{iters}\n",
        dims.rows,
        dims.inner,
        dims.cols,
        if dims == BERT_FFN { "" } else { ", capped" },
    );

    let rows = vec![
        measure_row("bert-ffn-e8", Precision::I8, 2, dims, iters),
        measure_row("bert-ffn-f32-m2", Precision::F32, 2, dims, iters),
    ];
    println!(
        "{:<18} {:>4} {:>4} {:>12} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8} {:>8} {:>8} {:>12}",
        "row",
        "sew",
        "lmul",
        "dyn instrs",
        "legacy ms",
        "decoded ms",
        "verified ms",
        "traced ms",
        "sharded ms",
        "speedup",
        "trace",
        "coverage",
        "traced Mi/s"
    );
    for r in &rows {
        println!(
            "{:<18} {:>4} {:>4} {:>12} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>7.2}x {:>7.2}x {:>7.1}% {:>12.1}",
            r.label,
            format!("e{}", r.sew_bits),
            format!("m{}", r.lmul),
            r.instructions,
            r.legacy_ns / 1e6,
            r.decoded_ns / 1e6,
            r.verified_ns / 1e6,
            r.traced_ns / 1e6,
            r.sharded_ns / 1e6,
            r.speedup(),
            r.trace_speedup(),
            r.trace_coverage() * 100.0,
            r.ips(r.traced_ns) / 1e6,
        );
    }

    println!();
    let sweep = measure_sweep(&base_cfg);

    let json = Value::object([
        ("bench", "engine_throughput".to_value()),
        ("profile", format!("{}", base_cfg.caps).to_value()),
        (
            "rows",
            Value::Array(rows.iter().map(Row::to_value).collect()),
        ),
        ("warm_sweep", sweep),
    ]);
    // Anchor at the workspace root regardless of the invocation cwd
    // (cargo runs bench binaries from the package directory).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("total"))
        .expect("write BENCH_engine.json");
    println!("\nwrote {path}");
    println!(
        "expected: the decoded engine runs the functional BERT-FFN kernel >= 2x faster than \
         the stepwise loop (events never materialise under NullObserver, per-step re-decode \
         and re-validation are gone, vector ops run on whole register-group slices); the \
         verified path (analyzer-minted token, per-µop legality checks elided) is at least \
         as fast again; the trace-compiled path (fused steady-state blocks executed as \
         native batched lane loops) is >= 2x faster than the untraced verified path; the \
         sharded counting engine pays the checkpoint/replay overhead back on multi-core \
         hosts (single-core numbers are recorded as-is)"
    );
}
