//! Ablation for the Section IV-A claim: "the B-stationary dataflow
//! (used by 'Proposed') also yields the best total execution times for
//! 'Row-Wise-SpMM'", and "if 'Row-Wise-SpMM' were to employ a
//! C-stationary dataflow, its total number of memory stores would
//! decrease significantly [but] this reduction ... does not improve the
//! total execution time".
//!
//! Runs Row-Wise-SpMM under all three dataflows on representative
//! ResNet50 layers, fanned out as one parallel sweep over the
//! (pattern × layer × dataflow) grid.

use indexmac::sparse::NmPattern;
use indexmac::sweep::{run_cells, SweepCell};
use indexmac::table::Table;
use indexmac_bench::{banner, Profile};
use indexmac_kernels::Dataflow;
use indexmac_models::resnet50;

fn main() {
    let base_cfg = Profile::from_env().config();
    banner(
        "Ablation: Row-Wise-SpMM dataflow comparison (Section IV-A)",
        &base_cfg,
    );
    let model = resnet50();
    let picks = ["layer1.0.conv2", "layer2.1.conv2", "layer4.2.conv3"];
    let layers: Vec<_> = picks
        .iter()
        .map(|name| {
            model
                .layers
                .iter()
                .find(|l| l.name == *name)
                .expect("layer exists")
        })
        .collect();

    for pattern in NmPattern::EVALUATED {
        println!("\n{pattern} structured sparsity");
        // One sweep cell per (layer, dataflow), every cell pinned to the
        // campaign seed so operands match across dataflows.
        let cells: Vec<SweepCell> = layers
            .iter()
            .flat_map(|layer| {
                Dataflow::ALL.into_iter().map(|dataflow| SweepCell {
                    dims: layer.gemm,
                    pattern,
                    dataflow,
                    seed: base_cfg.seed,
                })
            })
            .collect();
        let results = run_cells(cells, &base_cfg).expect("simulation succeeds");

        let mut table = Table::new(vec![
            "layer",
            "dataflow",
            "cycles",
            "vs B-stationary",
            "stores",
        ]);
        for (layer, per_layer) in layers.iter().zip(results.chunks(Dataflow::ALL.len())) {
            let b_cycles = per_layer
                .iter()
                .find(|c| c.cell.dataflow == Dataflow::BStationary)
                .map(|c| c.comparison.baseline.report.cycles)
                .expect("B-stationary present");
            for cell in per_layer {
                let report = &cell.comparison.baseline.report;
                table.row(vec![
                    layer.name.clone(),
                    cell.cell.dataflow.to_string(),
                    report.cycles.to_string(),
                    format!(
                        "{:+.1}%",
                        (report.cycles as f64 / b_cycles as f64 - 1.0) * 100.0
                    ),
                    report.mem.vector_stores.to_string(),
                ]);
            }
        }
        print!("{}", table.render());
    }
    println!("\nexpected: B-stationary fastest; C-stationary far fewer stores, no time win");
}
