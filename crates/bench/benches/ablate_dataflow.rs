//! Ablation for the Section IV-A claim: "the B-stationary dataflow
//! (used by 'Proposed') also yields the best total execution times for
//! 'Row-Wise-SpMM'", and "if 'Row-Wise-SpMM' were to employ a
//! C-stationary dataflow, its total number of memory stores would
//! decrease significantly [but] this reduction ... does not improve the
//! total execution time".
//!
//! Runs Row-Wise-SpMM under all three dataflows on representative
//! ResNet50 layers.

use indexmac::experiment::{run_gemm, Algorithm};
use indexmac::kernels::{Dataflow, KernelParams};
use indexmac::sparse::NmPattern;
use indexmac::table::Table;
use indexmac_bench::{banner, Profile};
use indexmac_cnn::resnet50;

fn main() {
    let base_cfg = Profile::from_env().config();
    banner("Ablation: Row-Wise-SpMM dataflow comparison (Section IV-A)", &base_cfg);
    let model = resnet50();
    let picks = ["layer1.0.conv2", "layer2.1.conv2", "layer4.2.conv3"];

    for pattern in [NmPattern::P1_4, NmPattern::P2_4] {
        println!("\n{pattern} structured sparsity");
        let mut table =
            Table::new(vec!["layer", "dataflow", "cycles", "vs B-stationary", "stores"]);
        for name in picks {
            let layer = model.layers.iter().find(|l| l.name == name).expect("layer exists");
            let results: Vec<_> = Dataflow::ALL
                .into_iter()
                .map(|df| {
                    let cfg = indexmac::ExperimentConfig {
                        params: KernelParams { unroll: 4, dataflow: df },
                        ..base_cfg
                    };
                    let r = run_gemm(layer.gemm(), pattern, Algorithm::RowWiseSpmm, &cfg)
                        .expect("simulation succeeds");
                    (df, r)
                })
                .collect();
            let b_cycles = results
                .iter()
                .find(|(df, _)| *df == Dataflow::BStationary)
                .map(|(_, r)| r.report.cycles)
                .expect("B-stationary present");
            for (df, r) in results {
                table.row(vec![
                    name.to_string(),
                    df.to_string(),
                    r.report.cycles.to_string(),
                    format!("{:+.1}%", (r.report.cycles as f64 / b_cycles as f64 - 1.0) * 100.0),
                    r.report.mem.vector_stores.to_string(),
                ]);
            }
        }
        print!("{}", table.render());
    }
    println!("\nexpected: B-stationary fastest; C-stationary far fewer stores, no time win");
}
