//! Extension analysis: what bounds each kernel? Attributes cycle
//! pressure to engine throughput, cross-domain synchronisation, vector
//! memory and the scalar front-end — quantifying the paper's argument
//! that `vindexmac` removes the baseline's memory/synchronisation
//! bottleneck and moves the kernel toward compute-bound execution.

use indexmac::analysis::{analyze, mix_summary};
use indexmac::experiment::{run_gemm, Algorithm};
use indexmac::sparse::NmPattern;
use indexmac::table::Table;
use indexmac_bench::{banner, Profile};
use indexmac_models::resnet50;

fn main() {
    let cfg = Profile::from_env().config();
    banner("Analysis: per-kernel bottleneck attribution", &cfg);
    let model = resnet50();
    let layer = model
        .layers
        .iter()
        .find(|l| l.name == "layer2.1.conv2")
        .expect("layer exists");

    for pattern in NmPattern::EVALUATED {
        println!("\n{pattern} structured sparsity on {}", layer.name);
        let mut table = Table::new(vec![
            "kernel", "cycles", "bound by", "engine", "sync", "memory", "frontend",
        ]);
        for alg in [
            Algorithm::Dense,
            Algorithm::RowWiseSpmm,
            Algorithm::IndexMac,
        ] {
            let r = run_gemm(layer.gemm, pattern, alg, &cfg).expect("kernel runs");
            let b = analyze(&r.report, &cfg.sim);
            table.row(vec![
                alg.to_string(),
                r.report.cycles.to_string(),
                b.bound.to_string(),
                format!("{:.0}%", b.engine_share * 100.0),
                format!("{:.0}%", b.sync_share * 100.0),
                format!("{:.0}%", b.memory_share * 100.0),
                format!("{:.0}%", b.frontend_share * 100.0),
            ]);
            println!("  {alg}: {}", mix_summary(&r.report));
        }
        print!("{}", table.render());
    }
    println!("\nexpected: the proposed kernel cuts absolute memory/sync pressure (its");
    println!("engine share rises) — execution shifts toward compute-bound");
}
