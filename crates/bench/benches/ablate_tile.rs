//! Ablation for the Section III bound on the resident-tile size: "the
//! total number of rows of B that can be addressed is at most
//! M x VectorLength / N ... pre-loading fewer rows is possible, as long
//! as their number is a multiple of M". Sweeps `L` for the proposed
//! kernel (the paper's evaluation pins L = 16).

use indexmac::experiment::{run_gemm, Algorithm};
use indexmac::sparse::NmPattern;
use indexmac::table::Table;
use indexmac_bench::{banner, Profile};
use indexmac_models::resnet50;

fn main() {
    let base_cfg = Profile::from_env().config();
    banner(
        "Ablation: resident B-tile rows L (paper uses L=16)",
        &base_cfg,
    );
    let model = resnet50();
    let layer = model
        .layers
        .iter()
        .find(|l| l.name == "layer2.1.conv2")
        .expect("layer exists");

    for pattern in NmPattern::EVALUATED {
        println!("\n{pattern} structured sparsity on {}", layer.name);
        let mut table = Table::new(vec![
            "L",
            "cycles",
            "vs L=16",
            "B preload loads",
            "total mem accesses",
        ]);
        let mut l16 = 0u64;
        let mut rows: Vec<(usize, u64, u64, u64)> = Vec::new();
        for tile_rows in [4usize, 8, 12, 16, 20] {
            let cfg = indexmac::ExperimentConfig {
                tile_rows,
                ..base_cfg
            };
            match run_gemm(layer.gemm, pattern, Algorithm::IndexMac, &cfg) {
                Ok(r) => {
                    if tile_rows == 16 {
                        l16 = r.report.cycles;
                    }
                    rows.push((
                        tile_rows,
                        r.report.cycles,
                        r.report.mem.vector_loads,
                        r.report.mem.total_accesses(),
                    ));
                }
                Err(e) => println!("L={tile_rows}: rejected ({e})"),
            }
        }
        for (tile_rows, cycles, vloads, total) in rows {
            table.row(vec![
                tile_rows.to_string(),
                cycles.to_string(),
                format!("{:+.1}%", (cycles as f64 / l16 as f64 - 1.0) * 100.0),
                vloads.to_string(),
                total.to_string(),
            ]);
        }
        print!("{}", table.render());
    }
    println!("\nexpected: larger L amortises metadata over more of K; L=16 fills v16..v31");
}
