//! Reproduces **Fig. 6** — normalized total memory accesses of the
//! proposed kernel relative to Row-Wise-SpMM for the three CNNs, under
//! 1:4 and 2:4 structured sparsity. The paper reports average reductions
//! of 48 % (1:4) and 65 % (2:4), i.e. normalized accesses of ~0.52 and
//! ~0.35.

use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_pct, Table};
use indexmac_bench::{banner, CachedCompare, Profile};
use indexmac_models::Model;

fn main() {
    let cfg = Profile::from_env().config();
    banner(
        "Fig. 6: normalized total memory accesses (Row-Wise-SpMM = 100%)",
        &cfg,
    );

    for (panel, pattern) in ["(a)", "(b)"].into_iter().zip(NmPattern::EVALUATED) {
        let mut table = Table::new(vec!["CNN", "normalized accesses", "reduction"]);
        let mut sum = 0.0;
        let models = Model::paper_models();
        for model in &models {
            let mut cache = CachedCompare::new(cfg);
            cache.warm(model.layers.iter().map(|l| (l.gemm, pattern)));
            let mut base: u64 = 0;
            let mut prop: u64 = 0;
            for layer in &model.layers {
                let cmp = cache.compare(layer.gemm, pattern);
                base += cmp.baseline.report.mem.total_accesses();
                prop += cmp.proposed.report.mem.total_accesses();
            }
            let norm = prop as f64 / base as f64;
            sum += norm;
            table.row(vec![model.name.clone(), fmt_pct(norm), fmt_pct(1.0 - norm)]);
        }
        println!("\nFig. 6{panel} — {pattern} structured sparsity");
        print!("{}", table.render());
        println!(
            "average normalized accesses {}  (paper: ~{} => {} reduction)",
            fmt_pct(sum / models.len() as f64),
            if pattern == NmPattern::P1_4 {
                "52%"
            } else {
                "35%"
            },
            if pattern == NmPattern::P1_4 {
                "48%"
            } else {
                "65%"
            },
        );
    }
}
