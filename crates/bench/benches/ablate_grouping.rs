//! Ablation for the second-generation kernel's **register grouping**
//! (after arXiv 2501.10189): with `LMUL = lmul`, column tiles widen to
//! `lmul x VL`, each resident B row spans a group of `lmul` registers,
//! and the per-(row, k-tile) metadata reload is paid `lmul`x less
//! often — at the cost of a smaller `L` (the grouped tile must fit the
//! same 32-register file) and a tighter unroll budget.
//!
//! Sweeps `lmul ∈ {1, 2, 4}` for `vindexmac.vvi` on a representative
//! ResNet50 layer and prints every cell against the first-generation
//! `vindexmac.vx` kernel on the same operands.

use indexmac::experiment::{run_gemm, Algorithm, ExperimentConfig};
use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_speedup, Table};
use indexmac_bench::{banner, Profile};
use indexmac_kernels::GemmLayout;
use indexmac_models::resnet50;

fn main() {
    let base_cfg = Profile::from_env().config();
    banner(
        "Ablation: vindexmac.vvi register grouping (LMUL)",
        &base_cfg,
    );
    let model = resnet50();
    let layer = model
        .layers
        .iter()
        .find(|l| l.name == "layer2.1.conv2")
        .expect("layer exists");

    for pattern in NmPattern::EVALUATED {
        println!("\n{pattern} structured sparsity on {}", layer.name);
        let v1 = run_gemm(layer.gemm, pattern, Algorithm::IndexMac, &base_cfg)
            .expect("first-generation kernel simulates");
        let mut table = Table::new(vec![
            "lmul",
            "L (fitted)",
            "cycles",
            "instret",
            "vs vindexmac.vx",
            "total mem accesses",
        ]);
        table.row(vec![
            "vx".into(),
            base_cfg.tile_rows.to_string(),
            v1.report.cycles.to_string(),
            v1.report.instructions.to_string(),
            fmt_speedup(1.0),
            v1.report.mem.total_accesses().to_string(),
        ]);
        for lmul in [1usize, 2, 4] {
            let cfg = ExperimentConfig { lmul, ..base_cfg };
            let fitted = GemmLayout::fit_tile_rows(cfg.tile_rows, lmul, pattern);
            match run_gemm(layer.gemm, pattern, Algorithm::IndexMac2, &cfg) {
                Ok(r) => {
                    table.row(vec![
                        format!("m{lmul}"),
                        fitted.to_string(),
                        r.report.cycles.to_string(),
                        r.report.instructions.to_string(),
                        fmt_speedup(v1.report.cycles as f64 / r.report.cycles as f64),
                        r.report.mem.total_accesses().to_string(),
                    ]);
                }
                Err(e) => println!("lmul={lmul}: rejected ({e})"),
            }
        }
        print!("{}", table.render());
    }
    println!(
        "\nexpected: m1 and m2 beat vindexmac.vx on both cycles and instret, with m2 \
         ahead (wider tiles, fewer metadata reloads); m4's L=4 tile re-reads B so often \
         that it only pays off when the GEMM is wide enough to fill 64-element tiles"
    );
}
