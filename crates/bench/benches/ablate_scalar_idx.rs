//! Extension ablation: how much of the remaining Algorithm 3 time is
//! the `vmv.x.s` vector-to-scalar synchronisation? Compares
//! Row-Wise-SpMM, the paper's Algorithm 3, and a variant that fetches
//! per-nonzero metadata with scalar loads (`lw` + `vmv.s.x`) instead of
//! the slide/move walk.

use indexmac::experiment::{run_gemm, Algorithm};
use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_speedup, Table};
use indexmac_bench::{banner, Profile};
use indexmac_models::resnet50;

fn main() {
    let cfg = Profile::from_env().config();
    banner(
        "Ablation: metadata access path (vmv.x.s + slides vs scalar loads)",
        &cfg,
    );
    let model = resnet50();
    let layer = model
        .layers
        .iter()
        .find(|l| l.name == "layer2.1.conv2")
        .expect("layer exists");

    for pattern in NmPattern::EVALUATED {
        println!("\n{pattern} structured sparsity on {}", layer.name);
        let mut table = Table::new(vec![
            "kernel",
            "cycles",
            "speedup vs Row-Wise",
            "v2s syncs",
            "scalar loads",
        ]);
        let base =
            run_gemm(layer.gemm, pattern, Algorithm::RowWiseSpmm, &cfg).expect("baseline runs");
        for alg in [
            Algorithm::RowWiseSpmm,
            Algorithm::IndexMac,
            Algorithm::ScalarIndexed,
        ] {
            let r = run_gemm(layer.gemm, pattern, alg, &cfg).expect("kernel runs");
            table.row(vec![
                alg.to_string(),
                r.report.cycles.to_string(),
                fmt_speedup(r.report.speedup_over(&base.report)),
                r.report.v2s_syncs.to_string(),
                r.report.mem.scalar_loads.to_string(),
            ]);
        }
        print!("{}", table.render());
    }
    println!("\nexpected: the scalar-indexed variant removes all v2s syncs at the cost of");
    println!("L1 metadata traffic — quantifying the cross-domain coupling in Algorithm 3");
}
