//! Extension ablation: sensitivity of the speedup to the hardware
//! vector length. The paper's machine is fixed at VLEN = 512 bits;
//! this sweep re-derives Fig. 5-style totals at 256/512/1024 bits to
//! show the mechanism is not an artefact of one VLEN (wider vectors
//! amortise per-row overheads over more columns per tile).

use indexmac::sparse::NmPattern;
use indexmac::table::{fmt_pct, fmt_speedup, Table};
use indexmac_bench::{banner, CachedCompare, Profile};
use indexmac_models::resnet50;

fn main() {
    let base_cfg = Profile::from_env().config();
    banner(
        "Ablation: hardware vector length (Table I uses 512-bit)",
        &base_cfg,
    );
    let model = resnet50();

    for pattern in NmPattern::EVALUATED {
        println!("\n{pattern} structured sparsity, ResNet50 totals");
        let mut table = Table::new(vec![
            "VLEN",
            "vl (e32)",
            "total speedup",
            "normalized mem accesses",
        ]);
        for vlen in [256usize, 512, 1024] {
            let cfg = indexmac::ExperimentConfig {
                sim: base_cfg.sim.with_vlen(vlen),
                ..base_cfg
            };
            let mut cache = CachedCompare::new(cfg);
            cache.warm(model.layers.iter().map(|l| (l.gemm, pattern)));
            let mut base_cycles = 0u64;
            let mut prop_cycles = 0u64;
            let mut base_mem = 0u64;
            let mut prop_mem = 0u64;
            for layer in &model.layers {
                let cmp = cache.compare(layer.gemm, pattern);
                base_cycles += cmp.baseline.report.cycles;
                prop_cycles += cmp.proposed.report.cycles;
                base_mem += cmp.baseline.report.mem.total_accesses();
                prop_mem += cmp.proposed.report.mem.total_accesses();
            }
            table.row(vec![
                format!("{vlen}b"),
                (vlen / 32).to_string(),
                fmt_speedup(base_cycles as f64 / prop_cycles as f64),
                fmt_pct(prop_mem as f64 / base_mem as f64),
            ]);
        }
        print!("{}", table.render());
    }
}
