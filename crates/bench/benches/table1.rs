//! Reproduces **Table I** — the simulated processor configuration —
//! from the live `SimConfig`, so the printed table is guaranteed to be
//! what every other experiment actually simulates.

use indexmac_bench::{banner, Profile};
use indexmac_vpu::SimConfig;

fn main() {
    let cfg = Profile::from_env().config();
    banner("Table I: simulated processor configuration", &cfg);
    println!("{}", SimConfig::table_i());
    println!();
    println!("(paper values: RV64GC 8-way OoO, 60-entry ROB, L1I/L1D 64KB 4-way,");
    println!(" 512-bit 16-lane vector engine with 16 load + 16 store queues into a");
    println!(" shared 512KB 8-way 8-bank L2 with 8-cycle hits, DDR4-2400 memory)");
}
