//! The pinned BERT-FFN vvi-vs-vx comparison under each timing backend
//! — the cross-backend acceptance measurement of the pluggable
//! `TimingModel` layer, emitted to `BENCH_timing.json`.
//!
//! One decoded kernel pair (`vindexmac.vx` baseline, `vindexmac.vvi`
//! m2 proposed, `3072x768x128` at 1:4 — the `tests/paper_claims.rs`
//! shape) drives the in-order scoreboard, the explicit 5-stage
//! pipeline, and the out-of-order core in turn. Per backend the row
//! records both kernels' simulated cycles, the vvi cycle lead, the ROB
//! stall mass, and the host wall time of the simulation itself (the
//! OoO structures cost real time to model).
//!
//! Expected: instret is bit-identical across backends (the decoupled
//! vector engine is shared; timing models only move cycles), and the
//! OoO lead is no smaller than the in-order lead — vvi's zero scalar
//! coupling per nonzero is exactly what out-of-order dispatch cannot
//! accelerate away on the vx side (the per-index vector-to-scalar
//! round trip commits through the ROB on any machine).
//!
//! `INDEXMAC_PROFILE=smoke` caps the GEMM (CI); `default`/`full` run
//! the uncapped pinned shape.

use indexmac::experiment::{
    compare_gemm, decode_cache_stats, reset_decode_cache, ExperimentConfig, GemmComparison,
};
use indexmac::kernels::GemmDims;
use indexmac::sparse::NmPattern;
use indexmac::vpu::TimingKind;
use indexmac_bench::{banner, Profile};
use serde::{Serialize, Value};
use std::time::Instant;

/// The BERT-base FFN-up GEMM (d_ff x d_model x seq_len), as pinned in
/// `tests/paper_claims.rs`.
const BERT_FFN: GemmDims = GemmDims {
    rows: 3072,
    inner: 768,
    cols: 128,
};

struct Row {
    backend: TimingKind,
    comparison: GemmComparison,
    wall_ms: f64,
}

impl Row {
    fn vx(&self) -> &indexmac::vpu::RunReport {
        &self.comparison.baseline.report
    }

    fn vvi(&self) -> &indexmac::vpu::RunReport {
        &self.comparison.proposed.report
    }

    /// vx cycles / vvi cycles — the lead the backends are compared on.
    fn lead(&self) -> f64 {
        self.comparison.speedup()
    }

    fn to_value(&self) -> Value {
        Value::object([
            ("backend", self.backend.name().to_value()),
            ("vx_cycles", self.vx().cycles.to_value()),
            ("vvi_cycles", self.vvi().cycles.to_value()),
            ("vx_instructions", self.vx().instructions.to_value()),
            ("vvi_instructions", self.vvi().instructions.to_value()),
            ("vx_rob_stall_cycles", self.vx().rob_stall_cycles.to_value()),
            (
                "vvi_rob_stall_cycles",
                self.vvi().rob_stall_cycles.to_value(),
            ),
            ("vx_v2s_syncs", self.vx().v2s_syncs.to_value()),
            ("vvi_v2s_syncs", self.vvi().v2s_syncs.to_value()),
            ("vvi_lead", self.lead().to_value()),
            ("sim_wall_ms", self.wall_ms.to_value()),
        ])
    }
}

fn main() {
    let profile = Profile::from_env();
    let base = ExperimentConfig {
        caps: profile.caps(),
        ..ExperimentConfig::transformer()
    };
    banner("timing_backends: vvi-vs-vx under each timing model", &base);
    let dims = profile.caps().apply(BERT_FFN);
    println!(
        "pinned shape {}x{}x{} (BERT-FFN{}), 1:4, vindexmac.vvi m{} vs vindexmac.vx\n",
        dims.rows,
        dims.inner,
        dims.cols,
        if dims == BERT_FFN { "" } else { ", capped" },
        base.lmul,
    );

    // One decoded program pair serves every backend: the decode cache
    // is keyed by kernel, not by timing model.
    reset_decode_cache();
    let rows: Vec<Row> = TimingKind::ALL
        .into_iter()
        .map(|backend| {
            let cfg = base.with_timing(backend);
            let t = Instant::now();
            let comparison = compare_gemm(BERT_FFN, NmPattern::P1_4, &cfg)
                .expect("pinned comparison runs under every backend");
            Row {
                backend,
                comparison,
                wall_ms: t.elapsed().as_secs_f64() * 1e3,
            }
        })
        .collect();
    let cache = decode_cache_stats();
    assert_eq!(cache.misses, 2, "backends must reuse the decoded pair");
    for r in &rows {
        assert_eq!(
            r.vx().instructions,
            rows[0].vx().instructions,
            "{}: vx instret must be backend-invariant",
            r.backend
        );
        assert_eq!(
            r.vvi().instructions,
            rows[0].vvi().instructions,
            "{}: vvi instret must be backend-invariant",
            r.backend
        );
    }

    println!(
        "{:<10} {:>14} {:>14} {:>13} {:>13} {:>9} {:>12}",
        "backend",
        "vx cycles",
        "vvi cycles",
        "vx ROB stall",
        "vvi ROB stall",
        "vvi lead",
        "sim wall ms"
    );
    for r in &rows {
        println!(
            "{:<10} {:>14} {:>14} {:>13} {:>13} {:>8.2}x {:>12.1}",
            r.backend.name(),
            r.vx().cycles,
            r.vvi().cycles,
            r.vx().rob_stall_cycles,
            r.vvi().rob_stall_cycles,
            r.lead(),
            r.wall_ms,
        );
    }
    println!(
        "\ninstret backend-invariant: vx {} / vvi {} on all three backends (decode cache: {cache})",
        rows[0].vx().instructions,
        rows[0].vvi().instructions,
    );
    let (io, ooo) = (&rows[0], &rows[2]);
    // Exact cross-multiplied comparison, as asserted in paper_claims.
    let widened = ooo.vx().cycles as u128 * io.vvi().cycles as u128
        >= io.vx().cycles as u128 * ooo.vvi().cycles as u128;
    println!(
        "OoO lead {:.3} vs in-order lead {:.3}: {}",
        ooo.lead(),
        io.lead(),
        if widened {
            "no smaller — vvi's decoupling survives out-of-order issue"
        } else {
            "SMALLER — regression against the acceptance criterion"
        },
    );

    let json = Value::object([
        ("bench", "timing_backends".to_value()),
        ("profile", format!("{}", base.caps).to_value()),
        (
            "dims",
            format!("{}x{}x{}", dims.rows, dims.inner, dims.cols).to_value(),
        ),
        ("pattern", "1:4".to_value()),
        ("lmul", base.lmul.to_value()),
        (
            "rows",
            Value::Array(rows.iter().map(Row::to_value).collect()),
        ),
        ("ooo_lead_no_smaller_than_inorder", widened.to_value()),
    ]);
    // Anchor at the workspace root regardless of the invocation cwd
    // (cargo runs bench binaries from the package directory).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_timing.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("total"))
        .expect("write BENCH_timing.json");
    println!("\nwrote {path}");
}
