//! Shared utilities for the figure/table reproduction harnesses.
//!
//! Each `cargo bench` target in this crate regenerates one table or
//! figure of the paper (see DESIGN.md's experiment index) and prints the
//! same rows/series the paper reports. The `INDEXMAC_PROFILE`
//! environment variable selects the simulation scale:
//!
//! * `smoke` — tiny GEMM caps, seconds per figure (CI);
//! * `default` — the documented evaluation caps;
//! * `full` — uncapped layer sizes (hours; the gem5-equivalent run).

#![warn(missing_docs)]

use indexmac::experiment::{compare_gemm, ExperimentConfig, GemmComparison};
use indexmac::kernels::GemmDims;
use indexmac::sparse::NmPattern;
use indexmac_cnn::GemmCaps;
use std::collections::HashMap;

/// Simulation scale selected via `INDEXMAC_PROFILE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Tiny caps for CI smoke runs.
    Smoke,
    /// The documented evaluation caps (default).
    Default,
    /// Uncapped, full-size layers.
    Full,
}

impl Profile {
    /// Reads `INDEXMAC_PROFILE` (unset or unknown values mean `Default`).
    pub fn from_env() -> Self {
        match std::env::var("INDEXMAC_PROFILE").as_deref() {
            Ok("smoke") => Profile::Smoke,
            Ok("full") => Profile::Full,
            _ => Profile::Default,
        }
    }

    /// The GEMM caps this profile simulates under.
    pub fn caps(self) -> GemmCaps {
        match self {
            Profile::Smoke => GemmCaps::smoke(),
            Profile::Default => GemmCaps::default_eval(),
            Profile::Full => GemmCaps::unbounded(),
        }
    }

    /// An [`ExperimentConfig`] carrying these caps.
    pub fn config(self) -> ExperimentConfig {
        ExperimentConfig { caps: self.caps(), ..ExperimentConfig::paper() }
    }
}

/// Memoising wrapper around [`compare_gemm`]: CNN layers that cap to the
/// same GEMM shape share one simulation (capping erases what
/// distinguished them, so re-running would reproduce identical numbers).
pub struct CachedCompare {
    cfg: ExperimentConfig,
    cache: HashMap<(usize, usize, usize, NmPattern), GemmComparison>,
}

impl CachedCompare {
    /// Creates an empty cache over `cfg`.
    pub fn new(cfg: ExperimentConfig) -> Self {
        Self { cfg, cache: HashMap::new() }
    }

    /// The configuration used for every comparison.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Runs (or reuses) the baseline-vs-proposed comparison for `dims`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation itself fails — a bench harness has no
    /// useful recovery, and failing loudly is what we want there.
    pub fn compare(&mut self, dims: GemmDims, pattern: NmPattern) -> GemmComparison {
        let capped = self.cfg.caps.apply(dims);
        let key = (capped.rows, capped.inner, capped.cols, pattern);
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let result = compare_gemm(dims, pattern, &self.cfg)
            .unwrap_or_else(|e| panic!("comparison failed for {dims:?} {pattern}: {e}"));
        self.cache.insert(key, result.clone());
        result
    }

    /// Number of distinct simulations performed.
    pub fn unique_runs(&self) -> usize {
        self.cache.len()
    }
}

/// Prints the standard harness banner: what figure this regenerates and
/// under which caps.
pub fn banner(what: &str, cfg: &ExperimentConfig) {
    println!("==========================================================================");
    println!("IndexMAC reproduction — {what}");
    println!(
        "simulation scale: {} | L={} | unroll x{} | seed {:#x}",
        cfg.caps, cfg.tile_rows, cfg.params.unroll, cfg.seed
    );
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing_defaults() {
        // Unset or garbage -> Default (cannot portably set env in tests
        // running in parallel, so only the default path is asserted).
        assert_eq!(Profile::from_env(), Profile::Default);
        assert_eq!(Profile::Smoke.caps(), GemmCaps::smoke());
        assert_eq!(Profile::Full.caps(), GemmCaps::unbounded());
    }

    #[test]
    fn cache_dedupes_equal_capped_shapes() {
        let mut c = CachedCompare::new(Profile::Smoke.config());
        let a = GemmDims { rows: 1000, inner: 1000, cols: 1000 };
        let b = GemmDims { rows: 2000, inner: 3000, cols: 4000 }; // same after caps
        let ra = c.compare(a, NmPattern::P1_4);
        let rb = c.compare(b, NmPattern::P1_4);
        assert_eq!(c.unique_runs(), 1);
        assert_eq!(ra.baseline.report.cycles, rb.baseline.report.cycles);
        // Different pattern -> new simulation.
        c.compare(a, NmPattern::P2_4);
        assert_eq!(c.unique_runs(), 2);
    }
}
