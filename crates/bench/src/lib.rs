//! Shared utilities for the figure/table reproduction harnesses.
//!
//! Each `cargo bench` target in this crate regenerates one table or
//! figure of the paper (see DESIGN.md's experiment index) and prints the
//! same rows/series the paper reports. The `INDEXMAC_PROFILE`
//! environment variable selects the simulation scale:
//!
//! * `smoke` — tiny GEMM caps, seconds per figure (CI);
//! * `default` — the documented evaluation caps;
//! * `full` — uncapped layer sizes (hours; the gem5-equivalent run).
//!
//! Figure harnesses batch their simulations through the parallel sweep
//! runner (`indexmac::sweep`) by calling [`CachedCompare::warm`] with
//! the full layer list up front; the printed numbers are identical to
//! the old serial loops, just produced on every core.

#![warn(missing_docs)]

use indexmac::experiment::{compare_gemm, ExperimentConfig, GemmComparison};
use indexmac::kernels::GemmDims;
use indexmac::sparse::NmPattern;
use indexmac::sweep::{run_cells, SweepCell};
use indexmac_models::GemmCaps;
use std::collections::HashMap;

/// Simulation scale selected via `INDEXMAC_PROFILE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Tiny caps for CI smoke runs.
    Smoke,
    /// The documented evaluation caps (default).
    Default,
    /// Uncapped, full-size layers.
    Full,
}

impl Profile {
    /// Reads `INDEXMAC_PROFILE` (unset or unknown values mean `Default`).
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("INDEXMAC_PROFILE").ok().as_deref())
    }

    /// Pure counterpart of [`Profile::from_env`]: maps the raw
    /// environment value to a profile. `smoke`, `default` and `full`
    /// select their profile (case-sensitively, like the real env var);
    /// `None` (unset) and any unknown value fall back to `Default`, so
    /// a typo degrades to the documented evaluation scale instead of
    /// aborting a long harness run.
    pub fn from_env_value(value: Option<&str>) -> Self {
        match value {
            Some("smoke") => Profile::Smoke,
            Some("full") => Profile::Full,
            Some("default") | None => Profile::Default,
            Some(_) => Profile::Default,
        }
    }

    /// The GEMM caps this profile simulates under.
    pub fn caps(self) -> GemmCaps {
        match self {
            Profile::Smoke => GemmCaps::smoke(),
            Profile::Default => GemmCaps::default_eval(),
            Profile::Full => GemmCaps::unbounded(),
        }
    }

    /// An [`ExperimentConfig`] carrying these caps.
    pub fn config(self) -> ExperimentConfig {
        ExperimentConfig {
            caps: self.caps(),
            ..ExperimentConfig::paper()
        }
    }
}

type CacheKey = (usize, usize, usize, NmPattern);

/// Memoising wrapper around [`compare_gemm`]: CNN layers that cap to the
/// same GEMM shape share one simulation (capping erases what
/// distinguished them, so re-running would reproduce identical numbers).
/// [`CachedCompare::warm`] fills the cache in parallel via the sweep
/// runner.
pub struct CachedCompare {
    cfg: ExperimentConfig,
    cache: HashMap<CacheKey, GemmComparison>,
}

impl CachedCompare {
    /// Creates an empty cache over `cfg`.
    pub fn new(cfg: ExperimentConfig) -> Self {
        Self {
            cfg,
            cache: HashMap::new(),
        }
    }

    /// The configuration used for every comparison.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Runs (or reuses) the baseline-vs-proposed comparison for `dims`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation itself fails — a bench harness has no
    /// useful recovery, and failing loudly is what we want there.
    pub fn compare(&mut self, dims: GemmDims, pattern: NmPattern) -> GemmComparison {
        let key = self.key(dims, pattern);
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let result = compare_gemm(dims, pattern, &self.cfg)
            .unwrap_or_else(|e| panic!("comparison failed for {dims:?} {pattern}: {e}"));
        self.cache.insert(key, result.clone());
        result
    }

    /// Pre-populates the cache by fanning every *distinct capped*
    /// `(dims, pattern)` request out through the parallel sweep runner
    /// ([`indexmac::sweep::run_cells`]). Subsequent [`Self::compare`]
    /// calls are cache hits, so a figure harness becomes: `warm` the
    /// whole layer list in parallel, then print rows serially.
    ///
    /// Every warmed cell pins the campaign seed and dataflow, so the
    /// numbers are bit-identical to what a serial `compare` loop would
    /// have produced.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails, like [`Self::compare`].
    pub fn warm(&mut self, requests: impl IntoIterator<Item = (GemmDims, NmPattern)>) {
        let mut todo: Vec<(CacheKey, SweepCell)> = Vec::new();
        for (dims, pattern) in requests {
            let key = self.key(dims, pattern);
            if self.cache.contains_key(&key) || todo.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let cell = SweepCell {
                dims,
                pattern,
                dataflow: self.cfg.params.dataflow,
                seed: self.cfg.seed,
            };
            todo.push((key, cell));
        }
        if todo.is_empty() {
            return;
        }
        let (keys, cells): (Vec<CacheKey>, Vec<SweepCell>) = todo.into_iter().unzip();
        let results =
            run_cells(cells, &self.cfg).unwrap_or_else(|e| panic!("sweep warm-up failed: {e}"));
        for (key, result) in keys.into_iter().zip(results) {
            self.cache.insert(key, result.comparison);
        }
    }

    fn key(&self, dims: GemmDims, pattern: NmPattern) -> CacheKey {
        let capped = self.cfg.caps.apply(dims);
        (capped.rows, capped.inner, capped.cols, pattern)
    }

    /// Number of distinct simulations performed.
    pub fn unique_runs(&self) -> usize {
        self.cache.len()
    }
}

/// Prints the standard harness banner: what figure this regenerates and
/// under which caps.
pub fn banner(what: &str, cfg: &ExperimentConfig) {
    println!("==========================================================================");
    println!("IndexMAC reproduction — {what}");
    println!(
        "simulation scale: {} | L={} | unroll x{} | seed {:#x}",
        cfg.caps, cfg.tile_rows, cfg.params.unroll, cfg.seed
    );
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing_defaults() {
        // Unset or garbage -> Default (cannot portably set env in tests
        // running in parallel, so only the default path is asserted).
        assert_eq!(Profile::from_env(), Profile::Default);
        assert_eq!(Profile::Smoke.caps(), GemmCaps::smoke());
        assert_eq!(Profile::Full.caps(), GemmCaps::unbounded());
    }

    #[test]
    fn profile_env_values_select_their_profile() {
        assert_eq!(Profile::from_env_value(Some("smoke")), Profile::Smoke);
        assert_eq!(Profile::from_env_value(Some("default")), Profile::Default);
        assert_eq!(Profile::from_env_value(Some("full")), Profile::Full);
    }

    #[test]
    fn profile_unset_env_falls_back_to_default() {
        assert_eq!(Profile::from_env_value(None), Profile::Default);
    }

    #[test]
    fn profile_unknown_env_values_degrade_to_default() {
        for bad in [
            "", "Smoke", "FULL", "smokey", "tiny", " smoke", "smoke ", "1",
        ] {
            assert_eq!(
                Profile::from_env_value(Some(bad)),
                Profile::Default,
                "value {bad:?}"
            );
        }
    }

    #[test]
    fn profile_caps_mapping_is_exhaustive() {
        assert_eq!(Profile::Default.caps(), GemmCaps::default_eval());
        assert_eq!(Profile::Smoke.config().caps, GemmCaps::smoke());
        // config() must keep everything but the caps at paper defaults.
        let cfg = Profile::Full.config();
        let paper = ExperimentConfig::paper();
        assert_eq!(cfg.seed, paper.seed);
        assert_eq!(cfg.tile_rows, paper.tile_rows);
        assert_eq!(cfg.params, paper.params);
    }

    #[test]
    fn cache_dedupes_equal_capped_shapes() {
        let mut c = CachedCompare::new(Profile::Smoke.config());
        let a = GemmDims {
            rows: 1000,
            inner: 1000,
            cols: 1000,
        };
        let b = GemmDims {
            rows: 2000,
            inner: 3000,
            cols: 4000,
        }; // same after caps
        let ra = c.compare(a, NmPattern::P1_4);
        let rb = c.compare(b, NmPattern::P1_4);
        assert_eq!(c.unique_runs(), 1);
        assert_eq!(ra.baseline.report.cycles, rb.baseline.report.cycles);
        // Different pattern -> new simulation.
        c.compare(a, NmPattern::P2_4);
        assert_eq!(c.unique_runs(), 2);
    }

    #[test]
    fn warm_matches_serial_compare_exactly() {
        let dims = [
            GemmDims {
                rows: 4,
                inner: 32,
                cols: 16,
            },
            GemmDims {
                rows: 8,
                inner: 64,
                cols: 32,
            },
        ];
        let mut serial = CachedCompare::new(Profile::Smoke.config());
        let mut warmed = CachedCompare::new(Profile::Smoke.config());
        warmed.warm(dims.iter().map(|d| (*d, NmPattern::P1_4)));
        assert_eq!(warmed.unique_runs(), 2, "warm must fill the cache");
        for d in dims {
            let a = serial.compare(d, NmPattern::P1_4);
            let b = warmed.compare(d, NmPattern::P1_4);
            assert_eq!(a.baseline.report, b.baseline.report);
            assert_eq!(a.proposed.report, b.proposed.report);
        }
        // The warmed cache served everything without new simulations.
        assert_eq!(warmed.unique_runs(), 2);
    }

    #[test]
    fn warm_dedupes_capped_duplicates_and_tolerates_repeats() {
        let mut c = CachedCompare::new(Profile::Smoke.config());
        let a = GemmDims {
            rows: 1000,
            inner: 1000,
            cols: 1000,
        };
        let b = GemmDims {
            rows: 2000,
            inner: 3000,
            cols: 4000,
        }; // same after caps
        c.warm([
            (a, NmPattern::P1_4),
            (b, NmPattern::P1_4),
            (a, NmPattern::P1_4),
        ]);
        assert_eq!(c.unique_runs(), 1);
        c.warm([(a, NmPattern::P1_4)]); // already cached: no-op
        assert_eq!(c.unique_runs(), 1);
    }
}
