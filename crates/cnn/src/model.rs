//! CNN model container and summaries.

use crate::layer::ConvLayer;
use indexmac_kernels::ElemType;

/// A CNN as a flat list of convolution layers (the only layers the
/// paper's evaluation executes as matrix multiplications).
#[derive(Debug, Clone, PartialEq)]
pub struct CnnModel {
    /// Model name ("ResNet50" etc.).
    pub name: &'static str,
    /// Convolutions in network order.
    pub layers: Vec<ConvLayer>,
    /// Element precision the model's GEMMs run at: `F32` for the
    /// paper's networks, `I8`/`I16` for the quantized preset variants.
    pub precision: ElemType,
}

impl CnnModel {
    /// Wraps a layer list at the paper's f32 precision.
    pub fn new(name: &'static str, layers: Vec<ConvLayer>) -> Self {
        Self {
            name,
            layers,
            precision: ElemType::F32,
        }
    }

    /// The same network tagged with a different element precision (the
    /// layer shapes are precision-independent — im2col geometry only).
    #[must_use]
    pub fn with_precision(mut self, name: &'static str, precision: ElemType) -> Self {
        self.name = name;
        self.precision = precision;
        self
    }

    /// Total dense multiply-accumulate count.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::macs).sum()
    }

    /// The `count` layers with the largest MAC counts, heaviest first —
    /// used to pick representative layers for capped simulations.
    pub fn heaviest_layers(&self, count: usize) -> Vec<&ConvLayer> {
        let mut sorted: Vec<&ConvLayer> = self.layers.iter().collect();
        sorted.sort_by_key(|l| std::cmp::Reverse(l.macs()));
        sorted.truncate(count);
        sorted
    }

    /// All three evaluation models of the paper.
    pub fn paper_models() -> Vec<CnnModel> {
        vec![
            crate::resnet50(),
            crate::densenet121(),
            crate::inception_v3(),
        ]
    }

    /// The int8-quantized variants of the three evaluation models —
    /// same layer geometry, e8 datapath (widening i8→i32 MACs).
    pub fn quantized_models() -> Vec<CnnModel> {
        vec![
            crate::resnet50_int8(),
            crate::densenet121_int8(),
            crate::inception_v3_int8(),
        ]
    }
}

impl std::fmt::Display for CnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} conv layers, {:.2} GMACs",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_present() {
        let models = CnnModel::paper_models();
        assert_eq!(models.len(), 3);
        let names: Vec<&str> = models.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["ResNet50", "DenseNet121", "InceptionV3"]);
    }

    #[test]
    fn heaviest_layers_sorted() {
        let m = crate::resnet50();
        let top = m.heaviest_layers(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].macs() >= w[1].macs());
        }
        assert!(top[0].macs() >= m.total_macs() / m.layers.len() as u64);
    }

    #[test]
    fn quantized_variants_share_geometry() {
        use indexmac_kernels::ElemType;
        let f32s = CnnModel::paper_models();
        let int8s = CnnModel::quantized_models();
        assert_eq!(int8s.len(), 3);
        for (f, q) in f32s.iter().zip(&int8s) {
            assert_eq!(f.precision, ElemType::F32);
            assert_eq!(q.precision, ElemType::I8);
            assert_eq!(f.layers, q.layers, "{}: geometry must not change", q.name);
            assert!(q.name.ends_with("-int8"));
            assert_eq!(f.total_macs(), q.total_macs());
        }
    }

    #[test]
    fn display_lists_layers() {
        let m = crate::resnet50();
        let s = m.to_string();
        assert!(s.contains("ResNet50"));
        assert!(s.contains("conv1"));
        assert!(s.contains("GMACs"));
    }
}
