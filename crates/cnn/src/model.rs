//! CNN model container and summaries.

use crate::layer::ConvLayer;

/// A CNN as a flat list of convolution layers (the only layers the
/// paper's evaluation executes as matrix multiplications).
#[derive(Debug, Clone, PartialEq)]
pub struct CnnModel {
    /// Model name ("ResNet50" etc.).
    pub name: &'static str,
    /// Convolutions in network order.
    pub layers: Vec<ConvLayer>,
}

impl CnnModel {
    /// Wraps a layer list.
    pub fn new(name: &'static str, layers: Vec<ConvLayer>) -> Self {
        Self { name, layers }
    }

    /// Total dense multiply-accumulate count.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::macs).sum()
    }

    /// The `count` layers with the largest MAC counts, heaviest first —
    /// used to pick representative layers for capped simulations.
    pub fn heaviest_layers(&self, count: usize) -> Vec<&ConvLayer> {
        let mut sorted: Vec<&ConvLayer> = self.layers.iter().collect();
        sorted.sort_by_key(|l| std::cmp::Reverse(l.macs()));
        sorted.truncate(count);
        sorted
    }

    /// All three evaluation models of the paper.
    pub fn paper_models() -> Vec<CnnModel> {
        vec![crate::resnet50(), crate::densenet121(), crate::inception_v3()]
    }
}

impl std::fmt::Display for CnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} conv layers, {:.2} GMACs",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_present() {
        let models = CnnModel::paper_models();
        assert_eq!(models.len(), 3);
        let names: Vec<&str> = models.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["ResNet50", "DenseNet121", "InceptionV3"]);
    }

    #[test]
    fn heaviest_layers_sorted() {
        let m = crate::resnet50();
        let top = m.heaviest_layers(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].macs() >= w[1].macs());
        }
        assert!(top[0].macs() >= m.total_macs() / m.layers.len() as u64);
    }

    #[test]
    fn display_lists_layers() {
        let m = crate::resnet50();
        let s = m.to_string();
        assert!(s.contains("ResNet50"));
        assert!(s.contains("conv1"));
        assert!(s.contains("GMACs"));
    }
}
