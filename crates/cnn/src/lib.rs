//! CNN workload definitions for the IndexMAC evaluation.
//!
//! The paper evaluates three ImageNet CNNs — ResNet50, DenseNet121 and
//! InceptionV3 — whose convolutions are mapped to sparse x dense matrix
//! multiplications `A x B` ("the convolutions of each layer of the
//! examined CNNs are mapped to sparse-dense matrix multiplications"):
//! `A` holds the structured-sparse weights (one row per output channel,
//! `Cin*Kh*Kw` columns) and `B` the im2col-unrolled input features
//! (`Cin*Kh*Kw` rows, `Hout*Wout` columns).
//!
//! The architectures are generated programmatically from their published
//! block structures, giving the standard layer counts (53 / 120 / 94
//! convolutions respectively) and MAC totals.
//!
//! # Example
//!
//! ```
//! use indexmac_cnn::{resnet50, CnnModel};
//!
//! let model = resnet50();
//! assert_eq!(model.layers.len(), 53);
//! let conv1 = &model.layers[0];
//! assert_eq!(conv1.gemm().rows, 64); // output channels
//! ```

#![warn(missing_docs)]

pub mod densenet;
pub mod inception;
pub mod layer;
pub mod model;
pub mod resnet;
pub mod scaling;

pub use densenet::densenet121;
pub use inception::inception_v3;
pub use layer::ConvLayer;
pub use model::CnnModel;
pub use resnet::resnet50;
pub use scaling::GemmCaps;

use indexmac_kernels::ElemType;

/// Int8-quantized ResNet50: identical layer geometry, e8 datapath.
pub fn resnet50_int8() -> CnnModel {
    resnet50().with_precision("ResNet50-int8", ElemType::I8)
}

/// Int8-quantized DenseNet121.
pub fn densenet121_int8() -> CnnModel {
    densenet121().with_precision("DenseNet121-int8", ElemType::I8)
}

/// Int8-quantized InceptionV3.
pub fn inception_v3_int8() -> CnnModel {
    inception_v3().with_precision("InceptionV3-int8", ElemType::I8)
}
