//! Architectural state of the simulated machine.

use indexmac_isa::instr::FReg;
use indexmac_isa::{Lmul, Sew, VReg, VType, XReg};

/// Scalar register files, the vector register file and the vector CSRs.
///
/// Vector registers are stored as raw 32-bit lanes; instructions
/// reinterpret lanes as `u32` or `f32` as needed (this is exactly what
/// the hardware does — the VRF is bit-typed).
#[derive(Debug, Clone)]
pub struct ArchState {
    x: [u64; 32],
    f: [u32; 32],
    /// 32 vector registers x `vlmax` 32-bit lanes, register-major.
    vrf: Vec<u32>,
    vlmax: usize,
    vl: usize,
    vtype: VType,
    /// Program counter in instruction slots.
    pub pc: usize,
    /// Set by `ebreak`.
    pub halted: bool,
}

impl ArchState {
    /// Creates a zeroed state for a machine with `vlen_bits` of VLEN.
    ///
    /// # Panics
    ///
    /// Panics if `vlen_bits` is not a positive multiple of 32.
    pub fn new(vlen_bits: usize) -> Self {
        assert!(vlen_bits >= 32 && vlen_bits.is_multiple_of(32), "VLEN must be a multiple of 32");
        let vlmax = vlen_bits / 32;
        Self {
            x: [0; 32],
            f: [0; 32],
            vrf: vec![0; 32 * vlmax],
            vlmax,
            vl: vlmax,
            vtype: VType { sew: Sew::E32, lmul: Lmul::M1 },
            pc: 0,
            halted: false,
        }
    }

    /// Maximum elements per vector register at SEW=32.
    pub fn vlmax(&self) -> usize {
        self.vlmax
    }

    /// Maximum elements per register *group* under the current `vtype`
    /// (`vlmax * LMUL`).
    pub fn vlmax_grouped(&self) -> usize {
        self.vlmax * self.vtype.lmul.factor()
    }

    /// Current active vector length.
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Sets the active vector length.
    ///
    /// # Panics
    ///
    /// Panics if `vl` exceeds the grouped VLMAX of the current `vtype`
    /// (a `vsetvli` bug in the caller). Set `vtype` first when changing
    /// the grouping.
    pub fn set_vl(&mut self, vl: usize) {
        assert!(
            vl <= self.vlmax_grouped(),
            "vl {vl} exceeds grouped vlmax {}",
            self.vlmax_grouped()
        );
        self.vl = vl;
    }

    /// Current vtype.
    pub fn vtype(&self) -> VType {
        self.vtype
    }

    /// Sets vtype.
    pub fn set_vtype(&mut self, vt: VType) {
        self.vtype = vt;
    }

    /// Reads a scalar register (`x0` always reads zero).
    pub fn x(&self, r: XReg) -> u64 {
        self.x[r.index() as usize]
    }

    /// Writes a scalar register (writes to `x0` are discarded).
    pub fn set_x(&mut self, r: XReg, v: u64) {
        if !r.is_zero() {
            self.x[r.index() as usize] = v;
        }
    }

    /// Reads an FP register as raw bits.
    pub fn f_bits(&self, r: FReg) -> u32 {
        self.f[r.index() as usize]
    }

    /// Reads an FP register as `f32`.
    pub fn f32(&self, r: FReg) -> f32 {
        f32::from_bits(self.f_bits(r))
    }

    /// Writes an FP register from raw bits.
    pub fn set_f_bits(&mut self, r: FReg, bits: u32) {
        self.f[r.index() as usize] = bits;
    }

    /// Borrow of a whole vector register (all `vlmax` lanes).
    pub fn v(&self, r: VReg) -> &[u32] {
        let i = r.index() as usize;
        &self.vrf[i * self.vlmax..(i + 1) * self.vlmax]
    }

    /// Mutable borrow of a whole vector register.
    pub fn v_mut(&mut self, r: VReg) -> &mut [u32] {
        let i = r.index() as usize;
        &mut self.vrf[i * self.vlmax..(i + 1) * self.vlmax]
    }

    /// Borrow of a register *group*: `regs` consecutive registers
    /// starting at `r` (the VRF is register-major, so a group is one
    /// contiguous slice — exactly the hardware's LMUL view).
    ///
    /// # Panics
    ///
    /// Panics if the group runs past `v31`; grouped instructions check
    /// their operands before calling this.
    pub fn v_group(&self, r: VReg, regs: usize) -> &[u32] {
        let i = r.index() as usize;
        assert!(i + regs <= 32, "register group v{i}..v{} out of range", i + regs);
        &self.vrf[i * self.vlmax..(i + regs) * self.vlmax]
    }

    /// Mutable borrow of a register group (see [`ArchState::v_group`]).
    ///
    /// # Panics
    ///
    /// Panics if the group runs past `v31`.
    pub fn v_group_mut(&mut self, r: VReg, regs: usize) -> &mut [u32] {
        let i = r.index() as usize;
        assert!(i + regs <= 32, "register group v{i}..v{} out of range", i + regs);
        &mut self.vrf[i * self.vlmax..(i + regs) * self.vlmax]
    }

    /// Lane `i` of register `r` as `f32`.
    pub fn v_f32(&self, r: VReg, i: usize) -> f32 {
        f32::from_bits(self.v(r)[i])
    }

    /// The first `vl` lanes of `r` as `f32` values (convenience for
    /// tests and result extraction).
    pub fn v_as_f32(&self, r: VReg) -> Vec<f32> {
        self.v(r)[..self.vl].iter().map(|b| f32::from_bits(*b)).collect()
    }

    /// Writes `f32` values into the first lanes of `r` (test helper).
    ///
    /// # Panics
    ///
    /// Panics if more values than `vlmax` are supplied.
    pub fn set_v_f32(&mut self, r: VReg, values: &[f32]) {
        assert!(values.len() <= self.vlmax, "too many lanes");
        for (i, v) in values.iter().enumerate() {
            self.v_mut(r)[i] = v.to_bits();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut s = ArchState::new(512);
        s.set_x(XReg::ZERO, 123);
        assert_eq!(s.x(XReg::ZERO), 0);
        s.set_x(XReg::T0, 7);
        assert_eq!(s.x(XReg::T0), 7);
    }

    #[test]
    fn vrf_layout() {
        let mut s = ArchState::new(512);
        assert_eq!(s.vlmax(), 16);
        assert_eq!(s.v(VReg::V1).len(), 16);
        s.v_mut(VReg::V2)[3] = 0xAA;
        assert_eq!(s.v(VReg::V2)[3], 0xAA);
        assert_eq!(s.v(VReg::V1)[3], 0); // no aliasing between registers
        assert_eq!(s.v(VReg::V3)[3], 0);
    }

    #[test]
    fn f32_lane_views() {
        let mut s = ArchState::new(256);
        assert_eq!(s.vlmax(), 8);
        s.set_v_f32(VReg::V4, &[1.5, -2.0]);
        assert_eq!(s.v_f32(VReg::V4, 0), 1.5);
        assert_eq!(s.v_f32(VReg::V4, 1), -2.0);
        s.set_vl(2);
        assert_eq!(s.v_as_f32(VReg::V4), vec![1.5, -2.0]);
    }

    #[test]
    fn fp_registers_are_bit_exact() {
        let mut s = ArchState::new(512);
        s.set_f_bits(FReg::F1, f32::NAN.to_bits());
        assert!(s.f32(FReg::F1).is_nan());
    }

    #[test]
    #[should_panic(expected = "exceeds grouped vlmax")]
    fn set_vl_validates() {
        let mut s = ArchState::new(512);
        s.set_vl(17);
    }

    #[test]
    fn grouped_vl_and_group_views() {
        let mut s = ArchState::new(512);
        s.set_vtype(VType { sew: Sew::E32, lmul: Lmul::M2 });
        assert_eq!(s.vlmax_grouped(), 32);
        s.set_vl(32); // legal under m2
        s.v_mut(VReg::V4)[15] = 0xA;
        s.v_mut(VReg::V5)[0] = 0xB;
        // The group view of v4v5 is contiguous: lane 16 is v5[0].
        let g = s.v_group(VReg::V4, 2);
        assert_eq!(g.len(), 32);
        assert_eq!(g[15], 0xA);
        assert_eq!(g[16], 0xB);
        s.v_group_mut(VReg::V4, 2)[31] = 0xC;
        assert_eq!(s.v(VReg::V5)[15], 0xC);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_past_v31_panics() {
        let s = ArchState::new(512);
        let _ = s.v_group(VReg::new(31), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn vlen_validated() {
        let _ = ArchState::new(100);
    }
}
