//! Architectural state of the simulated machine.

use indexmac_isa::instr::FReg;
use indexmac_isa::{Lmul, Sew, VReg, VType, XReg};

/// Scalar register files, the vector register file and the vector CSRs.
///
/// The vector register file is **byte-addressed**: each register is
/// `VLEN/8` raw little-endian bytes, exactly the hardware's bit-typed
/// storage. Instructions view the bytes through SEW-aware *lane*
/// accessors — the same 64 bytes are 64 `e8` lanes, 32 `e16` lanes or
/// 16 `e32` lanes — so reinterpretation across `vsetvli` changes comes
/// for free, like it does in silicon.
// `PartialEq` is bit-exact: FP registers are stored as raw bits (NaN
// payloads included), so the sharded executor can use equality as its
// checkpoint referee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    x: [u64; 32],
    f: [u32; 32],
    /// 32 vector registers × `vlen_bytes` bytes, register-major.
    vrf: Vec<u8>,
    vlen_bytes: usize,
    vl: usize,
    vtype: VType,
    /// Program counter in instruction slots.
    pub pc: usize,
    /// Set by `ebreak`.
    pub halted: bool,
}

impl ArchState {
    /// Creates a zeroed state for a machine with `vlen_bits` of VLEN.
    ///
    /// # Panics
    ///
    /// Panics if `vlen_bits` is not a positive multiple of 32.
    pub fn new(vlen_bits: usize) -> Self {
        assert!(
            vlen_bits >= 32 && vlen_bits.is_multiple_of(32),
            "VLEN must be a multiple of 32"
        );
        let vlen_bytes = vlen_bits / 8;
        Self {
            x: [0; 32],
            f: [0; 32],
            vrf: vec![0; 32 * vlen_bytes],
            vlen_bytes,
            vl: vlen_bits / 32,
            vtype: VType {
                sew: Sew::E32,
                lmul: Lmul::M1,
            },
            pc: 0,
            halted: false,
        }
    }

    /// Resets every register, CSR and the PC to the freshly-constructed
    /// state **in place** — the VRF's allocation is reused instead of
    /// reallocated, which is what lets the warm-execution path run one
    /// simulator across thousands of sweep cells without churning the
    /// allocator.
    pub fn reset(&mut self) {
        self.x = [0; 32];
        self.f = [0; 32];
        self.vrf.fill(0);
        self.vl = self.vlen_bits() / 32;
        self.vtype = VType {
            sew: Sew::E32,
            lmul: Lmul::M1,
        };
        self.pc = 0;
        self.halted = false;
    }

    /// Hardware vector length in bits.
    pub fn vlen_bits(&self) -> usize {
        self.vlen_bytes * 8
    }

    /// Lanes per single vector register at element width `sew`.
    pub fn lanes(&self, sew: Sew) -> usize {
        self.vlen_bytes / sew.bytes()
    }

    /// Maximum elements per single vector register under the **current**
    /// `vtype` SEW (16 at e32 for a 512-bit VLEN, 64 at e8).
    pub fn vlmax(&self) -> usize {
        self.lanes(self.vtype.sew)
    }

    /// Maximum elements per register *group* under the current `vtype`
    /// (`vlmax * LMUL`).
    pub fn vlmax_grouped(&self) -> usize {
        self.vlmax() * self.vtype.lmul.factor()
    }

    /// Current active vector length.
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Sets the active vector length.
    ///
    /// # Panics
    ///
    /// Panics if `vl` exceeds the grouped VLMAX of the current `vtype`
    /// (a `vsetvli` bug in the caller). Set `vtype` first when changing
    /// the grouping or element width.
    pub fn set_vl(&mut self, vl: usize) {
        assert!(
            vl <= self.vlmax_grouped(),
            "vl {vl} exceeds grouped vlmax {}",
            self.vlmax_grouped()
        );
        self.vl = vl;
    }

    /// Current vtype.
    pub fn vtype(&self) -> VType {
        self.vtype
    }

    /// Sets vtype.
    pub fn set_vtype(&mut self, vt: VType) {
        self.vtype = vt;
    }

    /// Reads a scalar register (`x0` always reads zero).
    pub fn x(&self, r: XReg) -> u64 {
        self.x[r.index() as usize]
    }

    /// Writes a scalar register (writes to `x0` are discarded).
    pub fn set_x(&mut self, r: XReg, v: u64) {
        if !r.is_zero() {
            self.x[r.index() as usize] = v;
        }
    }

    /// Reads an FP register as raw bits.
    pub fn f_bits(&self, r: FReg) -> u32 {
        self.f[r.index() as usize]
    }

    /// Reads an FP register as `f32`.
    pub fn f32(&self, r: FReg) -> f32 {
        f32::from_bits(self.f_bits(r))
    }

    /// Writes an FP register from raw bits.
    pub fn set_f_bits(&mut self, r: FReg, bits: u32) {
        self.f[r.index() as usize] = bits;
    }

    /// Borrow of a whole vector register's raw bytes.
    pub fn v_bytes(&self, r: VReg) -> &[u8] {
        self.v_group_bytes(r, 1)
    }

    /// Mutable borrow of a whole vector register's raw bytes.
    pub fn v_bytes_mut(&mut self, r: VReg) -> &mut [u8] {
        self.v_group_bytes_mut(r, 1)
    }

    /// Borrow of a register *group*'s bytes: `regs` consecutive
    /// registers starting at `r` (the VRF is register-major, so a group
    /// is one contiguous slice — exactly the hardware's LMUL view).
    ///
    /// # Panics
    ///
    /// Panics if the group runs past `v31`; grouped instructions check
    /// their operands before calling this.
    pub fn v_group_bytes(&self, r: VReg, regs: usize) -> &[u8] {
        let i = r.index() as usize;
        assert!(
            i + regs <= 32,
            "register group v{i}..v{} out of range",
            i + regs
        );
        &self.vrf[i * self.vlen_bytes..(i + regs) * self.vlen_bytes]
    }

    /// Mutable borrow of a register group's bytes (see
    /// [`ArchState::v_group_bytes`]).
    ///
    /// # Panics
    ///
    /// Panics if the group runs past `v31`.
    pub fn v_group_bytes_mut(&mut self, r: VReg, regs: usize) -> &mut [u8] {
        let i = r.index() as usize;
        assert!(
            i + regs <= 32,
            "register group v{i}..v{} out of range",
            i + regs
        );
        &mut self.vrf[i * self.vlen_bytes..(i + regs) * self.vlen_bytes]
    }

    /// Simultaneous (mutable destination, shared source) register-group
    /// byte views — the in-place form of [`ArchState::v_group_bytes`]
    /// for callers that have already proven the groups disjoint (the
    /// fused-MAC precheck does).
    ///
    /// # Panics
    ///
    /// Panics if either group runs past `v31` or the groups overlap.
    pub fn v_group_pair_mut(
        &mut self,
        d: VReg,
        d_regs: usize,
        s: VReg,
        s_regs: usize,
    ) -> (&mut [u8], &[u8]) {
        let vb = self.vlen_bytes;
        let (di, si) = (d.index() as usize, s.index() as usize);
        assert!(
            di + d_regs <= 32 && si + s_regs <= 32,
            "register group v{di}+{d_regs} / v{si}+{s_regs} out of range"
        );
        let (d0, d1) = (di * vb, (di + d_regs) * vb);
        let (s0, s1) = (si * vb, (si + s_regs) * vb);
        assert!(
            d1 <= s0 || s1 <= d0,
            "overlapping register groups v{di}+{d_regs} and v{si}+{s_regs}"
        );
        if d1 <= s0 {
            let (lo, hi) = self.vrf.split_at_mut(s0);
            (&mut lo[d0..d1], &hi[..s1 - s0])
        } else {
            let (lo, hi) = self.vrf.split_at_mut(d0);
            (&mut hi[..d1 - d0], &lo[s0..s1])
        }
    }

    /// Raw byte view of the whole vector register file (register-major,
    /// `vlen_bytes` per register). The fused-MAC executor reads
    /// multiplier/metadata lanes at precomputed offsets through it,
    /// having already bounded the lane to a single register (its
    /// `slot < VLMAX` guard) — everything else goes through the
    /// asserting lane/group accessors.
    pub(crate) fn vrf_bytes(&self) -> &[u8] {
        &self.vrf
    }

    /// Lane `i` of the group of `regs` registers starting at `r`, viewed
    /// at element width `sew` and zero-extended to `u32` raw bits.
    ///
    /// # Panics
    ///
    /// Panics if the lane lies outside the group or the group past `v31`.
    pub fn v_lane_group(&self, r: VReg, regs: usize, i: usize, sew: Sew) -> u32 {
        let bytes = self.v_group_bytes(r, regs);
        let eb = sew.bytes();
        let off = i * eb;
        assert!(
            off + eb <= bytes.len(),
            "lane {i} at {sew} outside v{}+{regs}",
            r.index()
        );
        match sew {
            Sew::E8 => bytes[off] as u32,
            Sew::E16 => u16::from_le_bytes([bytes[off], bytes[off + 1]]) as u32,
            Sew::E32 => u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")),
            Sew::E64 => panic!("e64 lanes are outside the modelled subset"),
        }
    }

    /// Writes lane `i` of a register group at element width `sew`,
    /// truncating `bits` to the element width.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ArchState::v_lane_group`].
    pub fn set_v_lane_group(&mut self, r: VReg, regs: usize, i: usize, sew: Sew, bits: u32) {
        let eb = sew.bytes();
        let off = i * eb;
        let bytes = self.v_group_bytes_mut(r, regs);
        assert!(
            off + eb <= bytes.len(),
            "lane {i} at {sew} outside v{}+{regs}",
            r.index()
        );
        match sew {
            Sew::E8 => bytes[off] = bits as u8,
            Sew::E16 => bytes[off..off + 2].copy_from_slice(&(bits as u16).to_le_bytes()),
            Sew::E32 => bytes[off..off + 4].copy_from_slice(&bits.to_le_bytes()),
            Sew::E64 => panic!("e64 lanes are outside the modelled subset"),
        }
    }

    /// Lane `i` of single register `r` at `sew`, zero-extended.
    pub fn v_lane(&self, r: VReg, i: usize, sew: Sew) -> u32 {
        self.v_lane_group(r, 1, i, sew)
    }

    /// Lane `i` of single register `r` at `sew`, **sign**-extended.
    pub fn v_lane_i(&self, r: VReg, i: usize, sew: Sew) -> i32 {
        sign_extend(self.v_lane(r, i, sew), sew)
    }

    /// Writes lane `i` of single register `r` at `sew` (truncating).
    pub fn set_v_lane(&mut self, r: VReg, i: usize, sew: Sew, bits: u32) {
        self.set_v_lane_group(r, 1, i, sew, bits);
    }

    /// Lane `i` of register `r` as `f32` (e32 lanes).
    pub fn v_f32(&self, r: VReg, i: usize) -> f32 {
        f32::from_bits(self.v_lane(r, i, Sew::E32))
    }

    /// The first `vl` e32 lanes of `r` as `f32` values (convenience for
    /// tests and result extraction).
    pub fn v_as_f32(&self, r: VReg) -> Vec<f32> {
        (0..self.vl).map(|i| self.v_f32(r, i)).collect()
    }

    /// Writes `f32` values into the first e32 lanes of `r` (test helper).
    ///
    /// # Panics
    ///
    /// Panics if more values than the register's e32 lanes are supplied.
    pub fn set_v_f32(&mut self, r: VReg, values: &[f32]) {
        assert!(values.len() <= self.lanes(Sew::E32), "too many lanes");
        for (i, v) in values.iter().enumerate() {
            self.set_v_lane(r, i, Sew::E32, v.to_bits());
        }
    }
}

/// Sign-extends `bits` from the `sew` element width to `i32`.
pub fn sign_extend(bits: u32, sew: Sew) -> i32 {
    match sew {
        Sew::E8 => bits as u8 as i8 as i32,
        Sew::E16 => bits as u16 as i16 as i32,
        Sew::E32 => bits as i32,
        Sew::E64 => panic!("e64 lanes are outside the modelled subset"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_in_place_equals_fresh_state() {
        let mut s = ArchState::new(512);
        s.set_x(XReg::T0, 99);
        s.set_f_bits(FReg::F1, 0xABCD);
        s.set_vtype(VType {
            sew: Sew::E8,
            lmul: Lmul::M2,
        });
        s.set_vl(128);
        s.set_v_lane(VReg::V7, 3, Sew::E8, 0x5A);
        s.pc = 17;
        s.halted = true;
        s.reset();
        let fresh = ArchState::new(512);
        assert_eq!(s.x(XReg::T0), 0);
        assert_eq!(s.f_bits(FReg::F1), 0);
        assert_eq!(s.vl(), fresh.vl());
        assert_eq!(s.vtype(), fresh.vtype());
        assert_eq!(s.v_bytes(VReg::V7), fresh.v_bytes(VReg::V7));
        assert_eq!(s.pc, 0);
        assert!(!s.halted);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut s = ArchState::new(512);
        s.set_x(XReg::ZERO, 123);
        assert_eq!(s.x(XReg::ZERO), 0);
        s.set_x(XReg::T0, 7);
        assert_eq!(s.x(XReg::T0), 7);
    }

    #[test]
    fn vrf_layout() {
        let mut s = ArchState::new(512);
        assert_eq!(s.vlmax(), 16);
        assert_eq!(s.v_bytes(VReg::V1).len(), 64);
        s.set_v_lane(VReg::V2, 3, Sew::E32, 0xAA);
        assert_eq!(s.v_lane(VReg::V2, 3, Sew::E32), 0xAA);
        assert_eq!(s.v_lane(VReg::V1, 3, Sew::E32), 0); // no aliasing
        assert_eq!(s.v_lane(VReg::V3, 3, Sew::E32), 0);
    }

    #[test]
    fn lane_roundtrips_at_every_sew() {
        let mut s = ArchState::new(256);
        for (sew, lanes) in [(Sew::E8, 32), (Sew::E16, 16), (Sew::E32, 8)] {
            assert_eq!(s.lanes(sew), lanes);
            for i in 0..lanes {
                let v = (i as u32).wrapping_mul(0x0101_0103) & (0xFFFF_FFFF >> (32 - sew.bits()));
                s.set_v_lane(VReg::V5, i, sew, v);
                assert_eq!(s.v_lane(VReg::V5, i, sew), v, "{sew} lane {i}");
            }
        }
    }

    #[test]
    fn lane_writes_truncate_to_element_width() {
        let mut s = ArchState::new(512);
        s.set_v_lane(VReg::V1, 0, Sew::E8, 0x1FF);
        assert_eq!(s.v_lane(VReg::V1, 0, Sew::E8), 0xFF);
        assert_eq!(
            s.v_lane(VReg::V1, 1, Sew::E8),
            0,
            "neighbour lane untouched"
        );
        s.set_v_lane(VReg::V1, 0, Sew::E16, 0xABCD_1234);
        assert_eq!(s.v_lane(VReg::V1, 0, Sew::E16), 0x1234);
    }

    #[test]
    fn sew_reinterpretation_is_little_endian() {
        // One e32 write is visible as 4 e8 lanes / 2 e16 lanes in
        // little-endian order — the hardware's bit-typed VRF aliasing.
        let mut s = ArchState::new(512);
        s.set_v_lane(VReg::V7, 1, Sew::E32, 0xDDCC_BBAA);
        assert_eq!(s.v_lane(VReg::V7, 4, Sew::E8), 0xAA);
        assert_eq!(s.v_lane(VReg::V7, 5, Sew::E8), 0xBB);
        assert_eq!(s.v_lane(VReg::V7, 6, Sew::E8), 0xCC);
        assert_eq!(s.v_lane(VReg::V7, 7, Sew::E8), 0xDD);
        assert_eq!(s.v_lane(VReg::V7, 2, Sew::E16), 0xBBAA);
        assert_eq!(s.v_lane(VReg::V7, 3, Sew::E16), 0xDDCC);
    }

    #[test]
    fn sign_extension_views() {
        let mut s = ArchState::new(512);
        s.set_v_lane(VReg::V3, 0, Sew::E8, 0x80);
        s.set_v_lane(VReg::V3, 1, Sew::E8, 0x7F);
        assert_eq!(s.v_lane_i(VReg::V3, 0, Sew::E8), -128);
        assert_eq!(s.v_lane_i(VReg::V3, 1, Sew::E8), 127);
        s.set_v_lane(VReg::V3, 4, Sew::E16, 0xFFFE);
        assert_eq!(s.v_lane_i(VReg::V3, 4, Sew::E16), -2);
        s.set_v_lane(VReg::V3, 3, Sew::E32, u32::MAX);
        assert_eq!(s.v_lane_i(VReg::V3, 3, Sew::E32), -1);
    }

    #[test]
    fn f32_lane_views() {
        let mut s = ArchState::new(256);
        assert_eq!(s.vlmax(), 8);
        s.set_v_f32(VReg::V4, &[1.5, -2.0]);
        assert_eq!(s.v_f32(VReg::V4, 0), 1.5);
        assert_eq!(s.v_f32(VReg::V4, 1), -2.0);
        s.set_vl(2);
        assert_eq!(s.v_as_f32(VReg::V4), vec![1.5, -2.0]);
    }

    #[test]
    fn fp_registers_are_bit_exact() {
        let mut s = ArchState::new(512);
        s.set_f_bits(FReg::F1, f32::NAN.to_bits());
        assert!(s.f32(FReg::F1).is_nan());
    }

    #[test]
    #[should_panic(expected = "exceeds grouped vlmax")]
    fn set_vl_validates() {
        let mut s = ArchState::new(512);
        s.set_vl(17);
    }

    #[test]
    fn vlmax_tracks_the_selected_sew() {
        let mut s = ArchState::new(512);
        assert_eq!(s.vlmax(), 16);
        s.set_vtype(VType {
            sew: Sew::E8,
            lmul: Lmul::M1,
        });
        assert_eq!(s.vlmax(), 64);
        assert_eq!(s.vlmax_grouped(), 64);
        s.set_vl(64); // legal at e8
        s.set_vtype(VType {
            sew: Sew::E16,
            lmul: Lmul::M2,
        });
        assert_eq!(s.vlmax(), 32);
        assert_eq!(s.vlmax_grouped(), 64);
    }

    #[test]
    fn grouped_vl_and_group_views() {
        let mut s = ArchState::new(512);
        s.set_vtype(VType {
            sew: Sew::E32,
            lmul: Lmul::M2,
        });
        assert_eq!(s.vlmax_grouped(), 32);
        s.set_vl(32); // legal under m2
        s.set_v_lane(VReg::V4, 15, Sew::E32, 0xA);
        s.set_v_lane(VReg::V5, 0, Sew::E32, 0xB);
        // The group view of v4v5 is contiguous: lane 16 is v5[0].
        assert_eq!(s.v_lane_group(VReg::V4, 2, 15, Sew::E32), 0xA);
        assert_eq!(s.v_lane_group(VReg::V4, 2, 16, Sew::E32), 0xB);
        s.set_v_lane_group(VReg::V4, 2, 31, Sew::E32, 0xC);
        assert_eq!(s.v_lane(VReg::V5, 15, Sew::E32), 0xC);
        // The same group holds 4x as many e8 lanes.
        assert_eq!(s.v_lane_group(VReg::V4, 2, 64, Sew::E8), 0xB);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_past_v31_panics() {
        let s = ArchState::new(512);
        let _ = s.v_group_bytes(VReg::new(31), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn lane_past_group_panics() {
        let s = ArchState::new(512);
        let _ = s.v_lane_group(VReg::V0, 1, 16, Sew::E32);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn vlen_validated() {
        let _ = ArchState::new(100);
    }
}
