//! The simulator front-end: functional execution + timing in one pass.

use crate::config::SimConfig;
use crate::engine::{DecodedProgram, NullObserver, Observer};
use crate::exec::{step, ExecError};
use crate::report::RunReport;
use crate::state::ArchState;
use crate::timing::{TimingModel, TimingObserver};
use crate::trace::TraceObserver;
use indexmac_isa::Program;
use indexmac_mem::MainMemory;
use std::error::Error;
use std::fmt;

/// Default cap on dynamic instructions (runaway-program guard).
pub const DEFAULT_MAX_INSTRUCTIONS: u64 = 2_000_000_000;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A functional-execution fault (alignment, SEW, control flow).
    Exec(ExecError),
    /// The program ran past the end without `ebreak`.
    FellOffEnd {
        /// The out-of-range fetch slot.
        pc: usize,
    },
    /// The dynamic instruction limit was reached.
    InstructionLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "execution fault: {e}"),
            SimError::FellOffEnd { pc } => {
                write!(f, "program fell off the end at slot {pc} (missing ebreak)")
            }
            SimError::InstructionLimit { limit } => {
                write!(f, "dynamic instruction limit of {limit} reached")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

/// The decoupled vector-processor simulator.
///
/// Owns the architectural state, the simulated main memory and the
/// timing model. A typical experiment:
///
/// 1. build a [`Program`] (usually via `indexmac-kernels`);
/// 2. place operand data in [`Simulator::memory_mut`];
/// 3. [`Simulator::run`];
/// 4. read results back from memory and measurements from [`RunReport`].
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
    state: ArchState,
    mem: MainMemory,
    max_instructions: u64,
}

impl Simulator {
    /// Creates a simulator with zeroed state and empty memory.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            cfg,
            state: ArchState::new(cfg.vlen_bits),
            mem: MainMemory::new(),
            max_instructions: DEFAULT_MAX_INSTRUCTIONS,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Architectural state (registers, vl, pc).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable architectural state (useful for test setup).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// Simulated main memory.
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable simulated main memory (for placing operands).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// Overrides the dynamic-instruction guard.
    pub fn set_max_instructions(&mut self, limit: u64) {
        self.max_instructions = limit;
    }

    /// The active dynamic-instruction guard.
    pub fn max_instructions(&self) -> u64 {
        self.max_instructions
    }

    /// Resets architectural state (memory and config retained).
    pub fn reset_state(&mut self) {
        self.state.reset();
    }

    /// Resets architectural state **and** memory in place, reusing both
    /// allocations — the warm-execution path runs one simulator across
    /// thousands of experiment cells with this between runs instead of
    /// constructing a fresh `Simulator` per cell. The configuration and
    /// instruction guard are retained.
    pub fn reset(&mut self) {
        self.state.reset();
        self.mem.clear();
    }

    /// Runs `program` from slot 0 until `ebreak`, with timing.
    ///
    /// Decodes once and executes through the decode-once engine; for
    /// repeated runs of one program, predecode with
    /// [`DecodedProgram::decode`] and use [`Simulator::run_decoded`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on execution faults, a missing `ebreak`, or
    /// the instruction limit.
    pub fn run(&mut self, program: &Program) -> Result<RunReport, SimError> {
        self.run_decoded(&DecodedProgram::decode(program))
    }

    /// [`Simulator::run`] over an already-decoded program.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_decoded(&mut self, program: &DecodedProgram) -> Result<RunReport, SimError> {
        let mut obs = TimingObserver::new(self.cfg);
        let instructions = self.run_decoded_with(program, &mut obs)?;
        Ok(make_report(obs.model(), instructions))
    }

    /// Runs `program` with timing, recording the first `trace_cap`
    /// dynamic instructions as a pipeline trace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_traced(
        &mut self,
        program: &Program,
        trace_cap: usize,
    ) -> Result<(RunReport, crate::trace::Trace), SimError> {
        let mut obs = TraceObserver::new(self.cfg, trace_cap);
        let instructions = self.run_decoded_with(&DecodedProgram::decode(program), &mut obs)?;
        let (timing, trace) = obs.into_parts();
        Ok((make_report(&timing, instructions), trace))
    }

    /// Runs `program` functionally only (no timing) — used where only
    /// the architectural result matters (fast verification). The
    /// [`NullObserver`] monomorphization never materialises events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_functional(&mut self, program: &Program) -> Result<u64, SimError> {
        self.run_functional_decoded(&DecodedProgram::decode(program))
    }

    /// [`Simulator::run_functional`] over an already-decoded program.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_functional_decoded(&mut self, program: &DecodedProgram) -> Result<u64, SimError> {
        self.run_decoded_with(program, &mut NullObserver)
    }

    /// Core decoded-engine entry point: runs `program` under any
    /// [`Observer`], returning the dynamic instruction count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_decoded_with<O: Observer>(
        &mut self,
        program: &DecodedProgram,
        observer: &mut O,
    ) -> Result<u64, SimError> {
        program.execute(
            &mut self.state,
            &mut self.mem,
            observer,
            self.max_instructions,
        )
    }

    /// [`Simulator::run_decoded`] through the **check-elided** engine
    /// loop: a [`crate::analyze::Verified`] token (minted by the static
    /// analyzer for programs with zero error-class diagnostics) replaces
    /// the per-µop fault branches with debug assertions.
    ///
    /// # Errors
    ///
    /// [`SimError::InstructionLimit`] only — the token certifies the
    /// fault conditions cannot occur (still checked in debug builds).
    pub fn run_decoded_verified(
        &mut self,
        program: &DecodedProgram,
        token: crate::analyze::Verified,
    ) -> Result<RunReport, SimError> {
        let mut obs = TimingObserver::new(self.cfg);
        let instructions = self.run_decoded_verified_with(program, &mut obs, token)?;
        Ok(make_report(obs.model(), instructions))
    }

    /// [`Simulator::run_functional_decoded`] through the check-elided
    /// verified loop.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_decoded_verified`].
    pub fn run_functional_verified(
        &mut self,
        program: &DecodedProgram,
        token: crate::analyze::Verified,
    ) -> Result<u64, SimError> {
        self.run_decoded_verified_with(program, &mut NullObserver, token)
    }

    /// [`Simulator::run_functional_verified`] with the trace compiler
    /// disabled: the check-elided per-µop loop only. This is the PR 6
    /// measurement baseline that `engine_throughput` reports fused-path
    /// speedups against; functional results are bit-identical to the
    /// traced path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_decoded_verified`].
    pub fn run_functional_verified_untraced(
        &mut self,
        program: &DecodedProgram,
        token: crate::analyze::Verified,
    ) -> Result<u64, SimError> {
        program.execute_verified_untraced(
            &mut self.state,
            &mut self.mem,
            &mut NullObserver,
            self.max_instructions,
            token,
        )
    }

    /// Splits the simulator into its architectural state and memory —
    /// the sharded executor drives [`DecodedProgram`] range runs over
    /// both halves while borrowing them simultaneously.
    pub(crate) fn split_mut(&mut self) -> (&mut ArchState, &mut MainMemory) {
        (&mut self.state, &mut self.mem)
    }

    /// Core verified entry point: runs `program` check-elided under any
    /// [`Observer`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_decoded_verified`].
    pub fn run_decoded_verified_with<O: Observer>(
        &mut self,
        program: &DecodedProgram,
        observer: &mut O,
        token: crate::analyze::Verified,
    ) -> Result<u64, SimError> {
        program.execute_verified(
            &mut self.state,
            &mut self.mem,
            observer,
            self.max_instructions,
            token,
        )
    }

    /// The legacy interpret-per-step loop over [`step`] — kept verbatim
    /// as the **oracle** the decoded engine is differentially tested
    /// against (`crates/vpu/tests/prop_engine.rs`), and as the
    /// reference for throughput measurements (`engine_throughput`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_stepwise<O: Observer>(
        &mut self,
        program: &Program,
        observer: &mut O,
    ) -> Result<u64, SimError> {
        self.state.pc = 0;
        self.state.halted = false;
        let mut instret: u64 = 0;
        while !self.state.halted {
            let pc = self.state.pc;
            let instr = *program.fetch(pc).ok_or(SimError::FellOffEnd { pc })?;
            let ev = step(&mut self.state, &mut self.mem, &instr)?;
            observer.observe(&ev);
            instret += 1;
            // A program whose `ebreak` is exactly the limit-th dynamic
            // instruction has halted — only a still-running program
            // trips the guard.
            if instret >= self.max_instructions && !self.state.halted {
                return Err(SimError::InstructionLimit {
                    limit: self.max_instructions,
                });
            }
        }
        Ok(instret)
    }

    /// [`Simulator::run_stepwise`] with full timing, producing the same
    /// [`RunReport`] shape as [`Simulator::run`] (bit-identical by the
    /// differential suite).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_stepwise_timed(&mut self, program: &Program) -> Result<RunReport, SimError> {
        let mut obs = TimingObserver::new(self.cfg);
        let instructions = self.run_stepwise(program, &mut obs)?;
        Ok(make_report(obs.model(), instructions))
    }
}

/// Collects a [`RunReport`] from a drained timing model (any backend).
fn make_report(timing: &impl TimingModel, instructions: u64) -> RunReport {
    let hier = timing.hierarchy();
    RunReport {
        cycles: timing.total_cycles(),
        instructions,
        counts: timing.counts(),
        mem: timing.mem_stats(),
        l1d_hit_rate: hier.l1d().stats().hit_rate(),
        l2_hit_rate: hier.l2().stats().hit_rate(),
        engine_busy_cycles: timing.engine_busy_cycles(),
        vq_stall_cycles: timing.vq_stall_cycles(),
        rob_stall_cycles: timing.rob_stall_cycles(),
        v2s_syncs: timing.v2s_syncs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_isa::{Instruction, Lmul, ProgramBuilder, Sew, VReg, XReg};

    fn sim() -> Simulator {
        Simulator::new(SimConfig::table_i())
    }

    #[test]
    fn run_trivial_program() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 5).addi(XReg::T0, XReg::T0, 2).halt();
        let mut s = sim();
        let r = s.run(&b.build()).unwrap();
        assert_eq!(s.state().x(XReg::T0), 7);
        assert_eq!(r.instructions, 3);
        assert!(r.cycles >= 1);
    }

    #[test]
    fn missing_halt_detected() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 5);
        let mut s = sim();
        assert!(matches!(
            s.run(&b.build()),
            Err(SimError::FellOffEnd { pc: 1 })
        ));
    }

    #[test]
    fn instruction_limit_detected() {
        // Infinite loop: beq zero, zero, self.
        let mut b = ProgramBuilder::new();
        let top = b.bind_label();
        b.beq(XReg::ZERO, XReg::ZERO, top);
        b.halt();
        let mut s = sim();
        s.set_max_instructions(1000);
        assert!(matches!(
            s.run(&b.build()),
            Err(SimError::InstructionLimit { limit: 1000 })
        ));
    }

    #[test]
    fn ebreak_exactly_at_the_limit_succeeds() {
        // Regression for the off-by-one: a program whose `ebreak` is
        // exactly the max_instructions-th dynamic instruction must
        // complete, in both the decoded engine and the stepwise oracle.
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 5);
        b.halt(); // dynamic instruction #2
        let p = b.build();
        for limit in [2u64, 3] {
            let mut s = sim();
            s.set_max_instructions(limit);
            assert_eq!(
                s.run(&p).expect("halt on/before the limit").instructions,
                2,
                "engine at limit {limit}"
            );
            let mut s = sim();
            s.set_max_instructions(limit);
            assert_eq!(
                s.run_stepwise(&p, &mut crate::engine::NullObserver)
                    .unwrap(),
                2,
                "oracle at limit {limit}"
            );
        }
        // One below the boundary still trips the guard.
        let mut s = sim();
        s.set_max_instructions(1);
        assert!(matches!(
            s.run(&p),
            Err(SimError::InstructionLimit { limit: 1 })
        ));
        let mut s = sim();
        s.set_max_instructions(1);
        assert!(matches!(
            s.run_stepwise(&p, &mut crate::engine::NullObserver),
            Err(SimError::InstructionLimit { limit: 1 })
        ));
    }

    #[test]
    fn decoded_engine_matches_stepwise_report_bit_for_bit() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, 16);
        b.push(Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew: Sew::E32,
            lmul: Lmul::M1,
        });
        b.li(XReg::A1, 0x1000);
        b.push(Instruction::Vle32 {
            vd: VReg::V2,
            rs1: XReg::A1,
        });
        b.li(XReg::T1, 2);
        b.push(Instruction::VindexmacVx {
            vd: VReg::V4,
            vs2: VReg::V2,
            rs: XReg::T1,
        });
        b.push(Instruction::Vse32 {
            vs3: VReg::V4,
            rs1: XReg::A1,
        });
        b.halt();
        let p = b.build();

        let mut engine = sim();
        engine.memory_mut().write_f32_slice(0x1000, &[1.25; 16]);
        let fast = engine.run(&p).unwrap();
        let mut oracle = sim();
        oracle.memory_mut().write_f32_slice(0x1000, &[1.25; 16]);
        let slow = oracle.run_stepwise_timed(&p).unwrap();
        assert_eq!(fast, slow, "reports must be bit-identical");
        assert_eq!(
            engine.state().x(XReg::T0),
            oracle.state().x(XReg::T0),
            "architectural state must agree"
        );
    }

    #[test]
    fn reset_clears_state_and_memory_in_place() {
        let mut s = sim();
        s.set_max_instructions(1234);
        s.memory_mut().write_u32(0x10, 77);
        s.state_mut().set_x(XReg::T0, 5);
        s.reset();
        assert_eq!(s.state().x(XReg::T0), 0);
        assert_eq!(s.memory().read_u32(0x10), 0, "reset() clears memory too");
        assert_eq!(s.max_instructions(), 1234, "guard survives reset");
        // A reset simulator behaves exactly like a fresh one.
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 7).halt();
        let p = b.build();
        let warm = s.run(&p).unwrap();
        let cold = sim().run(&p).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn real_loop_executes() {
        // t0 = 10; do { t0 -= 1 } while t0 != 0; t1 = 99.
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 10);
        let top = b.bind_label();
        b.addi(XReg::T0, XReg::T0, -1);
        b.bne(XReg::T0, XReg::ZERO, top);
        b.li(XReg::T1, 99);
        b.halt();
        let mut s = sim();
        let r = s.run(&b.build()).unwrap();
        assert_eq!(s.state().x(XReg::T0), 0);
        assert_eq!(s.state().x(XReg::T1), 99);
        // 1 + 10*2 + 1 + 1 dynamic instructions.
        assert_eq!(r.instructions, 23);
        // Taken branches pay redirect: at least ~2 cycles per iteration.
        assert!(r.cycles >= 20);
    }

    #[test]
    fn vector_roundtrip_with_timing() {
        let mut s = sim();
        let data: Vec<f32> = (0..16).map(|i| i as f32 + 0.5).collect();
        s.memory_mut().write_f32_slice(0x1000, &data);
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, 16);
        b.push(Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew: Sew::E32,
            lmul: Lmul::M1,
        });
        b.li(XReg::A1, 0x1000);
        b.li(XReg::A2, 0x2000);
        b.push(Instruction::Vle32 {
            vd: VReg::V1,
            rs1: XReg::A1,
        });
        b.push(Instruction::Vse32 {
            vs3: VReg::V1,
            rs1: XReg::A2,
        });
        b.halt();
        let r = s.run(&b.build()).unwrap();
        assert_eq!(s.memory().read_f32_slice(0x2000, 16), data);
        assert_eq!(r.mem.vector_loads, 1);
        assert_eq!(r.mem.vector_stores, 1);
        assert!(r.cycles > 8, "must include L2/DRAM time, got {}", r.cycles);
    }

    #[test]
    fn functional_mode_matches_timed_architecturally() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 3);
        let top = b.bind_label();
        b.addi(XReg::T1, XReg::T1, 7);
        b.addi(XReg::T0, XReg::T0, -1);
        b.bne(XReg::T0, XReg::ZERO, top);
        b.halt();
        let p = b.build();

        let mut a = sim();
        a.run(&p).unwrap();
        let mut f = sim();
        f.run_functional(&p).unwrap();
        assert_eq!(a.state().x(XReg::T1), f.state().x(XReg::T1));
        assert_eq!(a.state().x(XReg::T1), 21);
    }

    #[test]
    fn run_traced_records_pipeline_timings() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, 0x1000);
        b.push(Instruction::Vle32 {
            vd: VReg::V1,
            rs1: XReg::A0,
        });
        b.push(Instruction::VmvXs {
            rd: XReg::T0,
            vs2: VReg::V1,
        });
        b.addi(XReg::T1, XReg::T0, 1);
        b.halt();
        let mut s = sim();
        let (report, trace) = s.run_traced(&b.build(), 16).unwrap();
        assert_eq!(trace.observed(), report.instructions);
        assert!(!trace.truncated());
        let entries = trace.entries();
        // Program order and monotone issue cycles.
        for w in entries.windows(2) {
            assert!(w[0].timing.issue_at <= w[1].timing.issue_at);
        }
        // The vector load's completion includes memory latency.
        let vload = &entries[1];
        assert!(
            vload.latency() > 8,
            "cold vector load latency {}",
            vload.latency()
        );
        // The dependent addi waits for the cross-domain move.
        let addi = &entries[3];
        let vmv = &entries[2];
        assert!(addi.timing.issue_at >= vmv.timing.completion);
        // Capacity truncation path.
        let mut s2 = sim();
        let (_, small) = s2
            .run_traced(
                &{
                    let mut b = ProgramBuilder::new();
                    b.li(XReg::T0, 1).li(XReg::T1, 2).halt();
                    b.build()
                },
                1,
            )
            .unwrap();
        assert!(small.truncated());
        assert_eq!(small.entries().len(), 1);
    }

    #[test]
    fn verified_path_matches_checked_path_bit_for_bit() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, 16);
        b.push(Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew: Sew::E32,
            lmul: Lmul::M1,
        });
        b.li(XReg::A1, 0x1000);
        b.li(XReg::A2, 0x2000);
        b.push(Instruction::Vle32 {
            vd: VReg::V2,
            rs1: XReg::A1,
        });
        b.push(Instruction::VaddVv {
            vd: VReg::V3,
            vs2: VReg::V2,
            vs1: VReg::V2,
        });
        b.push(Instruction::Vse32 {
            vs3: VReg::V3,
            rs1: XReg::A2,
        });
        b.halt();
        let p = b.build();
        let dp = DecodedProgram::decode(&p);
        let token = crate::analyze::analyze(&dp, SimConfig::table_i().vlen_bits)
            .verified()
            .expect("program analyzes clean");

        let mut checked = sim();
        checked.memory_mut().write_f32_slice(0x1000, &[1.5; 16]);
        let a = checked.run_decoded(&dp).unwrap();
        let mut verified = sim();
        verified.memory_mut().write_f32_slice(0x1000, &[1.5; 16]);
        let b = verified.run_decoded_verified(&dp, token).unwrap();
        assert_eq!(a, b, "verified run must be bit-identical");
        assert_eq!(
            checked.memory().read_f32_slice(0x2000, 16),
            verified.memory().read_f32_slice(0x2000, 16)
        );
        // Functional verified agrees too.
        let mut f = sim();
        f.memory_mut().write_f32_slice(0x1000, &[1.5; 16]);
        assert_eq!(
            f.run_functional_verified(&dp, token).unwrap(),
            a.instructions
        );
    }

    #[test]
    fn timing_backends_agree_on_instret_and_state() {
        // One program, three timing backends: architectural results and
        // instruction counts are bit-identical; only cycles may differ.
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, 16);
        b.push(Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew: Sew::E32,
            lmul: Lmul::M1,
        });
        b.li(XReg::A1, 0x1000);
        b.push(Instruction::Vle32 {
            vd: VReg::V2,
            rs1: XReg::A1,
        });
        b.push(Instruction::VmvXs {
            rd: XReg::T1,
            vs2: VReg::V2,
        });
        b.addi(XReg::T2, XReg::T1, 1);
        b.push(Instruction::Vse32 {
            vs3: VReg::V2,
            rs1: XReg::A1,
        });
        b.halt();
        let p = b.build();

        let mut reports = Vec::new();
        for kind in crate::config::TimingKind::ALL {
            let mut s = Simulator::new(SimConfig::table_i().with_timing(kind));
            s.memory_mut().write_f32_slice(0x1000, &[2.5; 16]);
            let r = s.run(&p).unwrap();
            assert!(r.cycles > 0, "{kind}: cycles accounted");
            reports.push((kind, r, s.state().x(XReg::T2)));
        }
        let (_, base, arch) = &reports[0];
        for (kind, r, x) in &reports {
            assert_eq!(r.instructions, base.instructions, "{kind}: instret");
            assert_eq!(r.counts, base.counts, "{kind}: class counts");
            assert_eq!(r.mem, base.mem, "{kind}: memory traffic");
            assert_eq!(x, arch, "{kind}: architectural state");
        }
        // The in-order backend is the default: selecting it explicitly
        // must not change the report.
        let mut s = Simulator::new(SimConfig::table_i());
        s.memory_mut().write_f32_slice(0x1000, &[2.5; 16]);
        assert_eq!(s.run(&p).unwrap(), reports[0].1);
    }

    #[test]
    fn reset_state_clears_registers_not_memory() {
        let mut s = sim();
        s.memory_mut().write_u32(0x10, 77);
        s.state_mut().set_x(XReg::T0, 5);
        s.reset_state();
        assert_eq!(s.state().x(XReg::T0), 0);
        assert_eq!(s.memory().read_u32(0x10), 77);
    }

    #[test]
    fn vindexmac_full_pipeline() {
        // Pre-load a "B row" into v20 from memory, then accumulate it
        // into v1 via the custom instruction, then store.
        let mut s = sim();
        s.memory_mut().write_f32_slice(0x1000, &[2.0; 16]); // B row
        s.memory_mut().write_f32_slice(0x2000, &[3.0; 16]); // values (3.0 at [0])
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, 0x1000);
        b.li(XReg::A1, 0x2000);
        b.li(XReg::A2, 0x3000);
        b.push(Instruction::Vle32 {
            vd: VReg::new(20),
            rs1: XReg::A0,
        });
        b.push(Instruction::Vle32 {
            vd: VReg::V2,
            rs1: XReg::A1,
        });
        b.li(XReg::T1, 20); // index of the tile register
        b.push(Instruction::VindexmacVx {
            vd: VReg::V1,
            vs2: VReg::V2,
            rs: XReg::T1,
        });
        b.push(Instruction::Vse32 {
            vs3: VReg::V1,
            rs1: XReg::A2,
        });
        b.halt();
        let r = s.run(&b.build()).unwrap();
        assert_eq!(s.memory().read_f32_slice(0x3000, 16), vec![6.0; 16]);
        assert_eq!(r.counts.get(indexmac_isa::InstrClass::VIndexMac), 1);
        assert_eq!(r.mem.vector_loads, 2, "vindexmac itself must not load");
    }
}
