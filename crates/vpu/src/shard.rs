//! Sharded execution: one long run split at instruction-boundary
//! checkpoints and replayed in parallel on the rayon pool.
//!
//! A functional run of a decoded program is deterministic, so any
//! prefix of it can be reproduced from a **checkpoint**: the
//! architectural state at an instruction boundary plus the memory image
//! at that boundary. The sharded executor exploits this in two phases:
//!
//! 1. **Sequential checkpointing pass** — the program runs on the
//!    fastest available functional path (trace-compiled + check-elided
//!    under a [`Verified`] token, checked otherwise) with *touched-page
//!    tracking* enabled. Every `shard_size` retired instructions it
//!    snapshots the [`ArchState`](crate::ArchState) and captures a
//!    [`PageDelta`] of the pages the shard wrote, so the memory image
//!    at any boundary can be rebuilt as `base + deltas[..k]`.
//! 2. **Parallel counting replay** — each shard is re-executed on the
//!    rayon pool from its checkpoint under a [`CountingObserver`],
//!    which attributes per-class instruction counts and memory traffic.
//!    Each worker referee-asserts that its end state is bit-identical
//!    to the next sequential checkpoint, so a divergence between the
//!    fast phase-1 path and the event-observed replay path is caught
//!    immediately rather than laundered into the merged report.
//!
//! The shard observers merge **in shard order**, so the resulting
//! [`RunReport`] is deterministic and independent of worker scheduling
//! and pool width — `prop_shard.rs` checks it against the unsharded
//! [`Simulator::run_counted`] referee and the stepwise oracle for every
//! shard size.
//!
//! Counting replay carries no timing state (cycles, cache hit rates and
//! stall accounting need the sequential event stream), so the merged
//! report zeroes those fields; architectural results, instruction
//! counts, class counts and memory traffic are bit-identical to an
//! unsharded run.

use crate::analyze::Verified;
use crate::engine::{DecodedProgram, NullObserver, RangeExit};
use crate::report::RunReport;
use crate::sim::{SimError, Simulator};
use crate::timing::CountingObserver;
use indexmac_mem::PageDelta;
use rayon::prelude::*;

/// The outcome of [`Simulator::run_sharded`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRun {
    /// Merged functional report (cycles and cache/stall fields zeroed —
    /// see the module docs).
    pub report: RunReport,
    /// How many shards the run was split into.
    pub shards: usize,
}

impl Simulator {
    /// Unsharded referee for the sharded path: runs `program` through
    /// the checked engine under a [`CountingObserver`], producing a
    /// [`RunReport`] with exactly the fields [`Simulator::run_sharded`]
    /// fills in. `run_sharded(p, ..).report` must equal
    /// `run_counted(p)` bit-for-bit on identical initial state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_counted(&mut self, program: &DecodedProgram) -> Result<RunReport, SimError> {
        let mut obs = CountingObserver::default();
        let instructions = self.run_decoded_with(program, &mut obs)?;
        Ok(obs.into_report(instructions))
    }

    /// Runs `program` split into shards of at most `shard_size` dynamic
    /// instructions (clamped to at least 1), replaying the shards in
    /// parallel. See the [module docs](crate::shard) for the two-phase
    /// scheme. With `token` present phase 1 uses the check-elided,
    /// trace-compiled fast path; without it, the checked loop.
    ///
    /// The simulator ends in the same architectural and memory state as
    /// the equivalent unsharded run.
    ///
    /// # Errors
    ///
    /// The same conditions — and the same values — as the unsharded
    /// entry points: faults surface from the sequential phase at the
    /// same instruction they would unsharded, and
    /// [`SimError::InstructionLimit`] fires at the same
    /// `max_instructions` boundary.
    ///
    /// # Panics
    ///
    /// If a parallel replay diverges from its sequential checkpoint —
    /// that would mean the trace-compiled fast path and the per-µop
    /// loop disagree, which the referee turns into a hard failure.
    pub fn run_sharded(
        &mut self,
        program: &DecodedProgram,
        token: Option<Verified>,
        shard_size: u64,
    ) -> Result<ShardedRun, SimError> {
        let shard_size = shard_size.max(1);
        let total = self.max_instructions();
        let base_mem = self.memory().clone();
        let (state, mem) = self.split_mut();
        state.pc = 0;
        state.halted = false;

        // Phase 1: sequential fast-path run, checkpointing at shard
        // boundaries. Touch tracking stays on across the whole pass;
        // `take_touched_pages` drains per shard.
        mem.start_touch_tracking();
        let mut checkpoints = vec![state.clone()];
        let mut deltas: Vec<PageDelta> = Vec::new();
        let mut lens: Vec<u64> = Vec::new();
        let mut retired: u64 = 0;
        let exit_err = loop {
            let budget = shard_size.min(total.saturating_sub(retired));
            let res = match token {
                Some(tok) => program.run_range_verified(state, mem, &mut NullObserver, budget, tok),
                None => program.run_range_checked(state, mem, &mut NullObserver, budget),
            };
            let (n, exit) = match res {
                Ok(v) => v,
                Err(e) => break Some(e),
            };
            let pages = mem.take_touched_pages();
            deltas.push(mem.capture_pages(&pages));
            lens.push(n);
            retired += n;
            checkpoints.push(state.clone());
            match exit {
                RangeExit::Halted => break None,
                RangeExit::Budget if retired >= total => {
                    break Some(SimError::InstructionLimit { limit: total });
                }
                RangeExit::Budget => {}
            }
        };
        mem.stop_touch_tracking();
        if let Some(e) = exit_err {
            return Err(e);
        }

        // Phase 2: parallel counting replay. Shard `k` starts from
        // checkpoint `k` over `base + deltas[..k]` and must land
        // bit-exactly on checkpoint `k + 1` after exactly `lens[k]`
        // instructions.
        let shards = lens.len();
        let observers: Vec<CountingObserver> = (0..shards)
            .into_par_iter()
            .map(|k| {
                let mut mem_k = base_mem.clone();
                for delta in &deltas[..k] {
                    mem_k.apply_delta(delta);
                }
                let mut state_k = checkpoints[k].clone();
                let mut obs = CountingObserver::default();
                // `CountingObserver` wants events, so the trace
                // compiler is inert here: replay is the per-µop loop
                // refereeing the fused phase-1 path.
                let res = match token {
                    Some(tok) => {
                        program.run_range_verified(&mut state_k, &mut mem_k, &mut obs, lens[k], tok)
                    }
                    None => program.run_range_checked(&mut state_k, &mut mem_k, &mut obs, lens[k]),
                };
                let (n, exit) = res.unwrap_or_else(|e| panic!("shard {k} replay faulted: {e}"));
                assert_eq!(n, lens[k], "shard {k} replayed a different length");
                let want_exit = if k + 1 == shards {
                    RangeExit::Halted
                } else {
                    RangeExit::Budget
                };
                assert_eq!(exit, want_exit, "shard {k} exited differently on replay");
                assert_eq!(
                    state_k,
                    checkpoints[k + 1],
                    "shard {k} replay diverged from the sequential checkpoint"
                );
                obs
            })
            .collect();

        let mut merged = CountingObserver::default();
        for obs in &observers {
            merged.merge(obs);
        }
        Ok(ShardedRun {
            report: merged.into_report(retired),
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::config::SimConfig;
    use indexmac_isa::{Instruction, Lmul, ProgramBuilder, Sew, VReg, XReg};

    fn sim() -> Simulator {
        Simulator::new(SimConfig::table_i())
    }

    /// A scalar loop that stores a running value each iteration —
    /// exercises memory deltas across shard boundaries.
    fn store_loop(iters: i64) -> DecodedProgram {
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, iters);
        b.li(XReg::A0, 0x1000);
        let top = b.bind_label();
        b.push(Instruction::Sw {
            rs2: XReg::T0,
            rs1: XReg::A0,
            imm: 0,
        });
        b.addi(XReg::A0, XReg::A0, 4);
        b.addi(XReg::T1, XReg::T1, 3);
        b.addi(XReg::T0, XReg::T0, -1);
        b.bne(XReg::T0, XReg::ZERO, top);
        b.halt();
        DecodedProgram::decode(&b.build())
    }

    #[test]
    fn sharded_matches_run_counted_across_shard_sizes() {
        let dp = store_loop(50);
        let mut referee = sim();
        let want = referee.run_counted(&dp).unwrap();
        for shard_size in [1u64, 2, 3, 7, 50, 1000] {
            let mut s = sim();
            let got = s.run_sharded(&dp, None, shard_size).unwrap();
            assert_eq!(got.report, want, "shard_size {shard_size}");
            assert_eq!(s.state(), referee.state(), "shard_size {shard_size}");
            assert_eq!(
                {
                    let mut buf = [0u8; 200];
                    s.memory().read_slice(0x1000, &mut buf);
                    buf
                },
                {
                    let mut buf = [0u8; 200];
                    referee.memory().read_slice(0x1000, &mut buf);
                    buf
                },
                "shard_size {shard_size}"
            );
        }
    }

    #[test]
    fn shard_count_reflects_shard_size() {
        let dp = store_loop(10);
        // 2 + 10*5 + 1 = 53 dynamic instructions.
        let mut s = sim();
        let r = s.run_sharded(&dp, None, 10).unwrap();
        assert_eq!(r.report.instructions, 53);
        assert_eq!(r.shards, 6, "ceil(53 / 10)");
        let mut s = sim();
        assert_eq!(s.run_sharded(&dp, None, 1000).unwrap().shards, 1);
    }

    #[test]
    fn sharded_verified_vector_kernel_matches_unsharded() {
        // A vector loop the analyzer accepts, including the fused
        // IndexMAC steady-state shape, run sharded under the token.
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, 16);
        b.push(Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew: Sew::E32,
            lmul: Lmul::M1,
        });
        b.li(XReg::A1, 0x1000);
        b.push(Instruction::Vle32 {
            vd: VReg::V2,
            rs1: XReg::A1,
        });
        b.push(Instruction::Vle32 {
            vd: VReg::new(20),
            rs1: XReg::A1,
        });
        b.li(XReg::T1, 20);
        b.li(XReg::T2, 6);
        let top = b.bind_label();
        b.push(Instruction::VindexmacVx {
            vd: VReg::V4,
            vs2: VReg::V2,
            rs: XReg::T1,
        });
        b.addi(XReg::T2, XReg::T2, -1);
        b.bne(XReg::T2, XReg::ZERO, top);
        b.li(XReg::A2, 0x2000);
        b.push(Instruction::Vse32 {
            vs3: VReg::V4,
            rs1: XReg::A2,
        });
        b.halt();
        let dp = DecodedProgram::decode(&b.build());
        let token = analyze(&dp, SimConfig::table_i().vlen_bits)
            .verified()
            .expect("kernel analyzes clean");

        let data: Vec<f32> = (0..16).map(|i| 0.5 + i as f32).collect();
        let mut referee = sim();
        referee.memory_mut().write_f32_slice(0x1000, &data);
        let want = referee.run_counted(&dp).unwrap();
        for shard_size in [1u64, 4, 9, 64] {
            let mut s = sim();
            s.memory_mut().write_f32_slice(0x1000, &data);
            let got = s.run_sharded(&dp, Some(token), shard_size).unwrap();
            assert_eq!(got.report, want, "shard_size {shard_size}");
            assert_eq!(
                s.memory().read_f32_slice(0x2000, 16),
                referee.memory().read_f32_slice(0x2000, 16),
                "shard_size {shard_size}"
            );
        }
    }

    #[test]
    fn sharded_instruction_limit_matches_unsharded() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_label();
        b.beq(XReg::ZERO, XReg::ZERO, top);
        b.halt();
        let dp = DecodedProgram::decode(&b.build());
        for (limit, shard_size) in [(100u64, 7u64), (100, 100), (100, 1000)] {
            let mut s = sim();
            s.set_max_instructions(limit);
            assert_eq!(
                s.run_sharded(&dp, None, shard_size),
                Err(SimError::InstructionLimit { limit }),
                "limit {limit} shard_size {shard_size}"
            );
        }
    }

    #[test]
    fn sharded_halt_exactly_on_shard_and_limit_boundary() {
        // `ebreak` exactly on a shard boundary and exactly at the
        // instruction limit must still succeed, like the legacy loop.
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 1);
        b.halt(); // dynamic instruction #2
        let dp = DecodedProgram::decode(&b.build());
        let mut s = sim();
        s.set_max_instructions(2);
        let r = s.run_sharded(&dp, None, 1).unwrap();
        assert_eq!(r.report.instructions, 2);
        assert_eq!(r.shards, 2);
    }

    #[test]
    fn sharded_fault_surfaces_like_unsharded() {
        // Misaligned vector load faults; the sharded run must surface
        // the identical error.
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, 16);
        b.push(Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew: Sew::E32,
            lmul: Lmul::M1,
        });
        b.li(XReg::A1, 0x1001);
        b.push(Instruction::Vle32 {
            vd: VReg::V2,
            rs1: XReg::A1,
        });
        b.halt();
        let dp = DecodedProgram::decode(&b.build());
        let mut unsharded = sim();
        let want = unsharded.run_counted(&dp).unwrap_err();
        for shard_size in [1u64, 2, 100] {
            let mut s = sim();
            assert_eq!(
                s.run_sharded(&dp, None, shard_size).unwrap_err(),
                want,
                "shard_size {shard_size}"
            );
        }
    }
}
