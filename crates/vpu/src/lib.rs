//! Decoupled RISC-V vector-processor simulator — the evaluation
//! substrate of the IndexMAC reproduction (the paper used gem5 model
//! `1bDV`; this crate is the Rust stand-in).
//!
//! The simulated organisation follows the paper's Table I:
//!
//! * an 8-way out-of-order scalar core (60-entry ROB) with an L1D cache;
//! * a decoupled vector engine (512-bit, 16 lanes of 32-bit elements)
//!   fed through a vector instruction queue, with 16 load and 16 store
//!   queue entries connected **directly to the shared L2**;
//! * a shared 512 KiB L2 (8 banks, 8-cycle hit) over DDR4-2400.
//!
//! Execution is split into a *functional* interpreter ([`exec`]) that
//! computes architectural state (so kernel results can be checked against
//! a reference matmul bit-for-bit) and a *timing* model ([`timing`]) that
//! consumes the dynamic instruction stream event-by-event and produces
//! cycle counts and traffic statistics. [`Simulator`] drives both in a
//! single pass, through the decode-once [`engine`]: programs predecode
//! into µop form ([`DecodedProgram`]) and run under an [`Observer`] —
//! [`TimingObserver`] for the timed path, [`NullObserver`] for a
//! functional loop that never materialises events. The per-step
//! interpreter is retained as the differential-testing oracle
//! ([`sim::Simulator::run_stepwise`]).
//!
//! # Example
//!
//! ```
//! use indexmac_isa::{Instruction, ProgramBuilder, XReg};
//! use indexmac_vpu::{SimConfig, Simulator};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(XReg::T0, 21);
//! b.push(Instruction::Add { rd: XReg::T1, rs1: XReg::T0, rs2: XReg::T0 });
//! b.halt();
//!
//! let mut sim = Simulator::new(SimConfig::table_i());
//! let report = sim.run(&b.build())?;
//! assert_eq!(sim.state().x(XReg::T1), 42);
//! assert!(report.cycles > 0);
//! # Ok::<(), indexmac_vpu::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod checks;
pub mod config;
pub mod engine;
pub mod exec;
pub mod report;
pub mod shard;
pub mod sim;
pub mod state;
pub mod timing;
pub mod trace;

pub use analyze::{
    analyze, analyze_instructions, analyze_with_contract, Analysis, AnalysisContract, Confidence,
    Diagnostic, OffsetTable, Rule, Severity, Verified, VregTable,
};
pub use config::{SimConfig, TimingKind};
pub use engine::{DecodedProgram, NullObserver, Observer, RangeExit};
pub use exec::{ExecError, ExecEvent, MemOp};
pub use report::RunReport;
pub use shard::ShardedRun;
pub use sim::{SimError, Simulator};
pub use state::ArchState;
pub use timing::{
    AnyTimingModel, ClassCounts, CountingObserver, InOrderScoreboard, InstrTiming, OutOfOrder,
    PipeStalls, Pipelined, TimingModel, TimingObserver,
};
pub use trace::{Trace, TraceEntry, TraceObserver};
