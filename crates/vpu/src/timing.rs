//! Cycle-approximate timing model of the decoupled vector processor.
//!
//! The model consumes the dynamic instruction stream one [`ExecEvent`] at
//! a time (O(1) state per instruction, no global event queue) and tracks:
//!
//! * the scalar core: in-order issue at `issue_width` per cycle, a
//!   reorder-buffer window that gates issue when full (in-order retire),
//!   a register scoreboard, taken-branch redirect penalty;
//! * the vector engine: a bounded decoupling queue fed by the scalar
//!   core (vector instructions wait for their *scalar* operands at
//!   dispatch), in-order execution with per-`VReg` ready times, lane
//!   occupancy `ceil(vl/lanes)`, and non-blocking loads/stores through
//!   bounded load/store queues attached directly to L2;
//! * cross-domain synchronisation: `vmv.x.s`/`vfmv.f.s` produce their
//!   scalar result only after the engine reaches them, which is the
//!   coupling cost the paper's two kernels pay per non-zero.
//!
//! The collected counters feed [`crate::RunReport`].

use crate::config::SimConfig;
use crate::engine::Observer;
use crate::exec::ExecEvent;
use indexmac_isa::{InstrClass, Instruction, VReg};
use indexmac_mem::{MemStats, MemoryHierarchy};
use std::collections::VecDeque;

/// Number of [`InstrClass`] variants (for the count table).
const N_CLASSES: usize = 14;

fn class_index(c: InstrClass) -> usize {
    match c {
        InstrClass::ScalarAlu => 0,
        InstrClass::ScalarLoad => 1,
        InstrClass::ScalarStore => 2,
        InstrClass::ControlFlow => 3,
        InstrClass::VConfig => 4,
        InstrClass::VLoad => 5,
        InstrClass::VStore => 6,
        InstrClass::VArith => 7,
        InstrClass::VMac => 8,
        InstrClass::VSlide => 9,
        InstrClass::VMvToScalar => 10,
        InstrClass::VMvFromScalar => 11,
        InstrClass::VIndexMac => 12,
        InstrClass::System => 13,
    }
}

/// Per-class dynamic instruction counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts([u64; N_CLASSES]);

impl ClassCounts {
    /// Count of one class.
    pub fn get(&self, c: InstrClass) -> u64 {
        self.0[class_index(c)]
    }

    fn bump(&mut self, c: InstrClass) {
        self.0[class_index(c)] += 1;
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Total vector-engine instructions.
    pub fn vector_total(&self) -> u64 {
        self.get(InstrClass::VLoad)
            + self.get(InstrClass::VStore)
            + self.get(InstrClass::VArith)
            + self.get(InstrClass::VMac)
            + self.get(InstrClass::VSlide)
            + self.get(InstrClass::VMvToScalar)
            + self.get(InstrClass::VMvFromScalar)
            + self.get(InstrClass::VIndexMac)
    }
}

/// Per-instruction timing record returned by [`TimingModel::observe`],
/// consumed by the pipeline tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrTiming {
    /// Cycle the scalar core issued (or dispatched) the instruction.
    pub issue_at: u64,
    /// Cycle execution began (engine start for vector instructions;
    /// equals `issue_at` on the scalar side).
    pub start: u64,
    /// Cycle the result became architecturally available.
    pub completion: u64,
}

/// The timing model state.
#[derive(Debug, Clone)]
pub struct TimingModel {
    cfg: SimConfig,
    hier: MemoryHierarchy,

    // Scalar core.
    x_ready: [u64; 32],
    f_ready: [u64; 32],
    issue_cycle: u64,
    issued_in_cycle: u32,
    vdispatched_in_cycle: u32,
    rob: VecDeque<u64>,

    // Vector engine.
    engine_free: u64,
    v_ready: [u64; 32],
    vq_starts: VecDeque<u64>,
    lq: VecDeque<u64>,
    sq: VecDeque<u64>,

    // Counters.
    counts: ClassCounts,
    engine_busy: u64,
    vq_stall_cycles: u64,
    rob_stall_cycles: u64,
    v2s_syncs: u64,
    last_completion: u64,
}

impl TimingModel {
    /// Builds a fresh model for `cfg` (cold caches, empty queues).
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            cfg,
            hier: MemoryHierarchy::new(cfg.hierarchy),
            x_ready: [0; 32],
            f_ready: [0; 32],
            issue_cycle: 0,
            issued_in_cycle: 0,
            vdispatched_in_cycle: 0,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            engine_free: 0,
            v_ready: [0; 32],
            vq_starts: VecDeque::with_capacity(cfg.vq_depth),
            lq: VecDeque::with_capacity(cfg.vlq_entries),
            sq: VecDeque::with_capacity(cfg.vsq_entries),
            counts: ClassCounts::default(),
            engine_busy: 0,
            vq_stall_cycles: 0,
            rob_stall_cycles: 0,
            v2s_syncs: 0,
            last_completion: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Memory-traffic counters collected so far.
    pub fn mem_stats(&self) -> MemStats {
        self.hier.stats()
    }

    /// The memory hierarchy (cache hit/miss counters etc.).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hier
    }

    /// Per-class dynamic instruction counts.
    pub fn counts(&self) -> ClassCounts {
        self.counts
    }

    /// Cycles the vector engine spent occupied.
    pub fn engine_busy_cycles(&self) -> u64 {
        self.engine_busy
    }

    /// Cycles the scalar core stalled on a full vector queue.
    pub fn vq_stall_cycles(&self) -> u64 {
        self.vq_stall_cycles
    }

    /// Cycles the scalar core stalled on a full ROB.
    pub fn rob_stall_cycles(&self) -> u64 {
        self.rob_stall_cycles
    }

    /// Number of vector-to-scalar synchronisations observed.
    pub fn v2s_syncs(&self) -> u64 {
        self.v2s_syncs
    }

    /// Total cycles: every component drained.
    pub fn total_cycles(&self) -> u64 {
        self.issue_cycle
            .max(self.engine_free)
            .max(self.last_completion)
    }

    fn note_completion(&mut self, c: u64) {
        if c > self.last_completion {
            self.last_completion = c;
        }
    }

    /// Latest ready time across a register group of `regs` registers.
    fn ready_of(&self, r: VReg, regs: usize) -> u64 {
        let base = r.index() as usize;
        (base..(base + regs).min(32))
            .map(|i| self.v_ready[i])
            .max()
            .unwrap_or(0)
    }

    /// Marks a register group of `regs` registers ready at `at`.
    fn mark_ready(&mut self, r: VReg, regs: usize, at: u64) {
        let base = r.index() as usize;
        for i in base..(base + regs).min(32) {
            self.v_ready[i] = at;
        }
    }

    /// Accounts one dynamic instruction, returning its timing record.
    pub fn observe(&mut self, ev: &ExecEvent) -> InstrTiming {
        let class = ev.instr.class();
        self.counts.bump(class);

        // ---- scalar-side operand readiness ----
        let mut ready = 0u64;
        for src in ev.instr.x_srcs().into_iter().flatten() {
            ready = ready.max(self.x_ready[src.index() as usize]);
        }
        if let Some(fsrc) = ev.instr.f_src() {
            ready = ready.max(self.f_ready[fsrc.index() as usize]);
        }

        // ---- ROB window (in-order retire) ----
        let mut issue_at = ready.max(self.issue_cycle);
        while self.rob.len() >= self.cfg.rob_entries {
            let oldest = self.rob.pop_front().expect("rob non-empty");
            if oldest > issue_at {
                self.rob_stall_cycles += oldest - issue_at;
                issue_at = oldest;
            }
        }

        // ---- issue-slot accounting ----
        if issue_at > self.issue_cycle {
            self.issue_cycle = issue_at;
            self.issued_in_cycle = 0;
            self.vdispatched_in_cycle = 0;
        }
        if self.issued_in_cycle >= self.cfg.issue_width
            || (class.is_vector() && self.vdispatched_in_cycle >= self.cfg.vdispatch_per_cycle)
        {
            self.issue_cycle += 1;
            self.issued_in_cycle = 0;
            self.vdispatched_in_cycle = 0;
        }
        let issue_at = self.issue_cycle;
        self.issued_in_cycle += 1;
        if class.is_vector() {
            self.vdispatched_in_cycle += 1;
        }

        // ---- execute by class ----
        // `rob_completion` is when the instruction retires from the
        // scalar core's ROB (vector instructions retire early in the
        // decoupled design); `result_at` is when the *result* is
        // architecturally available, which is what the trace reports.
        let (start, rob_completion, result_at) = if class.is_vector() {
            self.run_vector(ev, class, issue_at)
        } else {
            let c = self.run_scalar(ev, class, issue_at);
            (issue_at, c, c)
        };

        self.rob.push_back(rob_completion);
        self.note_completion(rob_completion);
        InstrTiming {
            issue_at,
            start,
            completion: result_at,
        }
    }

    fn run_scalar(&mut self, ev: &ExecEvent, class: InstrClass, issue_at: u64) -> u64 {
        let completion = match class {
            InstrClass::ScalarAlu => {
                let lat = if matches!(ev.instr, Instruction::Mul { .. }) {
                    self.cfg.mul_latency
                } else {
                    self.cfg.alu_latency
                };
                issue_at + lat
            }
            InstrClass::ScalarLoad => {
                let m = ev.mem.expect("scalar load carries a memory op");
                let lat = self.hier.scalar_read(m.addr, m.bytes, issue_at);
                issue_at + lat
            }
            InstrClass::ScalarStore => {
                let m = ev.mem.expect("scalar store carries a memory op");
                let _drain = self.hier.scalar_write(m.addr, m.bytes, issue_at);
                // Stores commit from the store buffer off the critical path.
                issue_at + 1
            }
            InstrClass::ControlFlow => {
                if ev.branch_taken {
                    // Redirect: later instructions fetch after the penalty.
                    self.issue_cycle = issue_at + self.cfg.branch_taken_penalty;
                    self.issued_in_cycle = 0;
                    self.vdispatched_in_cycle = 0;
                }
                issue_at + 1
            }
            InstrClass::System => issue_at + 1,
            _ => unreachable!("non-scalar class routed to run_scalar"),
        };
        if let Some(rd) = ev.instr.x_dst() {
            self.x_ready[rd.index() as usize] = completion;
        }
        if let Some(fd) = ev.instr.f_dst() {
            self.f_ready[fd.index() as usize] = completion;
        }
        completion
    }

    fn run_vector(&mut self, ev: &ExecEvent, class: InstrClass, issue_at: u64) -> (u64, u64, u64) {
        // vsetvli is resolved scalar-side in decoupled designs (the
        // granted vl returns immediately; the engine is re-configured in
        // program order by construction).
        if class == InstrClass::VConfig {
            let completion = issue_at + 1;
            if let Some(rd) = ev.instr.x_dst() {
                self.x_ready[rd.index() as usize] = completion;
            }
            return (issue_at, completion, completion);
        }

        // ---- dispatch into the bounded decoupling queue ----
        let mut dispatch = issue_at;
        while let Some(&s) = self.vq_starts.front() {
            if s <= dispatch {
                self.vq_starts.pop_front();
            } else {
                break;
            }
        }
        if self.vq_starts.len() >= self.cfg.vq_depth {
            let s = self.vq_starts.pop_front().expect("vq non-empty");
            self.vq_stall_cycles += s.saturating_sub(dispatch);
            dispatch = dispatch.max(s);
            // The scalar core was blocked handing the instruction over.
            if dispatch > self.issue_cycle {
                self.issue_cycle = dispatch;
                self.issued_in_cycle = 0;
                self.vdispatched_in_cycle = 0;
            }
        }

        // ---- in-order engine start: operands + structural ----
        // Under register grouping (vl > one register's lanes) operands
        // span `emul` consecutive registers — computed at the event's
        // element width, so e8 instructions group 4× later than e32.
        let emul = ev.vl.div_ceil(self.cfg.vlmax_for(ev.sew)).max(1);
        // The widening integer MACs write an e32 accumulator group that
        // spans `32/SEW` times the source EMUL (the same factor the
        // functional executor applies).
        let widen = if ev.instr.class() == InstrClass::VIndexMac {
            crate::exec::widen_factor(ev.sew)
        } else {
            1
        };
        let dst_regs = emul * widen;
        let dst = ev.instr.v_dst();
        let mut start = self.engine_free.max(dispatch);
        for src in ev.instr.v_srcs().into_iter().flatten() {
            // vindexmac.vvi reads its metadata operands element-wise:
            // they stay single registers even when the accumulator (vd)
            // and the indirect source span a group.
            let regs = if matches!(ev.instr, Instruction::VindexmacVvi { .. }) && Some(src) != dst {
                1
            } else if Some(src) == dst {
                dst_regs
            } else {
                emul
            };
            start = start.max(self.ready_of(src, regs));
        }
        if let Some(ind) = ev.indirect_vreg {
            // The indirect VRF read of vindexmac (group-wide).
            start = start.max(self.ready_of(ind, emul));
        }

        let occ = self.cfg.occupancy_sew(ev.vl, ev.sew);
        let completion = match class {
            InstrClass::VLoad => {
                // Load-queue entry (16 outstanding, Table I).
                while let Some(&c) = self.lq.front() {
                    if c <= start {
                        self.lq.pop_front();
                    } else {
                        break;
                    }
                }
                if self.lq.len() >= self.cfg.vlq_entries {
                    let c = self.lq.pop_front().expect("lq non-empty");
                    start = start.max(c);
                }
                let m = ev.mem.expect("vector load carries a memory op");
                let lat = self.hier.vector_read(m.addr, m.bytes, start);
                let data_at = start + lat;
                self.lq.push_back(data_at);
                if let Some(vd) = ev.instr.v_dst() {
                    self.mark_ready(vd, dst_regs, data_at);
                }
                self.engine_free = start + occ;
                self.engine_busy += occ;
                self.note_completion(data_at);
                // Decoupled: retires from the scalar ROB at dispatch.
                (dispatch + 1, data_at)
            }
            InstrClass::VStore => {
                while let Some(&c) = self.sq.front() {
                    if c <= start {
                        self.sq.pop_front();
                    } else {
                        break;
                    }
                }
                if self.sq.len() >= self.cfg.vsq_entries {
                    let c = self.sq.pop_front().expect("sq non-empty");
                    start = start.max(c);
                }
                let m = ev.mem.expect("vector store carries a memory op");
                let lat = self.hier.vector_write(m.addr, m.bytes, start);
                self.sq.push_back(start + lat);
                self.engine_free = start + occ;
                self.engine_busy += occ;
                self.note_completion(start + lat);
                (dispatch + 1, start + lat)
            }
            InstrClass::VMvToScalar => {
                self.engine_free = start + 1;
                self.engine_busy += 1;
                self.v2s_syncs += 1;
                let scalar_at = start + 1 + self.cfg.v2s_latency;
                if let Some(rd) = ev.instr.x_dst() {
                    self.x_ready[rd.index() as usize] = scalar_at;
                }
                if let Some(fd) = ev.instr.f_dst() {
                    self.f_ready[fd.index() as usize] = scalar_at;
                }
                (scalar_at, scalar_at)
            }
            InstrClass::VArith
            | InstrClass::VSlide
            | InstrClass::VMvFromScalar
            | InstrClass::VMac
            | InstrClass::VIndexMac => {
                let lat = match class {
                    InstrClass::VMac | InstrClass::VIndexMac => self.cfg.vmac_latency,
                    InstrClass::VSlide => self.cfg.vslide_latency,
                    _ => self.cfg.varith_latency,
                };
                self.engine_free = start + occ;
                self.engine_busy += occ;
                if let Some(vd) = ev.instr.v_dst() {
                    self.mark_ready(vd, dst_regs, start + lat.max(occ));
                }
                self.note_completion(start + lat.max(occ));
                (dispatch + 1, start + lat.max(occ))
            }
            _ => unreachable!("non-engine class routed to run_vector"),
        };
        self.vq_starts.push_back(start);
        (start, completion.0, completion.1)
    }
}

/// The timing-path [`Observer`]: feeds every event to a [`TimingModel`]
/// and hands the drained model back for report collection. This is
/// what `Simulator::run` monomorphizes the engine loop over.
#[derive(Debug, Clone)]
pub struct TimingObserver {
    model: TimingModel,
}

impl TimingObserver {
    /// A fresh observer over a cold [`TimingModel`] for `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            model: TimingModel::new(cfg),
        }
    }

    /// The accumulated timing model.
    pub fn model(&self) -> &TimingModel {
        &self.model
    }
}

impl Observer for TimingObserver {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        self.model.observe(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::MemOp;
    use indexmac_isa::{VReg, XReg};

    fn cfg() -> SimConfig {
        SimConfig::table_i()
    }

    fn alu_ev(rd: XReg, rs1: XReg) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Addi { rd, rs1, imm: 1 },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    #[test]
    fn independent_alu_ops_pack_into_issue_width() {
        let mut t = TimingModel::new(cfg());
        // 8 independent ops with distinct dest regs fit in one cycle.
        for i in 1..=8 {
            t.observe(&alu_ev(XReg::new(i), XReg::ZERO));
        }
        assert_eq!(t.total_cycles(), 1); // all issued at cycle 0, done at 1
                                         // A 9th op spills to the next cycle.
        t.observe(&alu_ev(XReg::new(9), XReg::ZERO));
        assert_eq!(t.total_cycles(), 2);
    }

    #[test]
    fn dependent_chain_serialises() {
        let mut t = TimingModel::new(cfg());
        for _ in 0..10 {
            t.observe(&alu_ev(XReg::T0, XReg::T0));
        }
        // Each op waits for the previous one's 1-cycle latency.
        assert!(t.total_cycles() >= 10);
    }

    #[test]
    fn scalar_load_latency_propagates_to_consumer() {
        let mut t = TimingModel::new(cfg());
        let ld = ExecEvent {
            pc: 0,
            instr: Instruction::Lw {
                rd: XReg::T0,
                rs1: XReg::A0,
                imm: 0,
            },
            mem: Some(MemOp {
                addr: 0x1000,
                bytes: 4,
                write: false,
                vector: false,
            }),
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&ld);
        let cold = t.total_cycles();
        assert!(cold > 10, "cold load must reach DRAM (got {cold})");
        // A dependent consumer issues only after the load returns.
        t.observe(&alu_ev(XReg::T1, XReg::T0));
        assert_eq!(t.total_cycles(), cold + 1);
    }

    #[test]
    fn taken_branch_pays_redirect() {
        let mut t = TimingModel::new(cfg());
        let br = ExecEvent {
            pc: 0,
            instr: Instruction::Bne {
                rs1: XReg::ZERO,
                rs2: XReg::T0,
                offset: -1,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: true,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&br);
        t.observe(&alu_ev(XReg::T1, XReg::ZERO));
        // Next instruction issues only after the redirect penalty.
        assert!(t.total_cycles() > cfg().branch_taken_penalty);
    }

    fn vload_ev(vd: VReg, addr: u64) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Vle32 { vd, rs1: XReg::A0 },
            mem: Some(MemOp {
                addr,
                bytes: 64,
                write: false,
                vector: true,
            }),
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    fn vmac_ev(vd: VReg, vs2: VReg) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::VfmaccVf {
                vd,
                fs1: indexmac_isa::instr::FReg::F0,
                vs2,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    #[test]
    fn vector_load_data_gates_dependent_mac() {
        let mut t = TimingModel::new(cfg());
        t.observe(&vload_ev(VReg::V1, 0x0));
        t.observe(&vmac_ev(VReg::V2, VReg::V1));
        let with_dep = t.total_cycles();

        let mut t2 = TimingModel::new(cfg());
        t2.observe(&vload_ev(VReg::V1, 0x0));
        t2.observe(&vmac_ev(VReg::V2, VReg::V3)); // independent
        let without_dep = t2.total_cycles();
        assert!(
            with_dep >= without_dep,
            "dependent MAC cannot finish before independent one ({with_dep} vs {without_dep})"
        );
    }

    #[test]
    fn indexmac_waits_for_indirect_source() {
        let mut t = TimingModel::new(cfg());
        // Load into v20, then vindexmac reading v20 indirectly.
        t.observe(&vload_ev(VReg::new(20), 0x0));
        let loaded_at = t.total_cycles();
        let imac = ExecEvent {
            pc: 1,
            instr: Instruction::VindexmacVx {
                vd: VReg::V1,
                vs2: VReg::V2,
                rs: XReg::T0,
            },
            mem: None,
            indirect_vreg: Some(VReg::new(20)),
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&imac);
        assert!(
            t.total_cycles() >= loaded_at,
            "vindexmac must wait for the loaded tile"
        );
        assert_eq!(t.counts().get(InstrClass::VIndexMac), 1);
    }

    #[test]
    fn v2s_move_couples_clocks() {
        let mut t = TimingModel::new(cfg());
        let mv = ExecEvent {
            pc: 0,
            instr: Instruction::VmvXs {
                rd: XReg::T0,
                vs2: VReg::V1,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&mv);
        let sync = t.total_cycles();
        assert!(sync >= cfg().v2s_latency);
        // A scalar consumer of t0 waits for the transfer.
        t.observe(&alu_ev(XReg::T1, XReg::T0));
        assert!(t.total_cycles() > sync);
        assert_eq!(t.v2s_syncs(), 1);
    }

    #[test]
    fn load_queue_caps_outstanding_loads() {
        let mut t = TimingModel::new(cfg());
        // Far more loads than queue entries, all to distinct cold lines.
        for i in 0..64 {
            t.observe(&vload_ev(VReg::new((i % 8) as u8), (i as u64) * 4096));
        }
        // With 16 entries and ~90-cycle DRAM, 64 cold loads cannot all
        // overlap: total must exceed a single miss by a lot.
        assert!(t.total_cycles() > 200, "got {}", t.total_cycles());
    }

    #[test]
    fn engine_in_order_even_when_independent() {
        let mut t = TimingModel::new(cfg());
        t.observe(&vmac_ev(VReg::V1, VReg::V2));
        let one = t.engine_busy_cycles();
        t.observe(&vmac_ev(VReg::V3, VReg::V4));
        assert_eq!(t.engine_busy_cycles(), one * 2);
    }

    #[test]
    fn eliminating_the_load_is_faster() {
        // Micro-version of the paper's claim: (load+mac) vs indexmac.
        let mut with_load = TimingModel::new(cfg());
        let mut without = TimingModel::new(cfg());
        // Warm the line so the comparison is an L2-hit comparison.
        with_load.observe(&vload_ev(VReg::V8, 0x100000));
        without.observe(&vload_ev(VReg::V8, 0x100000));
        let w0 = with_load.total_cycles();
        let n0 = without.total_cycles();
        assert_eq!(w0, n0);
        for i in 0..32 {
            with_load.observe(&vload_ev(VReg::V5, 0x100000));
            with_load.observe(&vmac_ev(VReg::new((i % 4) as u8), VReg::V5));

            let imac = ExecEvent {
                pc: 0,
                instr: Instruction::VindexmacVx {
                    vd: VReg::new((i % 4) as u8),
                    vs2: VReg::V6,
                    rs: XReg::T0,
                },
                mem: None,
                indirect_vreg: Some(VReg::V8),
                branch_taken: false,
                vl: 16,
                sew: indexmac_isa::Sew::E32,
            };
            without.observe(&imac);
        }
        assert!(
            with_load.total_cycles() > without.total_cycles(),
            "load+mac {} should exceed indexmac {}",
            with_load.total_cycles(),
            without.total_cycles()
        );
        assert!(with_load.mem_stats().vector_loads > without.mem_stats().vector_loads);
    }

    #[test]
    fn class_counts_accumulate() {
        let mut t = TimingModel::new(cfg());
        t.observe(&alu_ev(XReg::T0, XReg::ZERO));
        t.observe(&vload_ev(VReg::V1, 0));
        t.observe(&vmac_ev(VReg::V2, VReg::V1));
        let c = t.counts();
        assert_eq!(c.total(), 3);
        assert_eq!(c.vector_total(), 2);
        assert_eq!(c.get(InstrClass::ScalarAlu), 1);
        assert_eq!(c.get(InstrClass::VLoad), 1);
        assert_eq!(c.get(InstrClass::VMac), 1);
    }
}
