//! Run reports: the measurements every experiment consumes.

use crate::timing::ClassCounts;
use indexmac_isa::InstrClass;
use indexmac_mem::MemStats;

/// Measurements from one simulated program run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Total cycles until every component drained.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Per-class dynamic instruction counts.
    pub counts: ClassCounts,
    /// Program-issued memory traffic (the paper's Fig. 6 metric).
    pub mem: MemStats,
    /// L1D hit rate in `[0, 1]`.
    pub l1d_hit_rate: f64,
    /// L2 hit rate in `[0, 1]`.
    pub l2_hit_rate: f64,
    /// Cycles the vector engine was occupied.
    pub engine_busy_cycles: u64,
    /// Cycles the scalar core stalled on a full vector queue.
    pub vq_stall_cycles: u64,
    /// Cycles the scalar core stalled on a full ROB.
    pub rob_stall_cycles: u64,
    /// Vector-to-scalar synchronisations (`vmv.x.s`-class).
    pub v2s_syncs: u64,
}

impl RunReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Vector-engine utilisation in `[0, 1]`.
    pub fn engine_utilisation(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.engine_busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Speedup of `self` relative to `baseline` (`baseline.cycles /
    /// self.cycles`) — the paper's Fig. 4/5 metric.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Memory accesses of `self` normalised to `baseline` — the paper's
    /// Fig. 6 metric.
    pub fn normalized_mem_accesses(&self, baseline: &RunReport) -> f64 {
        if baseline.mem.total_accesses() == 0 {
            0.0
        } else {
            self.mem.total_accesses() as f64 / baseline.mem.total_accesses() as f64
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cycles {:>12}  instret {:>12}  ipc {:>5.2}  engine util {:>5.1}%",
            self.cycles,
            self.instructions,
            self.ipc(),
            self.engine_utilisation() * 100.0
        )?;
        writeln!(
            f,
            "  vec: {} loads, {} stores, {} MACs, {} indexmacs, {} slides, {} v2s syncs",
            self.counts.get(InstrClass::VLoad),
            self.counts.get(InstrClass::VStore),
            self.counts.get(InstrClass::VMac),
            self.counts.get(InstrClass::VIndexMac),
            self.counts.get(InstrClass::VSlide),
            self.v2s_syncs,
        )?;
        write!(
            f,
            "  {} | L1D {:.1}% | L2 {:.1}%",
            self.mem,
            self.l1d_hit_rate * 100.0,
            self.l2_hit_rate * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, instructions: u64) -> RunReport {
        RunReport {
            cycles,
            instructions,
            counts: ClassCounts::default(),
            mem: MemStats {
                vector_loads: 10,
                ..Default::default()
            },
            l1d_hit_rate: 0.9,
            l2_hit_rate: 0.8,
            engine_busy_cycles: cycles / 2,
            vq_stall_cycles: 0,
            rob_stall_cycles: 0,
            v2s_syncs: 0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report(100, 250);
        assert_eq!(r.ipc(), 2.5);
        assert_eq!(r.engine_utilisation(), 0.5);
        let base = report(180, 250);
        assert!((base.cycles as f64 / r.cycles as f64 - r.speedup_over(&base)).abs() < 1e-12);
        assert_eq!(r.speedup_over(&base), 1.8);
    }

    #[test]
    fn normalized_mem() {
        let mut a = report(1, 1);
        let mut b = report(1, 1);
        a.mem.vector_loads = 5;
        b.mem.vector_loads = 10;
        assert_eq!(a.normalized_mem_accesses(&b), 0.5);
    }

    #[test]
    fn zero_cycle_guards() {
        let z = report(0, 0);
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.engine_utilisation(), 0.0);
        assert_eq!(z.speedup_over(&report(5, 5)), 0.0);
    }

    #[test]
    fn display_smoke() {
        let s = report(10, 20).to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains("L1D"));
    }
}
