//! An explicit in-order pipeline: fetch → decode → issue → execute →
//! writeback, with per-stage hazard accounting.
//!
//! Where the [`super::InOrderScoreboard`] models issue as a flat
//! scoreboard, this backend makes the pipeline depth visible: results
//! only appear `FRONT_DEPTH` cycles after fetch, taken branches refill
//! the whole front end (resolve-in-execute plus the redirect penalty
//! plus the fetch/decode stages), a skid buffer bounds how far fetch
//! may run ahead of a stalled issue stage, and every instruction spends
//! one cycle in writeback. The per-stage stall counters ([`PipeStalls`])
//! attribute every lost cycle to the stage that lost it.

use super::vector::VectorSide;
use super::{ClassCounts, InstrTiming, TimingModel};
use crate::config::SimConfig;
use crate::exec::ExecEvent;
use indexmac_isa::{InstrClass, Instruction};
use indexmac_mem::MemoryHierarchy;
use std::collections::VecDeque;

/// Pipeline stages ahead of issue (fetch + decode).
const FRONT_DEPTH: u64 = 2;
/// Decode-buffer slots that let fetch run ahead of a stalled issue.
const SKID: u64 = 2;
/// Writeback-stage occupancy per instruction.
const WB_STAGE: u64 = 1;

/// Per-stage hazard-stall cycle counters of the [`Pipelined`] backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeStalls {
    /// Fetch bubbles from taken-branch redirects (resolve + penalty +
    /// front-end refill).
    pub fetch: u64,
    /// Decode back-pressure: cycles fetch was held back by a stalled
    /// issue stage once the skid buffer filled.
    pub decode: u64,
    /// Issue-stage stalls: operand (RAW) waits, issue-width exhaustion
    /// and in-flight-window (ROB) waits beyond the front-end hand-off.
    pub issue: u64,
    /// Execute-stage waits of vector instructions: decoupling-queue
    /// back-pressure and in-order engine/operand waits.
    pub execute: u64,
    /// Writeback-stage occupancy (one cycle per instruction).
    pub writeback: u64,
}

/// The explicit five-stage in-order pipeline backend.
#[derive(Debug, Clone)]
pub struct Pipelined {
    cfg: SimConfig,
    hier: MemoryHierarchy,

    // Front end.
    fetch_cycle: u64,
    fetched_in_cycle: u32,

    // Issue stage (in-order, scoreboarded).
    x_ready: [u64; 32],
    f_ready: [u64; 32],
    issue_cycle: u64,
    issued_in_cycle: u32,
    vdispatched_in_cycle: u32,
    rob: VecDeque<u64>,

    // Vector engine.
    vec: VectorSide,

    // Counters.
    counts: ClassCounts,
    rob_stall_cycles: u64,
    last_completion: u64,
    stalls: PipeStalls,
}

impl Pipelined {
    /// Builds a fresh model for `cfg` (cold caches, empty pipeline).
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            cfg,
            hier: MemoryHierarchy::new(cfg.hierarchy),
            fetch_cycle: 0,
            fetched_in_cycle: 0,
            x_ready: [0; 32],
            f_ready: [0; 32],
            issue_cycle: 0,
            issued_in_cycle: 0,
            vdispatched_in_cycle: 0,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            vec: VectorSide::new(cfg),
            counts: ClassCounts::default(),
            rob_stall_cycles: 0,
            last_completion: 0,
            stalls: PipeStalls::default(),
        }
    }

    /// Per-stage stall-cycle attribution.
    pub fn stage_stalls(&self) -> PipeStalls {
        self.stalls
    }

    /// Single cycle-advance point of the issue stage (mirrors
    /// `InOrderScoreboard::advance_issue_cycle`): the per-cycle issue
    /// and vector-dispatch budgets always reopen together with the
    /// clock.
    fn advance_issue_cycle(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.issue_cycle, "issue clock runs forward");
        self.issue_cycle = cycle;
        self.issued_in_cycle = 0;
        self.vdispatched_in_cycle = 0;
    }

    fn note_completion(&mut self, c: u64) {
        if c > self.last_completion {
            self.last_completion = c;
        }
    }

    /// Applies scalar writeback: results bypass to consumers as the
    /// execute stage produces them (`exec_done`), while architectural
    /// completion is one writeback stage later.
    fn writeback_scalar(&mut self, ev: &ExecEvent, exec_done: u64) -> u64 {
        if let Some(rd) = ev.instr.x_dst() {
            self.x_ready[rd.index() as usize] = exec_done;
        }
        if let Some(fd) = ev.instr.f_dst() {
            self.f_ready[fd.index() as usize] = exec_done;
        }
        self.stalls.writeback += WB_STAGE;
        exec_done + WB_STAGE
    }
}

impl TimingModel for Pipelined {
    fn observe(&mut self, ev: &ExecEvent) -> InstrTiming {
        let class = ev.instr.class();
        self.counts.bump(class);

        // ---- fetch & decode (in-order, issue_width wide) ----
        if self.fetched_in_cycle >= self.cfg.issue_width {
            self.fetch_cycle += 1;
            self.fetched_in_cycle = 0;
        }
        let fetch_at = self.fetch_cycle;
        self.fetched_in_cycle += 1;
        // Earliest possible issue: the instruction leaves decode.
        let decode_ready = fetch_at + FRONT_DEPTH;

        // ---- issue stage: operand readiness (full bypass network) ----
        let mut ready = decode_ready;
        for src in ev.instr.x_srcs().into_iter().flatten() {
            ready = ready.max(self.x_ready[src.index() as usize]);
        }
        if let Some(fsrc) = ev.instr.f_src() {
            ready = ready.max(self.f_ready[fsrc.index() as usize]);
        }

        // ---- in-flight window (in-order retire) ----
        let mut issue_at = ready.max(self.issue_cycle);
        while self.rob.len() >= self.cfg.rob_entries {
            let oldest = self.rob.pop_front().expect("rob non-empty");
            if oldest > issue_at {
                self.rob_stall_cycles += oldest - issue_at;
                issue_at = oldest;
                self.advance_issue_cycle(oldest);
            }
        }

        // ---- issue-slot accounting ----
        if issue_at > self.issue_cycle {
            self.advance_issue_cycle(issue_at);
        }
        if self.issued_in_cycle >= self.cfg.issue_width
            || (class.is_vector() && self.vdispatched_in_cycle >= self.cfg.vdispatch_per_cycle)
        {
            self.advance_issue_cycle(self.issue_cycle + 1);
        }
        let issue_at = self.issue_cycle;
        self.issued_in_cycle += 1;
        if class.is_vector() {
            self.vdispatched_in_cycle += 1;
        }
        // Everything the instruction lost past leaving decode is an
        // issue-stage hazard (RAW wait, width, window).
        self.stalls.issue += issue_at - decode_ready;
        // Fetch may run ahead of a stalled issue only by the skid
        // buffer; beyond that decode back-pressures fetch.
        let fetch_floor = issue_at.saturating_sub(FRONT_DEPTH + SKID);
        if fetch_floor > self.fetch_cycle {
            self.stalls.decode += fetch_floor - self.fetch_cycle;
            self.fetch_cycle = fetch_floor;
            self.fetched_in_cycle = 0;
        }

        // ---- execute / writeback by class ----
        let (start, rob_completion, result_at) = if class.is_vector() {
            if class == InstrClass::VConfig {
                // vsetvli resolves in execute; the granted vl bypasses.
                let completion = self.writeback_scalar(ev, issue_at + 1);
                (issue_at, completion, completion)
            } else {
                let out = self.vec.run(&mut self.hier, ev, class, issue_at);
                if out.dispatch > self.issue_cycle {
                    // Decoupling-queue back-pressure blocks the issue
                    // stage itself.
                    self.stalls.execute += out.dispatch - issue_at;
                    self.advance_issue_cycle(out.dispatch);
                }
                // In-order engine/operand wait inside the vector side.
                self.stalls.execute += out.start - out.dispatch;
                if let Some((rd, at)) = out.x_write {
                    self.x_ready[rd.index() as usize] = at;
                }
                if let Some((fd, at)) = out.f_write {
                    self.f_ready[fd.index() as usize] = at;
                }
                self.note_completion(out.result_at);
                (out.start, out.rob_completion, out.result_at)
            }
        } else {
            let exec_done = match class {
                InstrClass::ScalarAlu => {
                    let lat = if matches!(ev.instr, Instruction::Mul { .. }) {
                        self.cfg.mul_latency
                    } else {
                        self.cfg.alu_latency
                    };
                    issue_at + lat
                }
                InstrClass::ScalarLoad => {
                    let m = ev.mem.expect("scalar load carries a memory op");
                    let lat = self.hier.scalar_read(m.addr, m.bytes, issue_at);
                    issue_at + lat
                }
                InstrClass::ScalarStore => {
                    let m = ev.mem.expect("scalar store carries a memory op");
                    let _drain = self.hier.scalar_write(m.addr, m.bytes, issue_at);
                    // Stores commit from the store buffer off the
                    // critical path.
                    issue_at + 1
                }
                InstrClass::ControlFlow => {
                    if ev.branch_taken {
                        // The branch resolves in execute; the redirect
                        // then refills fetch *and* decode, so the next
                        // instruction issues a full front end later.
                        let refetch = issue_at + 1 + self.cfg.branch_taken_penalty;
                        self.stalls.fetch += refetch.saturating_sub(self.fetch_cycle);
                        self.fetch_cycle = refetch;
                        self.fetched_in_cycle = 0;
                    }
                    issue_at + 1
                }
                InstrClass::System => issue_at + 1,
                _ => unreachable!("vector class routed to the scalar pipe"),
            };
            let completion = self.writeback_scalar(ev, exec_done);
            (issue_at, completion, completion)
        };

        self.rob.push_back(rob_completion);
        self.note_completion(rob_completion);
        InstrTiming {
            issue_at,
            start,
            completion: result_at,
        }
    }

    fn config(&self) -> &SimConfig {
        &self.cfg
    }

    fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hier
    }

    fn counts(&self) -> ClassCounts {
        self.counts
    }

    fn engine_busy_cycles(&self) -> u64 {
        self.vec.engine_busy()
    }

    fn vq_stall_cycles(&self) -> u64 {
        self.vec.vq_stall_cycles()
    }

    fn rob_stall_cycles(&self) -> u64 {
        self.rob_stall_cycles
    }

    fn v2s_syncs(&self) -> u64 {
        self.vec.v2s_syncs()
    }

    fn total_cycles(&self) -> u64 {
        self.fetch_cycle
            .max(self.issue_cycle)
            .max(self.vec.engine_free())
            .max(self.last_completion)
    }
}

#[cfg(test)]
mod tests {
    use super::super::InOrderScoreboard;
    use super::*;
    use indexmac_isa::{VReg, XReg};

    fn cfg() -> SimConfig {
        SimConfig::table_i()
    }

    fn alu_ev(rd: XReg, rs1: XReg) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Addi { rd, rs1, imm: 1 },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    fn branch_ev(taken: bool) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Bne {
                rs1: XReg::ZERO,
                rs2: XReg::T0,
                offset: -1,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: taken,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    #[test]
    fn pipeline_depth_delays_first_result() {
        let mut t = Pipelined::new(cfg());
        let timing = t.observe(&alu_ev(XReg::T0, XReg::ZERO));
        // Fetch at 0, decode, issue at FRONT_DEPTH, execute 1 cycle,
        // writeback 1 cycle.
        assert_eq!(timing.issue_at, FRONT_DEPTH);
        assert_eq!(timing.completion, FRONT_DEPTH + 1 + WB_STAGE);
        // The scoreboard finishes the same instruction sooner.
        let mut flat = InOrderScoreboard::new(cfg());
        assert!(flat.observe(&alu_ev(XReg::T0, XReg::ZERO)).completion < timing.completion);
    }

    #[test]
    fn taken_branch_refills_the_front_end() {
        let mut pipe = Pipelined::new(cfg());
        let mut flat = InOrderScoreboard::new(cfg());
        for t in [&mut pipe as &mut dyn TimingModel, &mut flat] {
            t.observe(&branch_ev(true));
            t.observe(&alu_ev(XReg::T1, XReg::ZERO));
        }
        // The deeper machine pays resolve + penalty + refetch where the
        // scoreboard pays only the flat penalty.
        assert!(
            pipe.total_cycles() > flat.total_cycles(),
            "pipelined {} vs scoreboard {}",
            pipe.total_cycles(),
            flat.total_cycles()
        );
        assert!(pipe.stage_stalls().fetch > 0);
        // Untaken branches cost nothing extra in fetch.
        let mut quiet = Pipelined::new(cfg());
        quiet.observe(&branch_ev(false));
        assert_eq!(quiet.stage_stalls().fetch, 0);
    }

    #[test]
    fn raw_hazard_counts_as_issue_stall() {
        let mut t = Pipelined::new(cfg());
        // A long dependent chain through one register.
        for _ in 0..8 {
            t.observe(&alu_ev(XReg::T0, XReg::T0));
        }
        let stalls = t.stage_stalls();
        assert!(stalls.issue > 0, "dependent chain must stall issue");
        assert_eq!(stalls.writeback, 8 * WB_STAGE);
    }

    #[test]
    fn skid_buffer_limits_fetch_runahead() {
        let mut t = Pipelined::new(cfg());
        let mut c = cfg();
        c.rob_entries = 4;
        let mut small = Pipelined::new(c);
        // A slow cold load followed by dependent work: the small window
        // forces issue stalls that back-pressure fetch through decode.
        let ld = ExecEvent {
            pc: 0,
            instr: Instruction::Lw {
                rd: XReg::T0,
                rs1: XReg::A0,
                imm: 0,
            },
            mem: Some(crate::exec::MemOp {
                addr: 0x8000,
                bytes: 4,
                write: false,
                vector: false,
            }),
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        for m in [&mut t, &mut small] {
            m.observe(&ld);
            for _ in 0..16 {
                m.observe(&alu_ev(XReg::T1, XReg::T0));
            }
        }
        assert!(small.stage_stalls().decode > 0, "fetch must be held back");
    }

    #[test]
    fn vector_stream_matches_scoreboard_engine_accounting() {
        // The engine model is shared: busy cycles, v2s syncs and memory
        // traffic agree with the scoreboard on a vector-only stream.
        let mut pipe = Pipelined::new(cfg());
        let mut flat = InOrderScoreboard::new(cfg());
        let vmac = ExecEvent {
            pc: 0,
            instr: Instruction::VfmaccVf {
                vd: VReg::V1,
                fs1: indexmac_isa::instr::FReg::F0,
                vs2: VReg::V2,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        for _ in 0..10 {
            pipe.observe(&vmac);
            flat.observe(&vmac);
        }
        assert_eq!(pipe.engine_busy_cycles(), flat.engine_busy_cycles());
        assert_eq!(pipe.counts(), flat.counts());
    }
}
