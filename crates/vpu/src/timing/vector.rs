//! The decoupled vector engine shared by every timing backend.
//!
//! Extracting the engine into one struct is what makes the backends
//! *interchangeable* rather than merely parallel: instruction counts,
//! memory traffic, queue behaviour and the vector-to-scalar coupling
//! cost are computed by exactly this code under every
//! [`crate::config::TimingKind`], so switching backends can only move
//! scalar-side cycle accounting.

use super::vecdeque_window;
use crate::config::SimConfig;
use crate::exec::ExecEvent;
use indexmac_isa::instr::FReg;
use indexmac_isa::{InstrClass, Instruction, VReg, XReg};
use indexmac_mem::MemoryHierarchy;
use std::collections::VecDeque;

/// Outcome of dispatching one instruction into the vector side.
#[derive(Debug, Clone, Copy)]
pub(super) struct VectorOutcome {
    /// Cycle the engine began executing the instruction.
    pub start: u64,
    /// Cycle the instruction retires from the scalar core's in-flight
    /// window (decoupled designs retire vector work early, right after
    /// the hand-over — except cross-domain moves, which hold the window
    /// until the scalar result arrives).
    pub rob_completion: u64,
    /// Cycle the *result* became architecturally available (what the
    /// pipeline trace reports).
    pub result_at: u64,
    /// The dispatch cycle after any vq-full stall; when it exceeds the
    /// cycle the scalar core handed the instruction over, the core was
    /// blocked and must advance its own clock to match.
    pub dispatch: u64,
    /// Scalar integer writeback (`vmv.x.s`), applied by the backend.
    pub x_write: Option<(XReg, u64)>,
    /// Scalar floating-point writeback (`vfmv.f.s`).
    pub f_write: Option<(FReg, u64)>,
}

/// The decoupled vector engine: a bounded decoupling queue fed by the
/// scalar core, in-order execution with per-`VReg` ready times, lane
/// occupancy `ceil(vl/lanes)`, and non-blocking loads/stores through
/// bounded load/store queues attached directly to L2.
#[derive(Debug, Clone)]
pub(super) struct VectorSide {
    cfg: SimConfig,
    engine_free: u64,
    v_ready: [u64; 32],
    vq_starts: VecDeque<u64>,
    lq: VecDeque<u64>,
    sq: VecDeque<u64>,
    engine_busy: u64,
    vq_stall_cycles: u64,
    v2s_syncs: u64,
}

impl VectorSide {
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            cfg,
            engine_free: 0,
            v_ready: [0; 32],
            vq_starts: VecDeque::with_capacity(cfg.vq_depth),
            lq: VecDeque::with_capacity(cfg.vlq_entries),
            sq: VecDeque::with_capacity(cfg.vsq_entries),
            engine_busy: 0,
            vq_stall_cycles: 0,
            v2s_syncs: 0,
        }
    }

    pub fn engine_free(&self) -> u64 {
        self.engine_free
    }

    pub fn engine_busy(&self) -> u64 {
        self.engine_busy
    }

    pub fn vq_stall_cycles(&self) -> u64 {
        self.vq_stall_cycles
    }

    pub fn v2s_syncs(&self) -> u64 {
        self.v2s_syncs
    }

    /// Latest ready time across a register group of `regs` registers.
    fn ready_of(&self, r: VReg, regs: usize) -> u64 {
        let base = r.index() as usize;
        (base..(base + regs).min(32))
            .map(|i| self.v_ready[i])
            .max()
            .unwrap_or(0)
    }

    /// Marks a register group of `regs` registers ready at `at`.
    fn mark_ready(&mut self, r: VReg, regs: usize, at: u64) {
        let base = r.index() as usize;
        for i in base..(base + regs).min(32) {
            self.v_ready[i] = at;
        }
    }

    /// Runs one engine instruction handed over at `dispatch` (must not
    /// be `VConfig` — `vsetvli` resolves scalar-side).
    pub fn run(
        &mut self,
        hier: &mut MemoryHierarchy,
        ev: &ExecEvent,
        class: InstrClass,
        dispatch: u64,
    ) -> VectorOutcome {
        // ---- dispatch into the bounded decoupling queue ----
        let dispatch = match vecdeque_window(&mut self.vq_starts, self.cfg.vq_depth, dispatch) {
            Some(s) => {
                self.vq_stall_cycles += s.saturating_sub(dispatch);
                dispatch.max(s)
            }
            None => dispatch,
        };

        // ---- in-order engine start: operands + structural ----
        // Under register grouping (vl > one register's lanes) operands
        // span `emul` consecutive registers — computed at the event's
        // element width, so e8 instructions group 4× later than e32.
        let emul = ev.vl.div_ceil(self.cfg.vlmax_for(ev.sew)).max(1);
        // The widening integer MACs write an e32 accumulator group that
        // spans `32/SEW` times the source EMUL (the same factor the
        // functional executor applies).
        let widen = if ev.instr.class() == InstrClass::VIndexMac {
            crate::exec::widen_factor(ev.sew)
        } else {
            1
        };
        let dst_regs = emul * widen;
        let dst = ev.instr.v_dst();
        let mut start = self.engine_free.max(dispatch);
        for src in ev.instr.v_srcs().into_iter().flatten() {
            // vindexmac.vvi reads its metadata operands element-wise:
            // they stay single registers even when the accumulator (vd)
            // and the indirect source span a group.
            let regs = if matches!(ev.instr, Instruction::VindexmacVvi { .. }) && Some(src) != dst {
                1
            } else if Some(src) == dst {
                dst_regs
            } else {
                emul
            };
            start = start.max(self.ready_of(src, regs));
        }
        if let Some(ind) = ev.indirect_vreg {
            // The indirect VRF read of vindexmac (group-wide).
            start = start.max(self.ready_of(ind, emul));
        }

        let occ = self.cfg.occupancy_sew(ev.vl, ev.sew);
        let mut x_write = None;
        let mut f_write = None;
        let (rob_completion, result_at) = match class {
            InstrClass::VLoad => {
                // Load-queue entry (16 outstanding, Table I).
                if let Some(c) = vecdeque_window(&mut self.lq, self.cfg.vlq_entries, start) {
                    start = start.max(c);
                }
                let m = ev.mem.expect("vector load carries a memory op");
                let lat = hier.vector_read(m.addr, m.bytes, start);
                let data_at = start + lat;
                self.lq.push_back(data_at);
                if let Some(vd) = ev.instr.v_dst() {
                    self.mark_ready(vd, dst_regs, data_at);
                }
                self.engine_free = start + occ;
                self.engine_busy += occ;
                // Decoupled: retires from the scalar ROB at dispatch.
                (dispatch + 1, data_at)
            }
            InstrClass::VStore => {
                if let Some(c) = vecdeque_window(&mut self.sq, self.cfg.vsq_entries, start) {
                    start = start.max(c);
                }
                let m = ev.mem.expect("vector store carries a memory op");
                let lat = hier.vector_write(m.addr, m.bytes, start);
                self.sq.push_back(start + lat);
                self.engine_free = start + occ;
                self.engine_busy += occ;
                (dispatch + 1, start + lat)
            }
            InstrClass::VMvToScalar => {
                self.engine_free = start + 1;
                self.engine_busy += 1;
                self.v2s_syncs += 1;
                let scalar_at = start + 1 + self.cfg.v2s_latency;
                if let Some(rd) = ev.instr.x_dst() {
                    x_write = Some((rd, scalar_at));
                }
                if let Some(fd) = ev.instr.f_dst() {
                    f_write = Some((fd, scalar_at));
                }
                (scalar_at, scalar_at)
            }
            InstrClass::VArith
            | InstrClass::VSlide
            | InstrClass::VMvFromScalar
            | InstrClass::VMac
            | InstrClass::VIndexMac => {
                let lat = match class {
                    InstrClass::VMac | InstrClass::VIndexMac => self.cfg.vmac_latency,
                    InstrClass::VSlide => self.cfg.vslide_latency,
                    _ => self.cfg.varith_latency,
                };
                self.engine_free = start + occ;
                self.engine_busy += occ;
                if let Some(vd) = ev.instr.v_dst() {
                    self.mark_ready(vd, dst_regs, start + lat.max(occ));
                }
                (dispatch + 1, start + lat.max(occ))
            }
            _ => unreachable!("non-engine class routed to the vector side"),
        };
        self.vq_starts.push_back(start);
        VectorOutcome {
            start,
            rob_completion,
            result_at,
            dispatch,
            x_write,
            f_write,
        }
    }
}
