//! The in-order issue scoreboard — the original timing model, and the
//! backend every pinned paper number is measured under.

use super::vector::VectorSide;
use super::{ClassCounts, InstrTiming, TimingModel};
use crate::config::SimConfig;
use crate::exec::ExecEvent;
use indexmac_isa::{InstrClass, Instruction};
use indexmac_mem::MemoryHierarchy;
use std::collections::VecDeque;

/// The in-order scoreboard: issue at `issue_width` per cycle in program
/// order, a reorder-buffer window that gates issue when full (in-order
/// retire), a register scoreboard, and a taken-branch redirect penalty.
/// Vector instructions hand over to the shared [`VectorSide`].
#[derive(Debug, Clone)]
pub struct InOrderScoreboard {
    cfg: SimConfig,
    hier: MemoryHierarchy,

    // Scalar core.
    x_ready: [u64; 32],
    f_ready: [u64; 32],
    issue_cycle: u64,
    issued_in_cycle: u32,
    vdispatched_in_cycle: u32,
    rob: VecDeque<u64>,

    // Vector engine.
    vec: VectorSide,

    // Counters.
    counts: ClassCounts,
    rob_stall_cycles: u64,
    last_completion: u64,
}

impl InOrderScoreboard {
    /// Builds a fresh model for `cfg` (cold caches, empty queues).
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            cfg,
            hier: MemoryHierarchy::new(cfg.hierarchy),
            x_ready: [0; 32],
            f_ready: [0; 32],
            issue_cycle: 0,
            issued_in_cycle: 0,
            vdispatched_in_cycle: 0,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            vec: VectorSide::new(cfg),
            counts: ClassCounts::default(),
            rob_stall_cycles: 0,
            last_completion: 0,
        }
    }

    /// Advances the issue clock to `cycle`, opening fresh issue and
    /// vector-dispatch slots. Every path that moves the clock — width
    /// exhaustion, operand/ROB waits, branch redirect, vq back-pressure
    /// — funnels through here, so the per-cycle counters can never be
    /// left stale in a new cycle (a vector dispatch in a fresh cycle
    /// after a stall must see a full dispatch budget).
    fn advance_issue_cycle(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.issue_cycle, "issue clock runs forward");
        self.issue_cycle = cycle;
        self.issued_in_cycle = 0;
        self.vdispatched_in_cycle = 0;
    }

    fn note_completion(&mut self, c: u64) {
        if c > self.last_completion {
            self.last_completion = c;
        }
    }

    fn run_scalar(&mut self, ev: &ExecEvent, class: InstrClass, issue_at: u64) -> u64 {
        let completion = match class {
            InstrClass::ScalarAlu => {
                let lat = if matches!(ev.instr, Instruction::Mul { .. }) {
                    self.cfg.mul_latency
                } else {
                    self.cfg.alu_latency
                };
                issue_at + lat
            }
            InstrClass::ScalarLoad => {
                let m = ev.mem.expect("scalar load carries a memory op");
                let lat = self.hier.scalar_read(m.addr, m.bytes, issue_at);
                issue_at + lat
            }
            InstrClass::ScalarStore => {
                let m = ev.mem.expect("scalar store carries a memory op");
                let _drain = self.hier.scalar_write(m.addr, m.bytes, issue_at);
                // Stores commit from the store buffer off the critical path.
                issue_at + 1
            }
            InstrClass::ControlFlow => {
                if ev.branch_taken {
                    // Redirect: later instructions fetch after the penalty.
                    self.advance_issue_cycle(issue_at + self.cfg.branch_taken_penalty);
                }
                issue_at + 1
            }
            InstrClass::System => issue_at + 1,
            _ => unreachable!("non-scalar class routed to run_scalar"),
        };
        if let Some(rd) = ev.instr.x_dst() {
            self.x_ready[rd.index() as usize] = completion;
        }
        if let Some(fd) = ev.instr.f_dst() {
            self.f_ready[fd.index() as usize] = completion;
        }
        completion
    }
}

impl TimingModel for InOrderScoreboard {
    fn observe(&mut self, ev: &ExecEvent) -> InstrTiming {
        let class = ev.instr.class();
        self.counts.bump(class);

        // ---- scalar-side operand readiness ----
        let mut ready = 0u64;
        for src in ev.instr.x_srcs().into_iter().flatten() {
            ready = ready.max(self.x_ready[src.index() as usize]);
        }
        if let Some(fsrc) = ev.instr.f_src() {
            ready = ready.max(self.f_ready[fsrc.index() as usize]);
        }

        // ---- ROB window (in-order retire) ----
        let mut issue_at = ready.max(self.issue_cycle);
        while self.rob.len() >= self.cfg.rob_entries {
            let oldest = self.rob.pop_front().expect("rob non-empty");
            if oldest > issue_at {
                // Charge the stall AND advance the issue clock on the
                // same path: the two must always move together, or a
                // later issue-slot check could observe a clock that
                // lags the cycles already charged as stalled.
                self.rob_stall_cycles += oldest - issue_at;
                issue_at = oldest;
                self.advance_issue_cycle(oldest);
            }
        }

        // ---- issue-slot accounting ----
        if issue_at > self.issue_cycle {
            self.advance_issue_cycle(issue_at);
        }
        if self.issued_in_cycle >= self.cfg.issue_width
            || (class.is_vector() && self.vdispatched_in_cycle >= self.cfg.vdispatch_per_cycle)
        {
            self.advance_issue_cycle(self.issue_cycle + 1);
        }
        let issue_at = self.issue_cycle;
        self.issued_in_cycle += 1;
        if class.is_vector() {
            self.vdispatched_in_cycle += 1;
        }

        // ---- execute by class ----
        // `rob_completion` is when the instruction retires from the
        // scalar core's ROB (vector instructions retire early in the
        // decoupled design); `result_at` is when the *result* is
        // architecturally available, which is what the trace reports.
        let (start, rob_completion, result_at) = if class.is_vector() {
            // vsetvli is resolved scalar-side in decoupled designs (the
            // granted vl returns immediately; the engine is re-configured
            // in program order by construction).
            if class == InstrClass::VConfig {
                let completion = issue_at + 1;
                if let Some(rd) = ev.instr.x_dst() {
                    self.x_ready[rd.index() as usize] = completion;
                }
                (issue_at, completion, completion)
            } else {
                let out = self.vec.run(&mut self.hier, ev, class, issue_at);
                if out.dispatch > self.issue_cycle {
                    // The scalar core was blocked handing the
                    // instruction over a full decoupling queue.
                    self.advance_issue_cycle(out.dispatch);
                }
                if let Some((rd, at)) = out.x_write {
                    self.x_ready[rd.index() as usize] = at;
                }
                if let Some((fd, at)) = out.f_write {
                    self.f_ready[fd.index() as usize] = at;
                }
                self.note_completion(out.result_at);
                (out.start, out.rob_completion, out.result_at)
            }
        } else {
            let c = self.run_scalar(ev, class, issue_at);
            (issue_at, c, c)
        };

        self.rob.push_back(rob_completion);
        self.note_completion(rob_completion);
        InstrTiming {
            issue_at,
            start,
            completion: result_at,
        }
    }

    fn config(&self) -> &SimConfig {
        &self.cfg
    }

    fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hier
    }

    fn counts(&self) -> ClassCounts {
        self.counts
    }

    fn engine_busy_cycles(&self) -> u64 {
        self.vec.engine_busy()
    }

    fn vq_stall_cycles(&self) -> u64 {
        self.vec.vq_stall_cycles()
    }

    fn rob_stall_cycles(&self) -> u64 {
        self.rob_stall_cycles
    }

    fn v2s_syncs(&self) -> u64 {
        self.vec.v2s_syncs()
    }

    fn total_cycles(&self) -> u64 {
        self.issue_cycle
            .max(self.vec.engine_free())
            .max(self.last_completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::MemOp;
    use indexmac_isa::{VReg, XReg};

    fn cfg() -> SimConfig {
        SimConfig::table_i()
    }

    fn alu_ev(rd: XReg, rs1: XReg) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Addi { rd, rs1, imm: 1 },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    #[test]
    fn independent_alu_ops_pack_into_issue_width() {
        let mut t = InOrderScoreboard::new(cfg());
        // 8 independent ops with distinct dest regs fit in one cycle.
        for i in 1..=8 {
            t.observe(&alu_ev(XReg::new(i), XReg::ZERO));
        }
        assert_eq!(t.total_cycles(), 1); // all issued at cycle 0, done at 1
                                         // A 9th op spills to the next cycle.
        t.observe(&alu_ev(XReg::new(9), XReg::ZERO));
        assert_eq!(t.total_cycles(), 2);
    }

    #[test]
    fn dependent_chain_serialises() {
        let mut t = InOrderScoreboard::new(cfg());
        for _ in 0..10 {
            t.observe(&alu_ev(XReg::T0, XReg::T0));
        }
        // Each op waits for the previous one's 1-cycle latency.
        assert!(t.total_cycles() >= 10);
    }

    #[test]
    fn scalar_load_latency_propagates_to_consumer() {
        let mut t = InOrderScoreboard::new(cfg());
        let ld = ExecEvent {
            pc: 0,
            instr: Instruction::Lw {
                rd: XReg::T0,
                rs1: XReg::A0,
                imm: 0,
            },
            mem: Some(MemOp {
                addr: 0x1000,
                bytes: 4,
                write: false,
                vector: false,
            }),
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&ld);
        let cold = t.total_cycles();
        assert!(cold > 10, "cold load must reach DRAM (got {cold})");
        // A dependent consumer issues only after the load returns.
        t.observe(&alu_ev(XReg::T1, XReg::T0));
        assert_eq!(t.total_cycles(), cold + 1);
    }

    #[test]
    fn taken_branch_pays_redirect() {
        let mut t = InOrderScoreboard::new(cfg());
        let br = ExecEvent {
            pc: 0,
            instr: Instruction::Bne {
                rs1: XReg::ZERO,
                rs2: XReg::T0,
                offset: -1,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: true,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&br);
        t.observe(&alu_ev(XReg::T1, XReg::ZERO));
        // Next instruction issues only after the redirect penalty.
        assert!(t.total_cycles() > cfg().branch_taken_penalty);
    }

    fn vload_ev(vd: VReg, addr: u64) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Vle32 { vd, rs1: XReg::A0 },
            mem: Some(MemOp {
                addr,
                bytes: 64,
                write: false,
                vector: true,
            }),
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    fn vmac_ev(vd: VReg, vs2: VReg) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::VfmaccVf {
                vd,
                fs1: indexmac_isa::instr::FReg::F0,
                vs2,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    #[test]
    fn vector_load_data_gates_dependent_mac() {
        let mut t = InOrderScoreboard::new(cfg());
        t.observe(&vload_ev(VReg::V1, 0x0));
        t.observe(&vmac_ev(VReg::V2, VReg::V1));
        let with_dep = t.total_cycles();

        let mut t2 = InOrderScoreboard::new(cfg());
        t2.observe(&vload_ev(VReg::V1, 0x0));
        t2.observe(&vmac_ev(VReg::V2, VReg::V3)); // independent
        let without_dep = t2.total_cycles();
        assert!(
            with_dep >= without_dep,
            "dependent MAC cannot finish before independent one ({with_dep} vs {without_dep})"
        );
    }

    #[test]
    fn indexmac_waits_for_indirect_source() {
        let mut t = InOrderScoreboard::new(cfg());
        // Load into v20, then vindexmac reading v20 indirectly.
        t.observe(&vload_ev(VReg::new(20), 0x0));
        let loaded_at = t.total_cycles();
        let imac = ExecEvent {
            pc: 1,
            instr: Instruction::VindexmacVx {
                vd: VReg::V1,
                vs2: VReg::V2,
                rs: XReg::T0,
            },
            mem: None,
            indirect_vreg: Some(VReg::new(20)),
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&imac);
        assert!(
            t.total_cycles() >= loaded_at,
            "vindexmac must wait for the loaded tile"
        );
        assert_eq!(t.counts().get(InstrClass::VIndexMac), 1);
    }

    #[test]
    fn v2s_move_couples_clocks() {
        let mut t = InOrderScoreboard::new(cfg());
        let mv = ExecEvent {
            pc: 0,
            instr: Instruction::VmvXs {
                rd: XReg::T0,
                vs2: VReg::V1,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&mv);
        let sync = t.total_cycles();
        assert!(sync >= cfg().v2s_latency);
        // A scalar consumer of t0 waits for the transfer.
        t.observe(&alu_ev(XReg::T1, XReg::T0));
        assert!(t.total_cycles() > sync);
        assert_eq!(t.v2s_syncs(), 1);
    }

    #[test]
    fn load_queue_caps_outstanding_loads() {
        let mut t = InOrderScoreboard::new(cfg());
        // Far more loads than queue entries, all to distinct cold lines.
        for i in 0..64 {
            t.observe(&vload_ev(VReg::new((i % 8) as u8), (i as u64) * 4096));
        }
        // With 16 entries and ~90-cycle DRAM, 64 cold loads cannot all
        // overlap: total must exceed a single miss by a lot.
        assert!(t.total_cycles() > 200, "got {}", t.total_cycles());
    }

    #[test]
    fn engine_in_order_even_when_independent() {
        let mut t = InOrderScoreboard::new(cfg());
        t.observe(&vmac_ev(VReg::V1, VReg::V2));
        let one = t.engine_busy_cycles();
        t.observe(&vmac_ev(VReg::V3, VReg::V4));
        assert_eq!(t.engine_busy_cycles(), one * 2);
    }

    #[test]
    fn eliminating_the_load_is_faster() {
        // Micro-version of the paper's claim: (load+mac) vs indexmac.
        let mut with_load = InOrderScoreboard::new(cfg());
        let mut without = InOrderScoreboard::new(cfg());
        // Warm the line so the comparison is an L2-hit comparison.
        with_load.observe(&vload_ev(VReg::V8, 0x100000));
        without.observe(&vload_ev(VReg::V8, 0x100000));
        let w0 = with_load.total_cycles();
        let n0 = without.total_cycles();
        assert_eq!(w0, n0);
        for i in 0..32 {
            with_load.observe(&vload_ev(VReg::V5, 0x100000));
            with_load.observe(&vmac_ev(VReg::new((i % 4) as u8), VReg::V5));

            let imac = ExecEvent {
                pc: 0,
                instr: Instruction::VindexmacVx {
                    vd: VReg::new((i % 4) as u8),
                    vs2: VReg::V6,
                    rs: XReg::T0,
                },
                mem: None,
                indirect_vreg: Some(VReg::V8),
                branch_taken: false,
                vl: 16,
                sew: indexmac_isa::Sew::E32,
            };
            without.observe(&imac);
        }
        assert!(
            with_load.total_cycles() > without.total_cycles(),
            "load+mac {} should exceed indexmac {}",
            with_load.total_cycles(),
            without.total_cycles()
        );
        assert!(with_load.mem_stats().vector_loads > without.mem_stats().vector_loads);
    }

    #[test]
    fn class_counts_accumulate() {
        let mut t = InOrderScoreboard::new(cfg());
        t.observe(&alu_ev(XReg::T0, XReg::ZERO));
        t.observe(&vload_ev(VReg::V1, 0));
        t.observe(&vmac_ev(VReg::V2, VReg::V1));
        let c = t.counts();
        assert_eq!(c.total(), 3);
        assert_eq!(c.vector_total(), 2);
        assert_eq!(c.get(InstrClass::ScalarAlu), 1);
        assert_eq!(c.get(InstrClass::VLoad), 1);
        assert_eq!(c.get(InstrClass::VMac), 1);
    }

    /// Regression for the scattered `vdispatched_in_cycle` resets and
    /// the ROB-stall/issue-clock split: with a 2-entry window, a slow
    /// cold scalar load followed by vector work forces a ROB-full stall;
    /// the stall cycles charged must equal the issue-clock jump, and a
    /// vector dispatch landing in the *new* cycle must see a fresh
    /// dispatch budget (not be throttled by a stale per-cycle counter
    /// from before the stall).
    #[test]
    fn rob_stall_advances_clock_and_reopens_vector_dispatch_budget() {
        let mut c = cfg();
        c.rob_entries = 2;
        let mut t = InOrderScoreboard::new(c);

        // 1) Cold scalar load: retires only when DRAM answers.
        t.observe(&ExecEvent {
            pc: 0,
            instr: Instruction::Lw {
                rd: XReg::T0,
                rs1: XReg::A0,
                imm: 0,
            },
            mem: Some(MemOp {
                addr: 0x4000,
                bytes: 4,
                write: false,
                vector: false,
            }),
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        });
        let load_done = t.total_cycles();
        assert!(load_done > 10, "cold load reaches DRAM (got {load_done})");
        assert_eq!(t.rob_stall_cycles(), 0);

        // 2) One vector op fills the window (and consumes the cycle's
        // single vector-dispatch slot at cycle 0).
        t.observe(&vmac_ev(VReg::V1, VReg::V2));
        assert_eq!(t.rob_stall_cycles(), 0);

        // 3) The next vector op finds the window full; the oldest entry
        // (the load) retires at `load_done`, so issue jumps there.
        let timing = t.observe(&vmac_ev(VReg::V4, VReg::V5));
        assert_eq!(
            t.rob_stall_cycles(),
            load_done,
            "stall cycles must equal the issue-clock jump from 0"
        );
        // The jump landed in a fresh cycle: the vector op dispatches at
        // exactly the retire cycle, not one later — a stale
        // `vdispatched_in_cycle` from cycle 0 would have throttled it.
        assert_eq!(
            timing.issue_at, load_done,
            "vector dispatch in the new cycle must not be throttled"
        );
    }
}
