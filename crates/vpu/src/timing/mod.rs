//! Cycle-approximate timing models of the decoupled vector processor.
//!
//! Timing is pluggable behind the [`TimingModel`] trait: every backend
//! consumes the dynamic instruction stream one [`ExecEvent`] at a time
//! (O(1) state per instruction, no global event queue) and accumulates
//! the counters [`crate::RunReport`] is built from. Three backends
//! ship, selected by [`crate::config::TimingKind`] in
//! [`SimConfig::timing`]:
//!
//! * [`InOrderScoreboard`] — the original model: in-order issue at
//!   `issue_width` per cycle, a reorder-buffer window that gates issue
//!   when full, a register scoreboard, taken-branch redirect penalty;
//! * [`Pipelined`] — an explicit fetch/decode/issue/execute/writeback
//!   pipeline with per-stage hazard stalls ([`PipeStalls`]);
//! * [`OutOfOrder`] — a scalar core that dispatches in order but
//!   executes out of order through a ROB, reservation stations, a
//!   register alias table and a scalar load/store queue.
//!
//! All three share one [`vector::VectorSide`] — the decoupled vector
//! engine with its bounded instruction queue, per-`VReg` ready times,
//! lane occupancy `ceil(vl/lanes)` and load/store queues directly into
//! L2 — so dynamic instruction counts and memory traffic are identical
//! across backends by construction; only scalar-side cycle accounting
//! differs. The cross-domain `vmv.x.s`/`vfmv.f.s` synchronisation cost
//! (the coupling the paper's `vx` kernel pays per non-zero) is therefore
//! charged consistently everywhere.

mod inorder;
mod ooo;
mod pipelined;
mod vector;

pub use inorder::InOrderScoreboard;
pub use ooo::OutOfOrder;
pub use pipelined::{PipeStalls, Pipelined};

use crate::config::{SimConfig, TimingKind};
use crate::engine::Observer;
use crate::exec::ExecEvent;
use indexmac_isa::InstrClass;
use indexmac_mem::{MemStats, MemoryHierarchy};
use std::collections::VecDeque;

/// Bounded-completion-queue admission, shared by the decoupling queue
/// and the vector/scalar load-store queues: drains entries that
/// completed at or before `at`; when the queue still sits at `cap`,
/// pops the oldest entry and returns its completion time — the cycle a
/// new entry must wait for.
fn vecdeque_window(q: &mut VecDeque<u64>, cap: usize, at: u64) -> Option<u64> {
    while let Some(&c) = q.front() {
        if c <= at {
            q.pop_front();
        } else {
            break;
        }
    }
    if q.len() >= cap {
        Some(q.pop_front().expect("bounded queue non-empty at capacity"))
    } else {
        None
    }
}

/// Per-class dynamic instruction counts, indexed by
/// [`InstrClass::index`] and sized by [`InstrClass::COUNT`] — adding an
/// instruction class without extending `InstrClass::ALL` is a compile
/// error, so the table cannot silently drop a class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts([u64; InstrClass::COUNT]);

impl ClassCounts {
    /// Count of one class.
    pub fn get(&self, c: InstrClass) -> u64 {
        self.0[c.index()]
    }

    fn bump(&mut self, c: InstrClass) {
        self.0[c.index()] += 1;
    }

    /// Overwrites the count of one class (store-record decode path:
    /// persisted reports are reconstructed field by field).
    pub fn set(&mut self, c: InstrClass, count: u64) {
        self.0[c.index()] = count;
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Total vector-engine instructions.
    pub fn vector_total(&self) -> u64 {
        InstrClass::ALL
            .iter()
            .filter(|c| c.is_vector() && **c != InstrClass::VConfig)
            .map(|c| self.get(*c))
            .sum()
    }
}

/// Per-instruction timing record returned by [`TimingModel::observe`],
/// consumed by the pipeline tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrTiming {
    /// Cycle the scalar core issued (or dispatched) the instruction.
    pub issue_at: u64,
    /// Cycle execution began (engine start for vector instructions; at
    /// or after `issue_at` on the scalar side).
    pub start: u64,
    /// Cycle the result became architecturally available.
    pub completion: u64,
}

/// A pluggable cycle-accounting backend.
///
/// Implementations consume the dynamic instruction stream event by
/// event and expose the accumulated counters. Invariants every backend
/// upholds (pinned by `tests/prop_backends.rs`):
///
/// * each record satisfies `completion >= start >= issue_at`;
/// * [`TimingModel::total_cycles`] is monotone non-decreasing across
///   observations;
/// * [`TimingModel::engine_busy_cycles`] never exceeds total cycles;
/// * [`TimingModel::counts`] depends only on the event stream, never on
///   the backend — instruction counts are bit-identical across backends.
pub trait TimingModel {
    /// Accounts one dynamic instruction, returning its timing record.
    fn observe(&mut self, ev: &ExecEvent) -> InstrTiming;

    /// The configuration in use.
    fn config(&self) -> &SimConfig;

    /// The memory hierarchy (cache hit/miss counters etc.).
    fn hierarchy(&self) -> &MemoryHierarchy;

    /// Memory-traffic counters collected so far.
    fn mem_stats(&self) -> MemStats {
        self.hierarchy().stats()
    }

    /// Per-class dynamic instruction counts.
    fn counts(&self) -> ClassCounts;

    /// Cycles the vector engine spent occupied.
    fn engine_busy_cycles(&self) -> u64;

    /// Cycles the scalar core stalled on a full vector queue.
    fn vq_stall_cycles(&self) -> u64;

    /// Cycles the scalar core stalled on a full ROB (in-flight window).
    fn rob_stall_cycles(&self) -> u64;

    /// Number of vector-to-scalar synchronisations observed.
    fn v2s_syncs(&self) -> u64;

    /// Total cycles: every component drained.
    fn total_cycles(&self) -> u64;
}

/// The backend-dispatching [`TimingModel`]: holds whichever concrete
/// backend [`SimConfig::timing`] selects. Enum dispatch (rather than a
/// trait object) keeps the observer `Clone` and lets the engine loop
/// monomorphize over a sized type.
#[derive(Debug, Clone)]
pub enum AnyTimingModel {
    /// [`TimingKind::InOrder`].
    InOrder(InOrderScoreboard),
    /// [`TimingKind::Pipelined`].
    Pipelined(Pipelined),
    /// [`TimingKind::OutOfOrder`].
    OutOfOrder(OutOfOrder),
}

impl AnyTimingModel {
    /// Builds the backend `cfg.timing` selects (cold caches, empty
    /// queues).
    pub fn new(cfg: SimConfig) -> Self {
        match cfg.timing {
            TimingKind::InOrder => AnyTimingModel::InOrder(InOrderScoreboard::new(cfg)),
            TimingKind::Pipelined => AnyTimingModel::Pipelined(Pipelined::new(cfg)),
            TimingKind::OutOfOrder => AnyTimingModel::OutOfOrder(OutOfOrder::new(cfg)),
        }
    }

    /// Which backend is active.
    pub fn kind(&self) -> TimingKind {
        match self {
            AnyTimingModel::InOrder(_) => TimingKind::InOrder,
            AnyTimingModel::Pipelined(_) => TimingKind::Pipelined,
            AnyTimingModel::OutOfOrder(_) => TimingKind::OutOfOrder,
        }
    }
}

macro_rules! for_backend {
    ($self:expr, $m:ident $(, $arg:expr)*) => {
        match $self {
            AnyTimingModel::InOrder(t) => t.$m($($arg),*),
            AnyTimingModel::Pipelined(t) => t.$m($($arg),*),
            AnyTimingModel::OutOfOrder(t) => t.$m($($arg),*),
        }
    };
}

impl TimingModel for AnyTimingModel {
    fn observe(&mut self, ev: &ExecEvent) -> InstrTiming {
        for_backend!(self, observe, ev)
    }

    fn config(&self) -> &SimConfig {
        for_backend!(self, config)
    }

    fn hierarchy(&self) -> &MemoryHierarchy {
        for_backend!(self, hierarchy)
    }

    fn counts(&self) -> ClassCounts {
        for_backend!(self, counts)
    }

    fn engine_busy_cycles(&self) -> u64 {
        for_backend!(self, engine_busy_cycles)
    }

    fn vq_stall_cycles(&self) -> u64 {
        for_backend!(self, vq_stall_cycles)
    }

    fn rob_stall_cycles(&self) -> u64 {
        for_backend!(self, rob_stall_cycles)
    }

    fn v2s_syncs(&self) -> u64 {
        for_backend!(self, v2s_syncs)
    }

    fn total_cycles(&self) -> u64 {
        for_backend!(self, total_cycles)
    }
}

/// The timing-path [`Observer`]: feeds every event to the backend
/// [`SimConfig::timing`] selects and hands the drained model back for
/// report collection. This is what `Simulator::run` monomorphizes the
/// engine loop over.
#[derive(Debug, Clone)]
pub struct TimingObserver {
    model: AnyTimingModel,
}

impl TimingObserver {
    /// A fresh observer over a cold backend for `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            model: AnyTimingModel::new(cfg),
        }
    }

    /// The accumulated timing model.
    pub fn model(&self) -> &AnyTimingModel {
        &self.model
    }
}

impl Observer for TimingObserver {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        self.model.observe(ev);
    }
}

/// A timing-free, **composable** [`Observer`]: per-class instruction
/// counts, program-issued memory traffic and vector→scalar syncs —
/// exactly the [`crate::RunReport`] fields that depend only on the
/// event stream, never on sequential model state.
///
/// Unlike the timing backends it carries no caches or queues, so
/// per-shard instances [`CountingObserver::merge`] into precisely the
/// whole-run counts regardless of where the run was split — the
/// property sharded execution (`crate::shard`) is built on. Cycle
/// counts and cache hit rates are inherently sequential and therefore
/// absent: [`CountingObserver::into_report`] leaves them zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingObserver {
    counts: ClassCounts,
    mem: MemStats,
    v2s: u64,
}

impl CountingObserver {
    /// Per-class dynamic instruction counts so far.
    pub fn counts(&self) -> ClassCounts {
        self.counts
    }

    /// Program-issued memory traffic so far (one count per access, the
    /// same accounting the memory hierarchy applies; the DRAM fields
    /// stay zero — line traffic is cache-model state).
    pub fn mem_stats(&self) -> MemStats {
        self.mem
    }

    /// Vector→scalar synchronisations observed.
    pub fn v2s_syncs(&self) -> u64 {
        self.v2s
    }

    /// Accumulates another (later) shard's counts into this one.
    pub fn merge(&mut self, other: &CountingObserver) {
        for (i, v) in other.counts.0.iter().enumerate() {
            self.counts.0[i] += v;
        }
        self.mem = self.mem.merged(&other.mem);
        self.v2s += other.v2s;
    }

    /// Builds the counting-flavoured [`crate::RunReport`]: instruction
    /// counts and program-issued traffic filled in, every sequential
    /// metric (cycles, stalls, hit rates, DRAM lines) zero.
    pub fn into_report(self, instructions: u64) -> crate::RunReport {
        crate::RunReport {
            cycles: 0,
            instructions,
            counts: self.counts,
            mem: self.mem,
            l1d_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            engine_busy_cycles: 0,
            vq_stall_cycles: 0,
            rob_stall_cycles: 0,
            v2s_syncs: self.v2s,
        }
    }
}

impl Observer for CountingObserver {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        let class = ev.instr.class();
        self.counts.bump(class);
        if class == InstrClass::VMvToScalar {
            self.v2s += 1;
        }
        if let Some(op) = ev.mem {
            match (op.vector, op.write) {
                (false, false) => self.mem.scalar_loads += 1,
                (false, true) => self.mem.scalar_stores += 1,
                (true, false) => self.mem.vector_loads += 1,
                (true, true) => self.mem.vector_stores += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_isa::{Instruction, XReg};

    fn alu_ev(rd: XReg, rs1: XReg) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Addi { rd, rs1, imm: 1 },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    #[test]
    fn any_model_selects_backend_from_config() {
        for kind in TimingKind::ALL {
            let cfg = SimConfig::table_i().with_timing(kind);
            let m = AnyTimingModel::new(cfg);
            assert_eq!(m.kind(), kind);
            assert_eq!(m.config().timing, kind);
        }
    }

    #[test]
    fn counts_are_backend_independent() {
        let mut models: Vec<AnyTimingModel> = TimingKind::ALL
            .iter()
            .map(|&k| AnyTimingModel::new(SimConfig::table_i().with_timing(k)))
            .collect();
        for i in 0..20 {
            let ev = alu_ev(XReg::new(1 + (i % 8)), XReg::ZERO);
            for m in &mut models {
                m.observe(&ev);
            }
        }
        for m in &models {
            assert_eq!(m.counts().total(), 20);
            assert_eq!(m.counts().get(InstrClass::ScalarAlu), 20);
        }
    }

    #[test]
    fn class_counts_table_covers_every_class() {
        let mut c = ClassCounts::default();
        for class in InstrClass::ALL {
            c.bump(class);
        }
        assert_eq!(c.total(), InstrClass::COUNT as u64);
        for class in InstrClass::ALL {
            assert_eq!(c.get(class), 1, "{class:?} lost its count");
        }
        // vsetvli resolves scalar-side; everything else vector is engine
        // work.
        assert_eq!(c.vector_total(), 8);
    }
}
