//! The out-of-order scalar core: in-order dispatch, out-of-order
//! execution, in-order retirement.
//!
//! Built from the standard microarchitectural structures (the
//! `/root/related` exemplar repo for this backend was absent, so the
//! implementation follows the textbook organisation):
//!
//! * a **register alias table** ([`Rat`]) tracking the ready time of
//!   each architectural register's *youngest* definition — renaming
//!   eliminates WAW/WAR hazards by construction (a new definition
//!   simply replaces the alias), leaving only true RAW dependences
//!   visible to the scheduler;
//! * **reservation stations** ([`ReservationStations`]) where scalar
//!   instructions wait for operands without blocking younger dispatch;
//! * a **reorder buffer** ([`Rob`]) enforcing in-order retirement
//!   (retire times are the running prefix-max of completions) and
//!   stalling dispatch when full;
//! * a scalar **load/store queue** ([`LoadStoreQueue`]) with
//!   conservative memory disambiguation — a load waits for the youngest
//!   older store whose byte range overlaps; stores commit in order.
//!
//! The decoupled vector engine stays exactly as in the other backends
//! (shared [`VectorSide`]): vector instructions hand over *in program
//! order* once their scalar operands are ready, and the engine executes
//! in order behind the decoupling queue. Scalar instructions, however,
//! are free to execute around outstanding vector latency — which is
//! what the follow-up paper predicts should widen `vvi`'s lead over
//! `vx`: `vx` pays a [`V2S_COMMIT_EXTRA`]-inflated cross-domain
//! round-trip per non-zero that no amount of scalar reordering hides,
//! while `vvi` has no scalar coupling to reorder around.

use super::vector::VectorSide;
use super::{ClassCounts, InstrTiming, TimingModel};
use crate::config::SimConfig;
use crate::exec::ExecEvent;
use indexmac_isa::{InstrClass, Instruction};
use indexmac_mem::MemoryHierarchy;
use std::collections::VecDeque;

/// Extra cycles a vector→scalar transfer (`vmv.x.s`) takes to become
/// visible to the out-of-order scheduler: cross-domain results are not
/// wired into the scalar bypass network and commit through the ROB.
pub const V2S_COMMIT_EXTRA: u64 = 2;

/// Register alias table: the ready time of each architectural
/// register's youngest definition.
#[derive(Debug, Clone)]
struct Rat {
    x: [u64; 32],
    f: [u64; 32],
}

impl Rat {
    fn new() -> Self {
        Self {
            x: [0; 32],
            f: [0; 32],
        }
    }

    /// Latest ready time across the event's scalar sources (RAW only).
    fn sources_ready(&self, ev: &ExecEvent) -> u64 {
        let mut ready = 0u64;
        for src in ev.instr.x_srcs().into_iter().flatten() {
            ready = ready.max(self.x[src.index() as usize]);
        }
        if let Some(fsrc) = ev.instr.f_src() {
            ready = ready.max(self.f[fsrc.index() as usize]);
        }
        ready
    }

    /// Renames the event's destinations to a definition ready at `at`.
    fn define(&mut self, ev: &ExecEvent, at: u64) {
        if let Some(rd) = ev.instr.x_dst() {
            self.x[rd.index() as usize] = at;
        }
        if let Some(fd) = ev.instr.f_dst() {
            self.f[fd.index() as usize] = at;
        }
    }
}

/// Reorder buffer: per-entry *retire* times in program order (the
/// prefix-max of completion times, since retirement is in order).
/// Dispatch blocks when full until the oldest entry retires.
#[derive(Debug, Clone)]
struct Rob {
    retire_times: VecDeque<u64>,
    cap: usize,
    last_retire: u64,
}

impl Rob {
    fn new(cap: usize) -> Self {
        Self {
            retire_times: VecDeque::with_capacity(cap),
            cap,
            last_retire: 0,
        }
    }

    /// Frees one slot for a dispatch at `at`, returning the (possibly
    /// later) cycle the slot is actually available.
    fn admit(&mut self, at: u64) -> u64 {
        // Entries already retired by `at` have freed their slots.
        while self.retire_times.front().is_some_and(|&r| r <= at) {
            self.retire_times.pop_front();
        }
        if self.retire_times.len() >= self.cap {
            let r = self.retire_times.pop_front().expect("rob non-empty");
            at.max(r)
        } else {
            at
        }
    }

    fn push(&mut self, completion: u64) {
        let retire = completion.max(self.last_retire);
        self.last_retire = retire;
        self.retire_times.push_back(retire);
    }
}

/// Reservation stations: a scalar instruction occupies an entry from
/// dispatch until it begins execution; a full pool stalls dispatch.
#[derive(Debug, Clone)]
struct ReservationStations {
    /// Per-entry cycle the occupying instruction starts executing.
    busy_until: Vec<u64>,
}

impl ReservationStations {
    fn new(cap: usize) -> Self {
        Self {
            busy_until: vec![0; cap.max(1)],
        }
    }

    /// Claims an entry for a dispatch at `at`: a free entry keeps the
    /// dispatch cycle; a full pool delays it to the earliest issue.
    fn acquire(&mut self, at: u64) -> (usize, u64) {
        if let Some(i) = self.busy_until.iter().position(|&b| b <= at) {
            return (i, at);
        }
        let (i, &soonest) = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|&(_, b)| b)
            .expect("reservation stations non-empty");
        (i, soonest)
    }

    fn occupy(&mut self, slot: usize, until: u64) {
        self.busy_until[slot] = until;
    }
}

/// One in-flight scalar memory operation.
#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    addr: u64,
    bytes: u64,
    complete: u64,
    is_store: bool,
}

/// Scalar load/store queue with conservative disambiguation.
#[derive(Debug, Clone)]
struct LoadStoreQueue {
    entries: VecDeque<LsqEntry>,
    cap: usize,
    /// Commit cycle of the youngest store (stores commit in order).
    last_store_commit: u64,
}

impl LoadStoreQueue {
    fn new(cap: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(cap),
            cap,
            last_store_commit: 0,
        }
    }

    /// Frees one slot for a dispatch at `at`, returning the (possibly
    /// later) cycle the slot is actually available.
    fn admit(&mut self, at: u64) -> u64 {
        while self.entries.front().is_some_and(|e| e.complete <= at) {
            self.entries.pop_front();
        }
        if self.entries.len() >= self.cap {
            let e = self.entries.pop_front().expect("lsq non-empty");
            at.max(e.complete)
        } else {
            at
        }
    }

    /// Completion cycle of the youngest older store whose byte range
    /// overlaps `[addr, addr + bytes)` — the cycle a load must wait for
    /// (no speculative disambiguation).
    fn older_store_conflict(&self, addr: u64, bytes: u64) -> u64 {
        self.entries
            .iter()
            .rev()
            .find(|e| e.is_store && e.addr < addr + bytes && addr < e.addr + e.bytes)
            .map_or(0, |e| e.complete)
    }

    fn push(&mut self, entry: LsqEntry) {
        self.entries.push_back(entry);
    }
}

/// The out-of-order backend.
#[derive(Debug, Clone)]
pub struct OutOfOrder {
    cfg: SimConfig,
    hier: MemoryHierarchy,

    // In-order front end (fetch/rename/dispatch).
    dispatch_cycle: u64,
    dispatched_in_cycle: u32,
    vdispatched_in_cycle: u32,

    // Out-of-order machinery.
    rat: Rat,
    rob: Rob,
    rs: ReservationStations,
    lsq: LoadStoreQueue,

    // Vector engine: in-order hand-over into the shared decoupled side.
    last_vq_hand: u64,
    vec: VectorSide,

    // Counters.
    counts: ClassCounts,
    rob_stall_cycles: u64,
    last_completion: u64,
}

impl OutOfOrder {
    /// Builds a fresh model for `cfg` (cold caches, empty structures).
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            cfg,
            hier: MemoryHierarchy::new(cfg.hierarchy),
            dispatch_cycle: 0,
            dispatched_in_cycle: 0,
            vdispatched_in_cycle: 0,
            rat: Rat::new(),
            rob: Rob::new(cfg.rob_entries),
            rs: ReservationStations::new(cfg.rs_entries),
            lsq: LoadStoreQueue::new(cfg.lsq_entries),
            last_vq_hand: 0,
            vec: VectorSide::new(cfg),
            counts: ClassCounts::default(),
            rob_stall_cycles: 0,
            last_completion: 0,
        }
    }

    /// Single cycle-advance point of the dispatch stage: the per-cycle
    /// dispatch and vector-hand-over budgets always reopen together
    /// with the clock (same discipline as the in-order backends).
    fn advance_dispatch(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.dispatch_cycle, "dispatch clock runs forward");
        self.dispatch_cycle = cycle;
        self.dispatched_in_cycle = 0;
        self.vdispatched_in_cycle = 0;
    }

    fn note_completion(&mut self, c: u64) {
        if c > self.last_completion {
            self.last_completion = c;
        }
    }
}

impl TimingModel for OutOfOrder {
    fn observe(&mut self, ev: &ExecEvent) -> InstrTiming {
        let class = ev.instr.class();
        self.counts.bump(class);
        let engine_vector = class.is_vector() && class != InstrClass::VConfig;

        // ---- in-order dispatch: width, then a ROB slot ----
        if self.dispatched_in_cycle >= self.cfg.issue_width
            || (engine_vector && self.vdispatched_in_cycle >= self.cfg.vdispatch_per_cycle)
        {
            self.advance_dispatch(self.dispatch_cycle + 1);
        }
        let mut dispatch = self.dispatch_cycle;
        let slot_at = self.rob.admit(dispatch);
        if slot_at > dispatch {
            // Charge the stall and advance the dispatch clock on the
            // same path (the invariant the in-order backend pins).
            self.rob_stall_cycles += slot_at - dispatch;
            dispatch = slot_at;
            self.advance_dispatch(slot_at);
        }

        let ready = self.rat.sources_ready(ev);

        // ---- execute out of order (scalar) / hand over (vector) ----
        let (start, rob_completion, result_at) = if engine_vector {
            // Vector instructions enter the decoupling queue in program
            // order, carrying their scalar operand values — the
            // hand-over waits for RAW readiness but does NOT block
            // younger scalar dispatch.
            let hand = dispatch.max(ready).max(self.last_vq_hand);
            let out = self.vec.run(&mut self.hier, ev, class, hand);
            self.last_vq_hand = out.dispatch;
            if out.dispatch > self.dispatch_cycle {
                // A full decoupling queue does block the front end.
                self.advance_dispatch(out.dispatch);
                dispatch = out.dispatch;
            }
            if let Some((rd, at)) = out.x_write {
                self.rat.x[rd.index() as usize] = at + V2S_COMMIT_EXTRA;
            }
            if let Some((fd, at)) = out.f_write {
                self.rat.f[fd.index() as usize] = at + V2S_COMMIT_EXTRA;
            }
            self.note_completion(out.result_at);
            (out.start, out.rob_completion, out.result_at)
        } else {
            match class {
                InstrClass::ScalarAlu | InstrClass::System | InstrClass::VConfig => {
                    let (slot, at) = self.rs.acquire(dispatch);
                    if at > dispatch {
                        dispatch = at;
                        self.advance_dispatch(at);
                    }
                    let start = dispatch.max(ready);
                    self.rs.occupy(slot, start);
                    let lat = if matches!(ev.instr, Instruction::Mul { .. }) {
                        self.cfg.mul_latency
                    } else if class == InstrClass::ScalarAlu {
                        self.cfg.alu_latency
                    } else {
                        1
                    };
                    let completion = start + lat;
                    self.rat.define(ev, completion);
                    (start, completion, completion)
                }
                InstrClass::ScalarLoad => {
                    let (slot, at) = self.rs.acquire(dispatch);
                    if at > dispatch {
                        dispatch = at;
                        self.advance_dispatch(at);
                    }
                    let at = self.lsq.admit(dispatch);
                    if at > dispatch {
                        dispatch = at;
                        self.advance_dispatch(at);
                    }
                    let m = ev.mem.expect("scalar load carries a memory op");
                    let start = dispatch
                        .max(ready)
                        .max(self.lsq.older_store_conflict(m.addr, m.bytes));
                    self.rs.occupy(slot, start);
                    let lat = self.hier.scalar_read(m.addr, m.bytes, start);
                    let completion = start + lat;
                    self.lsq.push(LsqEntry {
                        addr: m.addr,
                        bytes: m.bytes,
                        complete: completion,
                        is_store: false,
                    });
                    self.rat.define(ev, completion);
                    (start, completion, completion)
                }
                InstrClass::ScalarStore => {
                    let at = self.lsq.admit(dispatch);
                    if at > dispatch {
                        dispatch = at;
                        self.advance_dispatch(at);
                    }
                    let m = ev.mem.expect("scalar store carries a memory op");
                    // Stores commit in order, once address and data are
                    // ready.
                    let start = dispatch.max(ready).max(self.lsq.last_store_commit);
                    let _drain = self.hier.scalar_write(m.addr, m.bytes, start);
                    let commit = start + 1;
                    self.lsq.last_store_commit = commit;
                    self.lsq.push(LsqEntry {
                        addr: m.addr,
                        bytes: m.bytes,
                        complete: commit,
                        is_store: true,
                    });
                    (start, commit, commit)
                }
                InstrClass::ControlFlow => {
                    let (slot, at) = self.rs.acquire(dispatch);
                    if at > dispatch {
                        dispatch = at;
                        self.advance_dispatch(at);
                    }
                    let start = dispatch.max(ready);
                    self.rs.occupy(slot, start);
                    let resolve = start + 1;
                    if ev.branch_taken {
                        // The redirect restarts the front end after the
                        // branch resolves plus the refill penalty.
                        self.advance_dispatch(resolve + self.cfg.branch_taken_penalty);
                    }
                    (start, resolve, resolve)
                }
                _ => unreachable!("vector class routed to the scalar side"),
            }
        };

        self.dispatched_in_cycle += 1;
        if engine_vector {
            self.vdispatched_in_cycle += 1;
        }
        self.rob.push(rob_completion);
        self.note_completion(rob_completion);
        InstrTiming {
            issue_at: dispatch,
            start,
            completion: result_at,
        }
    }

    fn config(&self) -> &SimConfig {
        &self.cfg
    }

    fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hier
    }

    fn counts(&self) -> ClassCounts {
        self.counts
    }

    fn engine_busy_cycles(&self) -> u64 {
        self.vec.engine_busy()
    }

    fn vq_stall_cycles(&self) -> u64 {
        self.vec.vq_stall_cycles()
    }

    fn rob_stall_cycles(&self) -> u64 {
        self.rob_stall_cycles
    }

    fn v2s_syncs(&self) -> u64 {
        self.vec.v2s_syncs()
    }

    fn total_cycles(&self) -> u64 {
        self.dispatch_cycle
            .max(self.vec.engine_free())
            .max(self.last_completion)
    }
}

#[cfg(test)]
mod tests {
    use super::super::InOrderScoreboard;
    use super::*;
    use crate::exec::MemOp;
    use indexmac_isa::{VReg, XReg};

    fn cfg() -> SimConfig {
        SimConfig::table_i()
    }

    fn alu_ev(rd: XReg, rs1: XReg) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Addi { rd, rs1, imm: 1 },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    fn load_ev(rd: XReg, addr: u64) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Lw {
                rd,
                rs1: XReg::A0,
                imm: 0,
            },
            mem: Some(MemOp {
                addr,
                bytes: 4,
                write: false,
                vector: false,
            }),
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    fn store_ev(addr: u64) -> ExecEvent {
        ExecEvent {
            pc: 0,
            instr: Instruction::Sw {
                rs1: XReg::A0,
                rs2: XReg::T0,
                imm: 0,
            },
            mem: Some(MemOp {
                addr,
                bytes: 4,
                write: true,
                vector: false,
            }),
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        }
    }

    #[test]
    fn independent_work_hides_a_slow_load() {
        // A cold load plus a dependent consumer, followed by a stream of
        // independent ALU work: the OoO core runs the independent work
        // under the load's shadow, the in-order core single-files it
        // behind the dependent consumer.
        let mut ooo = OutOfOrder::new(cfg());
        let mut flat = InOrderScoreboard::new(cfg());
        for t in [&mut ooo as &mut dyn TimingModel, &mut flat] {
            t.observe(&load_ev(XReg::T0, 0x9000));
            t.observe(&alu_ev(XReg::T1, XReg::T0)); // dependent
            for i in 0..64 {
                t.observe(&alu_ev(XReg::new(10 + (i % 8)), XReg::ZERO));
            }
        }
        assert!(
            ooo.total_cycles() <= flat.total_cycles(),
            "ooo {} must not trail in-order {}",
            ooo.total_cycles(),
            flat.total_cycles()
        );
        assert_eq!(ooo.counts(), flat.counts(), "instret is backend-invariant");
    }

    #[test]
    fn dependent_consumer_still_waits() {
        let mut t = OutOfOrder::new(cfg());
        t.observe(&load_ev(XReg::T0, 0x9000));
        let load_done = t.total_cycles();
        assert!(load_done > 10, "cold load reaches DRAM");
        let timing = t.observe(&alu_ev(XReg::T1, XReg::T0));
        assert!(timing.start >= load_done - 1, "RAW dependence enforced");
        // But the *dispatch* of the consumer happened immediately.
        assert!(timing.issue_at <= 1);
    }

    #[test]
    fn rob_full_charges_stall_equal_to_dispatch_jump() {
        let mut c = cfg();
        c.rob_entries = 2;
        let mut t = OutOfOrder::new(c);
        t.observe(&load_ev(XReg::T0, 0x9000)); // slow oldest entry
        let load_done = t.total_cycles();
        t.observe(&alu_ev(XReg::T1, XReg::ZERO));
        assert_eq!(t.rob_stall_cycles(), 0);
        // Window full; the oldest (slow load) gates the third dispatch.
        let timing = t.observe(&alu_ev(XReg::T2, XReg::ZERO));
        assert_eq!(
            t.rob_stall_cycles(),
            timing.issue_at,
            "stall cycles equal the dispatch-clock jump from 0"
        );
        assert!(timing.issue_at >= load_done, "dispatch jumped to retire");
    }

    #[test]
    fn loads_wait_for_overlapping_older_stores_only() {
        let mut t = OutOfOrder::new(cfg());
        // The store's data (t0) comes from a cold load, so it commits
        // late; a younger overlapping load must wait for that commit
        // while a disjoint one sails past.
        t.observe(&load_ev(XReg::T0, 0xBEE_F000));
        let st = t.observe(&store_ev(0x100));
        assert!(st.completion > 10, "store data arrives from DRAM");
        let conflicting = t.observe(&load_ev(XReg::T4, 0x100));
        let disjoint = t.observe(&load_ev(XReg::T5, 0x200));
        assert!(
            conflicting.start >= st.completion,
            "overlapping load must wait for the store's commit"
        );
        assert!(
            disjoint.start < conflicting.start,
            "disjoint load must not be ordered behind the store"
        );
    }

    #[test]
    fn reservation_stations_bound_waiting_instructions() {
        let mut c = cfg();
        c.rs_entries = 2;
        c.issue_width = 8;
        let mut t = OutOfOrder::new(c);
        // One slow producer, then many dependents camped on it: with 2
        // RS entries the third dependent cannot dispatch until a
        // station frees (when the producer's value arrives).
        t.observe(&load_ev(XReg::T0, 0xA000));
        let load_done = t.total_cycles();
        let mut last = InstrTiming {
            issue_at: 0,
            start: 0,
            completion: 0,
        };
        for _ in 0..4 {
            last = t.observe(&alu_ev(XReg::T1, XReg::T0));
        }
        assert!(
            last.issue_at >= load_done - 1,
            "RS exhaustion must throttle dispatch ({} < {load_done})",
            last.issue_at
        );
    }

    #[test]
    fn taken_branch_redirects_dispatch() {
        let mut t = OutOfOrder::new(cfg());
        let br = ExecEvent {
            pc: 0,
            instr: Instruction::Bne {
                rs1: XReg::ZERO,
                rs2: XReg::T0,
                offset: -1,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: true,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        t.observe(&br);
        let next = t.observe(&alu_ev(XReg::T1, XReg::ZERO));
        assert!(
            next.issue_at > cfg().branch_taken_penalty,
            "post-redirect dispatch must pay the penalty"
        );
    }

    #[test]
    fn v2s_transfer_pays_commit_extra() {
        let mut ooo = OutOfOrder::new(cfg());
        let mut flat = InOrderScoreboard::new(cfg());
        let mv = ExecEvent {
            pc: 0,
            instr: Instruction::VmvXs {
                rd: XReg::T0,
                vs2: VReg::V1,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        let consumer = alu_ev(XReg::T1, XReg::T0);
        ooo.observe(&mv);
        flat.observe(&mv);
        let o = ooo.observe(&consumer);
        let f = flat.observe(&consumer);
        assert_eq!(ooo.v2s_syncs(), 1);
        assert_eq!(
            o.start,
            f.start + V2S_COMMIT_EXTRA,
            "cross-domain value reaches the OoO scheduler through commit"
        );
    }

    #[test]
    fn vector_hand_over_stays_in_program_order() {
        let mut t = OutOfOrder::new(cfg());
        let vmac = |vd, vs2| ExecEvent {
            pc: 0,
            instr: Instruction::VfmaccVf {
                vd,
                fs1: indexmac_isa::instr::FReg::F0,
                vs2,
            },
            mem: None,
            indirect_vreg: None,
            branch_taken: false,
            vl: 16,
            sew: indexmac_isa::Sew::E32,
        };
        let a = t.observe(&vmac(VReg::V1, VReg::V2));
        let b = t.observe(&vmac(VReg::V3, VReg::V4));
        assert!(b.start >= a.start, "engine executes in order");
        assert_eq!(t.counts().vector_total(), 2);
    }
}
