//! Static analyzer: prove µop programs fault-free before running them.
//!
//! [`analyze`] abstractly interprets an instruction stream and decides,
//! per instruction, whether any dynamic fault rule in [`crate::checks`]
//! could fire at run time: vtype dataflow (every vector µop dominated by
//! a `vsetvli` establishing a legal SEW/LMUL), register-group range and
//! widening-window alignment, `vindexmac` slot immediates vs VLMAX,
//! vector memory alignment, branch-target validity, and use-before-def.
//! Given an [`AnalysisContract`] describing a kernel's memory layout it
//! additionally bounds every unit-stride access to the layout's regions
//! and tracks *metadata classes* through registers (column-offset tables
//! and tile-register indices), which is what lets the fully dynamic
//! `vindexmac` kernels analyze clean.
//!
//! The result is a [`Vec<Diagnostic>`] (severity, confidence, pc, rule
//! id, fix hint). A program with **zero error-class diagnostics** earns
//! a [`Verified`] token, which [`crate::engine::DecodedProgram::execute_verified`]
//! trades for a check-elided hot loop — the stepwise oracle still pins
//! bit-identical results in differential tests.
//!
//! # Soundness
//!
//! The analyzer is sound with respect to the interpreter: if it reports
//! no error-class diagnostic, the stepwise oracle cannot fault on the
//! program (it may still hit an instruction-count limit, which is a
//! resource bound rather than a fault). The converse is deliberately
//! approximate: some diagnostics are [`Confidence::Unprovable`] — the
//! analyzer could not rule the fault out but also cannot prove it fires.
//! Contract-derived facts (tables hold the values the contract claims)
//! are trusted, not re-derived from memory contents; the kernel layout
//! code is responsible for honouring its own contract.

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use crate::checks::{
    check_branch_target, check_group, check_slot, check_widening_dst, group_aware, group_regs,
    widen_factor,
};
use crate::engine::DecodedProgram;
use indexmac_isa::{Instruction, Sew, VReg, VType, XReg};

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// Whether a diagnostic blocks the [`Verified`] token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A fault (or contract violation) the analyzer could not exclude;
    /// any error-class diagnostic denies verification.
    Error,
    /// A lint that cannot fault the interpreter (e.g. use-before-def of
    /// an architecturally-zero register); does not block verification.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// How certain the analyzer is that the reported condition occurs on
/// some execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// The condition definitely occurs if the instruction is reached
    /// (derived from exact constants).
    Proven,
    /// The analyzer lost precision (joined values, unknown registers)
    /// and must assume the worst; the concrete program may be fine.
    Unprovable,
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Confidence::Proven => "proven",
            Confidence::Unprovable => "unprovable",
        })
    }
}

/// Stable rule identifiers, one per legality condition the analyzer
/// checks. The `VAxxx` ids are what `indexmac-cli lint` prints and what
/// the README documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A vector µop is reachable with no dominating `vsetvli` pinning
    /// its SEW/LMUL.
    UnknownVtype,
    /// `vsetvli` selects an element width the datapath does not execute.
    UnsupportedSew,
    /// An operation's element width disagrees with the active SEW.
    IllegalSewForOp,
    /// `vl` may exceed the single-register VLMAX at an op without
    /// register-grouping semantics.
    GroupingUnsupported,
    /// A register group may run past `v31`.
    GroupOutOfRange,
    /// A widening accumulator group is misaligned or wider than `m4`.
    IllegalWidening,
    /// A `vindexmac.vvi` slot immediate may index beyond VLMAX.
    SlotOutOfRange,
    /// A vector memory access may be element-misaligned.
    UnalignedAccess,
    /// A branch target may be negative.
    PcOutOfRange,
    /// Execution may run past the last instruction without `ebreak`.
    FallsOffEnd,
    /// A unit-stride access may leave the contract's memory regions.
    OutOfBoundsAccess,
    /// A widening accumulator window may alias one of its sources.
    WideningOverlap,
    /// A register is read before any instruction defines it.
    UseBeforeDef,
}

impl Rule {
    /// Every rule, in id order (for documentation and tests).
    pub const ALL: [Rule; 13] = [
        Rule::UnknownVtype,
        Rule::UnsupportedSew,
        Rule::IllegalSewForOp,
        Rule::GroupingUnsupported,
        Rule::GroupOutOfRange,
        Rule::IllegalWidening,
        Rule::SlotOutOfRange,
        Rule::UnalignedAccess,
        Rule::PcOutOfRange,
        Rule::FallsOffEnd,
        Rule::OutOfBoundsAccess,
        Rule::WideningOverlap,
        Rule::UseBeforeDef,
    ];

    /// The stable `VAxxx` identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnknownVtype => "VA001",
            Rule::UnsupportedSew => "VA002",
            Rule::IllegalSewForOp => "VA003",
            Rule::GroupingUnsupported => "VA004",
            Rule::GroupOutOfRange => "VA005",
            Rule::IllegalWidening => "VA006",
            Rule::SlotOutOfRange => "VA007",
            Rule::UnalignedAccess => "VA008",
            Rule::PcOutOfRange => "VA009",
            Rule::FallsOffEnd => "VA010",
            Rule::OutOfBoundsAccess => "VA011",
            Rule::WideningOverlap => "VA012",
            Rule::UseBeforeDef => "VA013",
        }
    }

    /// A one-line fix suggestion attached to every diagnostic.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::UnknownVtype => {
                "insert a vsetvli with explicit SEW/LMUL on every path to this instruction"
            }
            Rule::UnsupportedSew => "the datapath executes e8/e16/e32 only; pick a narrower SEW",
            Rule::IllegalSewForOp => {
                "re-issue vsetvli so the active SEW matches this operation's element width"
            }
            Rule::GroupingUnsupported => {
                "this op has single-register semantics; keep vl <= VLMAX or use a group-aware op"
            }
            Rule::GroupOutOfRange => {
                "choose a base register so the LMUL group fits at or below v31 \
                 (an AnalysisContract can bound indirect sources)"
            }
            Rule::IllegalWidening => {
                "align the widening accumulator base to 32/SEW and keep the group within m4"
            }
            Rule::SlotOutOfRange => {
                "slot immediates index a single metadata register; keep slot < VLMAX"
            }
            Rule::UnalignedAccess => {
                "vector accesses must be SEW-aligned; fix the base address or table stride"
            }
            Rule::PcOutOfRange => "branch targets must stay inside the program",
            Rule::FallsOffEnd => "end every path with ebreak",
            Rule::OutOfBoundsAccess => {
                "keep unit-stride accesses inside the contract's readable/writable regions"
            }
            Rule::WideningOverlap => {
                "widening accumulator windows must not alias their sources; move the destination"
            }
            Rule::UseBeforeDef => "initialize the register before its first use",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error (blocks [`Verified`]) or warning (lint only).
    pub severity: Severity,
    /// Whether the condition is proven to occur or merely not excluded.
    pub confidence: Confidence,
    /// Instruction slot the finding is anchored to.
    pub pc: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description with the concrete operands.
    pub message: String,
    /// Static fix suggestion for the rule.
    pub hint: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] pc {}: {} (hint: {})",
            self.rule.id(),
            self.severity,
            self.confidence,
            self.pc,
            self.message,
            self.hint
        )
    }
}

// ---------------------------------------------------------------------------
// Contract
// ---------------------------------------------------------------------------

/// A table of byte offsets `{ k * stride | k < count }` living in
/// `region`, e.g. a kernel layout's column-offset array. Loading from
/// inside `region` at e32 classes the destination lanes as members of
/// this set, which is how dynamically computed B-row addresses get
/// bounded statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffsetTable {
    /// Byte range holding the table (including any padding entries).
    pub region: Range<u64>,
    /// Distance in bytes between consecutive offset values.
    pub stride: u64,
    /// Number of distinct offset values (`k < count`).
    pub count: u64,
}

/// A table of vector-register indices in `[min, max]` stored at element
/// width `elem` inside `region` — the layout's column-register array.
/// Loading from it bounds the indirect source of `vindexmac`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VregTable {
    /// Byte range holding the table (including any padding entries).
    pub region: Range<u64>,
    /// Element width the indices are stored at.
    pub elem: Sew,
    /// Smallest index the table can contain.
    pub min: u8,
    /// Largest index the table can contain (inclusive).
    pub max: u8,
}

/// Layout facts a kernel builder asserts about its program's memory
/// traffic. The analyzer *trusts* these (it cannot read memory); the
/// layout code that writes the operand arrays is responsible for making
/// them true.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisContract {
    /// Bytes any vector load may touch.
    pub readable: Range<u64>,
    /// Bytes vector stores must stay within.
    pub writable: Range<u64>,
    /// Loads entirely below this address read architectural zeros (the
    /// slide-padding convention: address 0 is a legal "no data" source).
    pub zero_page: u64,
    /// The column-offset table, if the layout has one.
    pub offset_table: Option<OffsetTable>,
    /// The column-vreg-index table, if the layout has one.
    pub vreg_table: Option<VregTable>,
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// Proof that a specific program (by length) analyzed with zero
/// error-class diagnostics at a specific VLEN. Only this module can
/// mint one; [`crate::engine::DecodedProgram::execute_verified`]
/// accepts it in exchange for eliding the per-µop fault checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verified {
    program_len: usize,
    vlen_bits: usize,
}

impl Verified {
    /// Length of the instruction stream the proof covers.
    pub fn program_len(self) -> usize {
        self.program_len
    }

    /// VLEN the proof was established at (group bounds depend on it).
    pub fn vlen_bits(self) -> usize {
        self.vlen_bits
    }
}

/// The full analyzer output for one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    diagnostics: Vec<Diagnostic>,
    program_len: usize,
    vlen_bits: usize,
}

impl Analysis {
    /// All findings, ordered by pc.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether no error-class diagnostic was reported (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-class findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-class findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// The check-elision token, minted only for clean programs.
    pub fn verified(&self) -> Option<Verified> {
        if self.is_clean() {
            Some(Verified {
                program_len: self.program_len,
                vlen_bits: self.vlen_bits,
            })
        } else {
            None
        }
    }
}

/// Analyze a decoded program without layout knowledge (contract-free:
/// memory-bounds rules are skipped, metadata classes never form).
pub fn analyze(program: &DecodedProgram, vlen_bits: usize) -> Analysis {
    analyze_instructions(program.instructions(), vlen_bits, None)
}

/// Analyze a decoded program against a kernel layout contract.
pub fn analyze_with_contract(
    program: &DecodedProgram,
    vlen_bits: usize,
    contract: Option<&AnalysisContract>,
) -> Analysis {
    analyze_instructions(program.instructions(), vlen_bits, contract)
}

/// Analyze a raw instruction stream (what kernel builders call post-emit,
/// before decoding).
pub fn analyze_instructions(
    instrs: &[Instruction],
    vlen_bits: usize,
    contract: Option<&AnalysisContract>,
) -> Analysis {
    let mut az = Analyzer {
        instrs,
        vlen_bits,
        contract,
        join_pc: Vec::new(),
        states: HashMap::new(),
    };
    let diagnostics = az.run();
    Analysis {
        diagnostics,
        program_len: instrs.len(),
        vlen_bits,
    }
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Abstract scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    /// Exactly this 64-bit value.
    Const(u64),
    /// A member of `{ add + k * stride | k < count }` for the contract's
    /// offset table (plus 0 if `or_zero` — the slide-padding value).
    Offset { add: u64, or_zero: bool },
    /// A member of `[min, max]` of the contract's vreg table (plus 0 if
    /// `or_zero`).
    VregIdx { or_zero: bool },
    /// Anything.
    Any,
}

/// Abstract per-lane class of a vector register. `lanes` is how many
/// leading lanes (at the class's element width) the claim covers;
/// beyond that the content is unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VClass {
    /// Lanes hold offset-table members (`add` added on top), each
    /// possibly 0 when `or_zero`.
    Offsets {
        add: u64,
        or_zero: bool,
        lanes: usize,
    },
    /// Lanes hold vreg-table indices at width `sew`, each possibly 0.
    VregIdxs {
        sew: Sew,
        or_zero: bool,
        lanes: usize,
    },
    /// Anything.
    Any,
}

/// Abstract vtype: either exactly the given configuration or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVtype {
    Known(VType),
    Unknown,
}

/// Abstract vl. The bound is always finite because `vsetvli` clamps to
/// VLMAX and nothing else writes vl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVl {
    Const(usize),
    AtMost(usize),
}

impl AbsVl {
    fn bound(self) -> usize {
        match self {
            AbsVl::Const(c) | AbsVl::AtMost(c) => c,
        }
    }

    fn as_const(self) -> Option<usize> {
        match self {
            AbsVl::Const(c) => Some(c),
            AbsVl::AtMost(_) => None,
        }
    }
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    x: [AVal; 32],
    v: [VClass; 32],
    x_def: u32,
    f_def: u32,
    v_def: u32,
    vtype: AbsVtype,
    vl: AbsVl,
}

impl AbsState {
    /// The interpreter's reset state: all registers architecturally
    /// zero (so `x` is exactly `Const(0)`), vtype e32/m1, vl = VLMAX.
    fn entry(vlen_bits: usize) -> Self {
        AbsState {
            x: [AVal::Const(0); 32],
            v: [VClass::Any; 32],
            x_def: 1, // x0 is always defined
            f_def: 0,
            v_def: 0,
            vtype: AbsVtype::Known(VType {
                sew: Sew::E32,
                lmul: indexmac_isa::Lmul::M1,
            }),
            vl: AbsVl::Const(vlen_bits / 32),
        }
    }

    /// In-place join; returns whether `self` changed. Monotone with
    /// finite chains, so fixpoint iteration terminates.
    fn join(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let j = join_aval(self.x[i], other.x[i]);
            if j != self.x[i] {
                self.x[i] = j;
                changed = true;
            }
            let j = join_vclass(self.v[i], other.v[i]);
            if j != self.v[i] {
                self.v[i] = j;
                changed = true;
            }
        }
        let masks = [
            (&mut self.x_def, other.x_def),
            (&mut self.f_def, other.f_def),
            (&mut self.v_def, other.v_def),
        ];
        for (m, o) in masks {
            let j = *m & o;
            if j != *m {
                *m = j;
                changed = true;
            }
        }
        let jt = match (self.vtype, other.vtype) {
            (AbsVtype::Known(a), AbsVtype::Known(b)) if a == b => self.vtype,
            _ => AbsVtype::Unknown,
        };
        if jt != self.vtype {
            self.vtype = jt;
            changed = true;
        }
        let jv = match (self.vl, other.vl) {
            (AbsVl::Const(a), AbsVl::Const(b)) if a == b => self.vl,
            (a, b) => AbsVl::AtMost(a.bound().max(b.bound())),
        };
        if jv != self.vl {
            self.vl = jv;
            changed = true;
        }
        changed
    }
}

fn join_aval(a: AVal, b: AVal) -> AVal {
    match (a, b) {
        (AVal::Const(x), AVal::Const(y)) if x == y => a,
        (
            AVal::Offset {
                add: x,
                or_zero: za,
            },
            AVal::Offset {
                add: y,
                or_zero: zb,
            },
        ) if x == y => AVal::Offset {
            add: x,
            or_zero: za | zb,
        },
        (AVal::VregIdx { or_zero: za }, AVal::VregIdx { or_zero: zb }) => {
            AVal::VregIdx { or_zero: za | zb }
        }
        _ => AVal::Any,
    }
}

fn join_vclass(a: VClass, b: VClass) -> VClass {
    match (a, b) {
        (
            VClass::Offsets {
                add: x,
                or_zero: za,
                lanes: la,
            },
            VClass::Offsets {
                add: y,
                or_zero: zb,
                lanes: lb,
            },
        ) if x == y => VClass::Offsets {
            add: x,
            or_zero: za | zb,
            lanes: la.min(lb),
        },
        (
            VClass::VregIdxs {
                sew: sa,
                or_zero: za,
                lanes: la,
            },
            VClass::VregIdxs {
                sew: sb,
                or_zero: zb,
                lanes: lb,
            },
        ) if sa == sb => VClass::VregIdxs {
            sew: sa,
            or_zero: za | zb,
            lanes: la.min(lb),
        },
        _ => VClass::Any,
    }
}

/// How many registers a grouped operand spans: exact when vl and vtype
/// are exact, otherwise an upper bound (capped by the architectural
/// invariant `vl <= VLMAX * LMUL`, hence at most 4 registers).
#[derive(Debug, Clone, Copy)]
struct Groups {
    exact: Option<usize>,
    max: usize,
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Diagnostic collector for one pc. The fixpoint pass runs with a
/// disabled sink (no allocation); the report pass enables it. The first
/// error at a pc kills later findings there, so the leading diagnostic
/// names the same rule the interpreter would fault with.
struct Sink<'a> {
    out: Option<&'a mut Vec<Diagnostic>>,
    pc: usize,
    dead: bool,
}

impl<'a> Sink<'a> {
    fn disabled() -> Sink<'a> {
        Sink {
            out: None,
            pc: 0,
            dead: false,
        }
    }

    fn enabled(pc: usize, out: &'a mut Vec<Diagnostic>) -> Sink<'a> {
        Sink {
            out: Some(out),
            pc,
            dead: false,
        }
    }

    fn is_enabled(&self) -> bool {
        self.out.is_some()
    }

    fn emit(
        &mut self,
        severity: Severity,
        confidence: Confidence,
        rule: Rule,
        msg: impl FnOnce() -> String,
    ) {
        if self.dead {
            return;
        }
        if severity == Severity::Error {
            self.dead = true;
        }
        let pc = self.pc;
        if let Some(out) = self.out.as_deref_mut() {
            out.push(Diagnostic {
                severity,
                confidence,
                pc,
                rule,
                message: msg(),
                hint: rule.hint(),
            });
        }
    }
}

/// One outgoing control edge; `sure` means the edge is taken whenever
/// the instruction executes (unconditional, or a folded branch).
#[derive(Debug, Clone, Copy)]
struct Edge {
    target: i64,
    sure: bool,
}

struct Analyzer<'a> {
    instrs: &'a [Instruction],
    vlen_bits: usize,
    contract: Option<&'a AnalysisContract>,
    /// Pcs where incoming paths merge (>= 2 static predecessors or the
    /// target of a backward edge); only these store a state.
    join_pc: Vec<bool>,
    states: HashMap<usize, AbsState>,
}

impl<'a> Analyzer<'a> {
    fn run(&mut self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.instrs.is_empty() {
            out.push(Diagnostic {
                severity: Severity::Error,
                confidence: Confidence::Proven,
                pc: 0,
                rule: Rule::FallsOffEnd,
                message: "empty program: the first fetch already falls off the end".into(),
                hint: Rule::FallsOffEnd.hint(),
            });
            return out;
        }
        self.find_joins();
        self.fixpoint();
        self.report(&mut out);
        out.sort_by_key(|d| d.pc);
        out
    }

    /// Mark merge points from the *static* edge set (no folding): a pc
    /// with two or more predecessors, or the target of any backward
    /// edge (which is what makes fixpoint iteration terminate on
    /// loops). The entry pc counts one implicit predecessor.
    fn find_joins(&mut self) {
        let len = self.instrs.len();
        self.join_pc = vec![false; len];
        let mut preds = vec![0u32; len];
        preds[0] = 1;
        for (pc, instr) in self.instrs.iter().enumerate() {
            for e in self.static_edges(pc, instr).into_iter().flatten() {
                if (0..len as i64).contains(&e.target) {
                    let t = e.target as usize;
                    preds[t] = preds[t].saturating_add(1);
                    if e.target <= pc as i64 {
                        self.join_pc[t] = true;
                    }
                }
            }
        }
        for (pc, p) in preds.iter().enumerate() {
            if *p >= 2 {
                self.join_pc[pc] = true;
            }
        }
    }

    /// Outgoing edges ignoring operand values (used only for join
    /// detection, so folding would merely add storage, never miss a
    /// merge). Equal branch targets are deduplicated — the kernels'
    /// timing-only `bne` to the next instruction must not force a join
    /// at every loop step.
    fn static_edges(&self, pc: usize, instr: &Instruction) -> [Option<Edge>; 2] {
        match instr.branch_offset() {
            _ if matches!(instr, Instruction::Halt) => [None, None],
            Some(offset) => {
                let taken = Edge {
                    target: pc as i64 + offset as i64,
                    sure: false,
                };
                // A jump is unconditional; a branch whose taken target
                // *is* the fall-through has only one successor too.
                if matches!(instr, Instruction::Jal { .. }) || taken.target == pc as i64 + 1 {
                    [
                        Some(Edge {
                            sure: true,
                            ..taken
                        }),
                        None,
                    ]
                } else {
                    [
                        Some(taken),
                        Some(Edge {
                            target: pc as i64 + 1,
                            sure: false,
                        }),
                    ]
                }
            }
            None => [
                Some(Edge {
                    target: pc as i64 + 1,
                    sure: true,
                }),
                None,
            ],
        }
    }

    /// Outgoing edges with constant branch operands folded.
    fn dyn_edges(&self, pc: usize, instr: &Instruction, st: &AbsState) -> [Option<Edge>; 2] {
        use Instruction as I;
        let cond = |taken: Option<bool>, offset: i32| -> [Option<Edge>; 2] {
            let t = pc as i64 + offset as i64;
            let fall = pc as i64 + 1;
            match taken {
                Some(true) => [
                    Some(Edge {
                        target: t,
                        sure: true,
                    }),
                    None,
                ],
                Some(false) => [
                    Some(Edge {
                        target: fall,
                        sure: true,
                    }),
                    None,
                ],
                None if t == fall => [
                    Some(Edge {
                        target: fall,
                        sure: true,
                    }),
                    None,
                ],
                None => [
                    Some(Edge {
                        target: t,
                        sure: false,
                    }),
                    Some(Edge {
                        target: fall,
                        sure: false,
                    }),
                ],
            }
        };
        let fold = |rs1: XReg, rs2: XReg, f: fn(u64, u64) -> bool| -> Option<bool> {
            match (get_x(st, rs1), get_x(st, rs2)) {
                (AVal::Const(a), AVal::Const(b)) => Some(f(a, b)),
                _ => None,
            }
        };
        match *instr {
            I::Halt => [None, None],
            I::Jal { offset, .. } => [
                Some(Edge {
                    target: pc as i64 + offset as i64,
                    sure: true,
                }),
                None,
            ],
            I::Beq { rs1, rs2, offset } => cond(fold(rs1, rs2, |a, b| a == b), offset),
            I::Bne { rs1, rs2, offset } => cond(fold(rs1, rs2, |a, b| a != b), offset),
            I::Blt { rs1, rs2, offset } => {
                cond(fold(rs1, rs2, |a, b| (a as i64) < (b as i64)), offset)
            }
            I::Bge { rs1, rs2, offset } => {
                cond(fold(rs1, rs2, |a, b| (a as i64) >= (b as i64)), offset)
            }
            _ => [
                Some(Edge {
                    target: pc as i64 + 1,
                    sure: true,
                }),
                None,
            ],
        }
    }

    /// Pass 1: propagate abstract states to a fixpoint. Only join pcs
    /// store a state; straight-line runs are walked in place, so the
    /// fully unrolled kernels (no real merges) store nothing at all.
    fn fixpoint(&mut self) {
        let len = self.instrs.len();
        let mut work: Vec<(usize, AbsState)> = vec![(0, AbsState::entry(self.vlen_bits))];
        let mut sink = Sink::disabled();
        while let Some((start, start_st)) = work.pop() {
            let mut pc = start;
            let mut st = start_st;
            loop {
                if self.join_pc[pc] {
                    match self.states.get_mut(&pc) {
                        Some(stored) => {
                            if !stored.join(&st) {
                                break;
                            }
                            st = stored.clone();
                        }
                        None => {
                            self.states.insert(pc, st.clone());
                        }
                    }
                }
                let instr = self.instrs[pc];
                self.transfer(pc, &instr, &mut st, &mut sink);
                let mut next = None;
                for e in self.dyn_edges(pc, &instr, &st).into_iter().flatten() {
                    if !(0..len as i64).contains(&e.target) {
                        continue;
                    }
                    let t = e.target as usize;
                    if next.is_none() {
                        next = Some(t);
                    } else {
                        work.push((t, st.clone()));
                    }
                }
                match next {
                    Some(t) => pc = t,
                    None => break,
                }
            }
        }
    }

    /// Pass 2: re-walk every reachable pc exactly once with its
    /// fixpoint state and emit diagnostics (including edge diagnostics:
    /// negative targets and falling off the end).
    fn report(&mut self, out: &mut Vec<Diagnostic>) {
        let len = self.instrs.len();
        let mut visited = vec![false; len];
        let mut work: Vec<(usize, AbsState)> = vec![(0, AbsState::entry(self.vlen_bits))];
        while let Some((start, start_st)) = work.pop() {
            let mut pc = start;
            let mut st = start_st;
            loop {
                if visited[pc] {
                    break;
                }
                visited[pc] = true;
                if self.join_pc[pc] {
                    if let Some(stored) = self.states.get(&pc) {
                        st = stored.clone();
                    }
                }
                let instr = self.instrs[pc];
                let mut sink = Sink::enabled(pc, out);
                self.transfer(pc, &instr, &mut st, &mut sink);
                let mut next = None;
                for e in self.dyn_edges(pc, &instr, &st).into_iter().flatten() {
                    let conf = if e.sure {
                        Confidence::Proven
                    } else {
                        Confidence::Unprovable
                    };
                    if check_branch_target(e.target).is_err() {
                        let t = e.target;
                        sink.emit(Severity::Error, conf, Rule::PcOutOfRange, || {
                            format!("control transfer to negative slot {t}")
                        });
                    } else if e.target as usize >= len {
                        let t = e.target;
                        sink.emit(Severity::Error, conf, Rule::FallsOffEnd, || {
                            format!("control reaches slot {t} past the last instruction")
                        });
                    } else {
                        let t = e.target as usize;
                        if next.is_none() {
                            next = Some(t);
                        } else if !visited[t] {
                            work.push((t, st.clone()));
                        }
                    }
                }
                match next {
                    Some(t) => pc = t,
                    None => break,
                }
            }
        }
    }

    /// Single-register VLMAX lower bound for the current abstract vtype
    /// (the tightest capacity any possible SEW could have).
    fn vlmax_single_min(&self, st: &AbsState) -> usize {
        match st.vtype {
            AbsVtype::Known(vt) => self.vlen_bits / vt.sew.bits(),
            AbsVtype::Unknown => self.vlen_bits / 32,
        }
    }

    fn cur_sew(&self, st: &AbsState) -> Option<Sew> {
        match st.vtype {
            AbsVtype::Known(vt) => Some(vt.sew),
            AbsVtype::Unknown => None,
        }
    }

    /// Abstract register-group width for group-aware operands.
    fn groups(&self, st: &AbsState) -> Groups {
        match (st.vtype, st.vl) {
            (AbsVtype::Known(vt), AbsVl::Const(c)) => {
                let r = group_regs(c, self.vlen_bits / vt.sew.bits());
                Groups {
                    exact: Some(r),
                    max: r,
                }
            }
            (AbsVtype::Known(vt), AbsVl::AtMost(b)) => {
                // vl <= VLMAX*LMUL always holds concretely for the
                // current vtype, so LMUL also bounds the group.
                let m = group_regs(b, self.vlen_bits / vt.sew.bits()).min(vt.lmul.factor());
                Groups {
                    exact: (m == 1).then_some(1),
                    max: m,
                }
            }
            (AbsVtype::Unknown, vl) => {
                let m = group_regs(vl.bound(), self.vlen_bits / 32).min(4);
                Groups {
                    exact: (m == 1).then_some(1),
                    max: m,
                }
            }
        }
    }
}

fn get_x(st: &AbsState, r: XReg) -> AVal {
    if r.is_zero() {
        AVal::Const(0)
    } else {
        st.x[r.index() as usize]
    }
}

fn set_x(st: &mut AbsState, r: XReg, v: AVal) {
    if !r.is_zero() {
        st.x[r.index() as usize] = v;
        st.x_def |= 1 << r.index();
    }
}

fn aval_add(a: AVal, b: AVal) -> AVal {
    match (a, b) {
        (AVal::Const(x), AVal::Const(y)) => AVal::Const(x.wrapping_add(y)),
        (
            AVal::Offset {
                add,
                or_zero: false,
            },
            AVal::Const(c),
        )
        | (
            AVal::Const(c),
            AVal::Offset {
                add,
                or_zero: false,
            },
        ) => AVal::Offset {
            add: add.wrapping_add(c),
            or_zero: false,
        },
        _ => AVal::Any,
    }
}

fn aval_sub(a: AVal, b: AVal) -> AVal {
    match (a, b) {
        (AVal::Const(x), AVal::Const(y)) => AVal::Const(x.wrapping_sub(y)),
        (
            AVal::Offset {
                add,
                or_zero: false,
            },
            AVal::Const(c),
        ) => AVal::Offset {
            add: add.wrapping_sub(c),
            or_zero: false,
        },
        _ => AVal::Any,
    }
}

fn aval_mul(a: AVal, b: AVal) -> AVal {
    match (a, b) {
        (AVal::Const(x), AVal::Const(y)) => AVal::Const(x.wrapping_mul(y)),
        _ => AVal::Any,
    }
}

// ---------------------------------------------------------------------------
// Transfer functions
// ---------------------------------------------------------------------------

impl<'a> Analyzer<'a> {
    /// Abstractly execute one instruction, mirroring the check order of
    /// [`crate::exec::step`] so the first diagnostic at a pc names the
    /// rule the interpreter would fault with.
    fn transfer(&self, pc: usize, instr: &Instruction, st: &mut AbsState, sink: &mut Sink) {
        use Instruction as I;
        if sink.is_enabled() {
            self.use_before_def(instr, st, sink);
        }
        // The grouping gate fires first for every vector op without
        // register-grouping semantics, exactly as in the interpreter.
        if instr.is_vector() && !group_aware(instr) {
            let vlmax = self.vlmax_single_min(st);
            let bound = st.vl.bound();
            if crate::checks::check_grouping_supported(pc, bound, vlmax).is_err() {
                let conf =
                    if matches!(st.vl, AbsVl::Const(_)) && matches!(st.vtype, AbsVtype::Known(_)) {
                        Confidence::Proven
                    } else {
                        Confidence::Unprovable
                    };
                sink.emit(
                    Severity::Error,
                    conf,
                    Rule::GroupingUnsupported,
                    move || {
                        format!(
                            "vl may reach {bound} > single-register VLMAX {vlmax} \
                         at an op without grouping semantics"
                        )
                    },
                );
            }
        }
        match *instr {
            I::Li { rd, imm } => set_x(st, rd, AVal::Const(imm as u64)),
            I::Mv { rd, rs } => {
                let v = get_x(st, rs);
                set_x(st, rd, v);
            }
            I::Addi { rd, rs1, imm } => {
                let v = aval_add(get_x(st, rs1), AVal::Const(imm as i64 as u64));
                set_x(st, rd, v);
            }
            I::Add { rd, rs1, rs2 } => {
                let v = aval_add(get_x(st, rs1), get_x(st, rs2));
                set_x(st, rd, v);
            }
            I::Sub { rd, rs1, rs2 } => {
                let v = aval_sub(get_x(st, rs1), get_x(st, rs2));
                set_x(st, rd, v);
            }
            I::Mul { rd, rs1, rs2 } => {
                let v = aval_mul(get_x(st, rs1), get_x(st, rs2));
                set_x(st, rd, v);
            }
            I::Slli { rd, rs1, shamt } => {
                let v = match get_x(st, rs1) {
                    AVal::Const(c) => AVal::Const(c << (shamt & 63)),
                    _ => AVal::Any,
                };
                set_x(st, rd, v);
            }
            I::Srli { rd, rs1, shamt } => {
                let v = match get_x(st, rs1) {
                    AVal::Const(c) => AVal::Const(c >> (shamt & 63)),
                    _ => AVal::Any,
                };
                set_x(st, rd, v);
            }
            I::Lw { rd, .. } | I::Lwu { rd, .. } | I::Ld { rd, .. } => set_x(st, rd, AVal::Any),
            I::Flw { fd, .. } => st.f_def |= 1 << fd.index(),
            I::Sw { .. } | I::Sd { .. } | I::Nop | I::Halt => {}
            I::Beq { .. } | I::Bne { .. } | I::Blt { .. } | I::Bge { .. } => {}
            I::Jal { rd, .. } => set_x(st, rd, AVal::Const((pc + 1) as u64)),
            I::Vsetvli { rd, rs1, sew, lmul } => self.vsetvli(pc, st, sink, rd, rs1, sew, lmul),
            I::Vle8 { vd, rs1 } => self.vload(pc, st, sink, vd, rs1, Sew::E8),
            I::Vle16 { vd, rs1 } => self.vload(pc, st, sink, vd, rs1, Sew::E16),
            I::Vle32 { vd, rs1 } => self.vload(pc, st, sink, vd, rs1, Sew::E32),
            I::Vse8 { vs3, rs1 } => self.vstore(pc, st, sink, vs3, rs1, Sew::E8),
            I::Vse16 { vs3, rs1 } => self.vstore(pc, st, sink, vs3, rs1, Sew::E16),
            I::Vse32 { vs3, rs1 } => self.vstore(pc, st, sink, vs3, rs1, Sew::E32),
            I::VaddVx { vd, vs2, rs1 } => {
                let cls = self.offset_add_class(st, vd, vs2, get_x(st, rs1));
                self.write_v1(st, vd, cls);
            }
            I::VaddVi { vd, vs2, imm } => {
                let cls = self.offset_add_class(st, vd, vs2, AVal::Const(imm as i64 as u64));
                self.write_v1(st, vd, cls);
            }
            I::VaddVv { vd, .. }
            | I::VmulVv { vd, .. }
            | I::VmulVx { vd, .. }
            | I::VmaccVx { vd, .. }
            | I::VmvVx { vd, .. } => self.write_v1(st, vd, VClass::Any),
            I::VmvVv { vd, vs1 } => {
                let cls = self.copy_class(st, vd, vs1);
                self.write_v1(st, vd, cls);
            }
            I::VfaddVv { vd, .. }
            | I::VfmulVv { vd, .. }
            | I::VfmaccVf { vd, .. }
            | I::VfmaccVv { vd, .. } => {
                self.check_e32(pc, st, sink);
                self.write_v1(st, vd, VClass::Any);
            }
            I::VfmvFs { fd, .. } => {
                self.check_e32(pc, st, sink);
                st.f_def |= 1 << fd.index();
            }
            I::VmvSx { vd, rs1 } => {
                let cls = if get_x(st, rs1) == AVal::Const(0) {
                    // Writing a zero at lane 0 keeps a class intact iff
                    // the write granularity covers the class granularity
                    // (a partial zero write would corrupt lane 0).
                    match (st.v[vd.index() as usize], self.cur_sew(st)) {
                        (VClass::Offsets { add, lanes, .. }, Some(Sew::E32)) => VClass::Offsets {
                            add,
                            or_zero: true,
                            lanes,
                        },
                        (VClass::VregIdxs { sew, lanes, .. }, Some(cur))
                            if cur.bits() >= sew.bits() =>
                        {
                            VClass::VregIdxs {
                                sew,
                                or_zero: true,
                                lanes,
                            }
                        }
                        _ => VClass::Any,
                    }
                } else {
                    VClass::Any
                };
                self.write_v1(st, vd, cls);
            }
            I::VmvXs { rd, vs2 } => {
                let v = match st.v[vs2.index() as usize] {
                    // Sign extension at the read SEW must be a no-op for
                    // the extracted value to stay a set member.
                    VClass::Offsets {
                        add,
                        or_zero,
                        lanes,
                    } if lanes >= 1
                        && self.cur_sew(st) == Some(Sew::E32)
                        && self.offset_max(add) < (1 << 31) =>
                    {
                        AVal::Offset { add, or_zero }
                    }
                    VClass::VregIdxs {
                        sew,
                        or_zero,
                        lanes,
                    } if lanes >= 1
                        && self.cur_sew(st) == Some(sew)
                        && u32::from(self.vreg_max()) < (1u32 << (sew.bits() - 1)) =>
                    {
                        AVal::VregIdx { or_zero }
                    }
                    _ => AVal::Any,
                };
                set_x(st, rd, v);
            }
            I::Vslide1downVx { vd, vs2, rs1 } => {
                let cls = if get_x(st, rs1) == AVal::Const(0) {
                    self.slide_class(st, vd, vs2)
                } else {
                    VClass::Any
                };
                self.write_v1(st, vd, cls);
            }
            I::VslidedownVi { vd, vs2, imm } => {
                let cls = self.slidedown_class(st, vd, vs2, imm as usize);
                self.write_v1(st, vd, cls);
            }
            I::VindexmacVx { vd, vs2, rs } => self.vindexmac_vx(pc, st, sink, vd, vs2, rs),
            I::VindexmacVvi { vd, vs2, vs1, slot } => {
                self.vindexmac_vvi(pc, st, sink, vd, vs2, vs1, slot);
            }
        }
    }

    fn use_before_def(&self, instr: &Instruction, st: &AbsState, sink: &mut Sink) {
        for r in instr.x_srcs().into_iter().flatten() {
            if st.x_def & (1u32 << r.index()) == 0 {
                sink.emit(
                    Severity::Warning,
                    Confidence::Unprovable,
                    Rule::UseBeforeDef,
                    move || format!("{r} read before any definition"),
                );
            }
        }
        if let Some(f) = instr.f_src() {
            if st.f_def & (1u32 << f.index()) == 0 {
                sink.emit(
                    Severity::Warning,
                    Confidence::Unprovable,
                    Rule::UseBeforeDef,
                    move || format!("f{} read before any definition", f.index()),
                );
            }
        }
        for v in instr.v_srcs().into_iter().flatten() {
            if st.v_def & (1u32 << v.index()) == 0 {
                sink.emit(
                    Severity::Warning,
                    Confidence::Unprovable,
                    Rule::UseBeforeDef,
                    move || format!("{v} read before any definition"),
                );
            }
        }
    }

    fn check_e32(&self, pc: usize, st: &AbsState, sink: &mut Sink) {
        match self.cur_sew(st) {
            Some(s) => {
                if crate::checks::check_e32_only(pc, s).is_err() {
                    sink.emit(
                        Severity::Error,
                        Confidence::Proven,
                        Rule::IllegalSewForOp,
                        move || format!("float op at sew e{}; e32 required", s.bits()),
                    );
                }
            }
            None => sink.emit(
                Severity::Error,
                Confidence::Unprovable,
                Rule::UnknownVtype,
                || "float op with no dominating vsetvli".into(),
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn vsetvli(
        &self,
        pc: usize,
        st: &mut AbsState,
        sink: &mut Sink,
        rd: XReg,
        rs1: XReg,
        sew: Sew,
        lmul: indexmac_isa::Lmul,
    ) {
        if crate::checks::check_sew_supported(pc, sew).is_err() {
            sink.emit(
                Severity::Error,
                Confidence::Proven,
                Rule::UnsupportedSew,
                || "vsetvli selects e64, which the datapath does not execute".into(),
            );
            st.vtype = AbsVtype::Unknown;
            return;
        }
        let vlmax_g = lmul.factor() * self.vlen_bits / sew.bits();
        let vl = if rs1.is_zero() {
            if rd.is_zero() {
                // Keep vl, clamped to the new VLMAX (the oracle's rule).
                match st.vl {
                    AbsVl::Const(c) => AbsVl::Const(c.min(vlmax_g)),
                    AbsVl::AtMost(b) => AbsVl::AtMost(b.min(vlmax_g)),
                }
            } else {
                AbsVl::Const(vlmax_g)
            }
        } else {
            match get_x(st, rs1) {
                AVal::Const(c) => AbsVl::Const(c.min(vlmax_g as u64) as usize),
                _ => AbsVl::AtMost(vlmax_g),
            }
        };
        st.vtype = AbsVtype::Known(VType { sew, lmul });
        st.vl = vl;
        let out = match vl {
            AbsVl::Const(c) => AVal::Const(c as u64),
            AbsVl::AtMost(_) => AVal::Any,
        };
        set_x(st, rd, out);
    }

    fn vload(&self, pc: usize, st: &mut AbsState, sink: &mut Sink, vd: VReg, rs1: XReg, ew: Sew) {
        let g = self.groups(st);
        let Some(sew) = self.cur_sew(st) else {
            sink.emit(
                Severity::Error,
                Confidence::Unprovable,
                Rule::UnknownVtype,
                || "vector load with no dominating vsetvli".into(),
            );
            self.write_v_window(st, vd, g.max, VClass::Any);
            return;
        };
        if crate::checks::check_element_width(pc, sew, ew).is_err() {
            sink.emit(
                Severity::Error,
                Confidence::Proven,
                Rule::IllegalSewForOp,
                move || format!("e{} element load while sew is e{}", ew.bits(), sew.bits()),
            );
        }
        let addr = get_x(st, rs1);
        self.check_valign(sink, addr, ew);
        self.check_vgroup(pc, sink, vd, &g);
        self.check_vbounds(sink, st, addr, ew, false);
        let cls = self.load_class(st, addr, ew, &g);
        self.write_v_window(st, vd, g.max, VClass::Any);
        st.v[vd.index() as usize] = cls;
    }

    fn vstore(&self, pc: usize, st: &mut AbsState, sink: &mut Sink, vs3: VReg, rs1: XReg, ew: Sew) {
        let g = self.groups(st);
        let Some(sew) = self.cur_sew(st) else {
            sink.emit(
                Severity::Error,
                Confidence::Unprovable,
                Rule::UnknownVtype,
                || "vector store with no dominating vsetvli".into(),
            );
            return;
        };
        if crate::checks::check_element_width(pc, sew, ew).is_err() {
            sink.emit(
                Severity::Error,
                Confidence::Proven,
                Rule::IllegalSewForOp,
                move || format!("e{} element store while sew is e{}", ew.bits(), sew.bits()),
            );
        }
        let addr = get_x(st, rs1);
        self.check_valign(sink, addr, ew);
        self.check_vgroup(pc, sink, vs3, &g);
        self.check_vbounds(sink, st, addr, ew, true);
    }

    fn check_vgroup(&self, pc: usize, sink: &mut Sink, base: VReg, g: &Groups) {
        if let Some(r) = g.exact {
            if check_group(pc, base, r).is_err() {
                sink.emit(
                    Severity::Error,
                    Confidence::Proven,
                    Rule::GroupOutOfRange,
                    move || format!("group v{}+{} exceeds v31", base.index(), r),
                );
            }
        } else {
            let max = g.max;
            if base.index() as usize + max > 32 {
                sink.emit(
                    Severity::Error,
                    Confidence::Unprovable,
                    Rule::GroupOutOfRange,
                    move || {
                        format!(
                            "group at v{} may span {max} registers past v31",
                            base.index()
                        )
                    },
                );
            }
        }
    }

    fn check_valign(&self, sink: &mut Sink, addr: AVal, ew: Sew) {
        let eb = ew.bytes() as u64;
        if eb == 1 {
            return;
        }
        match addr {
            AVal::Const(a) => {
                if !a.is_multiple_of(eb) {
                    sink.emit(
                        Severity::Error,
                        Confidence::Proven,
                        Rule::UnalignedAccess,
                        move || format!("address {a:#x} is not {eb}-byte aligned"),
                    );
                }
            }
            AVal::Offset { add, or_zero } => {
                let stride = self
                    .contract
                    .and_then(|c| c.offset_table.as_ref())
                    .map(|t| t.stride);
                match stride {
                    Some(s) if add.is_multiple_of(eb) && s.is_multiple_of(eb) => {}
                    Some(s) if s.is_multiple_of(eb) && !or_zero => sink.emit(
                        Severity::Error,
                        Confidence::Proven,
                        Rule::UnalignedAccess,
                        move || {
                            format!("offset-table address base {add:#x} is never {eb}-byte aligned")
                        },
                    ),
                    _ => sink.emit(
                        Severity::Error,
                        Confidence::Unprovable,
                        Rule::UnalignedAccess,
                        move || {
                            format!("cannot prove {eb}-byte alignment of table-derived address")
                        },
                    ),
                }
            }
            AVal::VregIdx { .. } | AVal::Any => sink.emit(
                Severity::Error,
                Confidence::Unprovable,
                Rule::UnalignedAccess,
                move || format!("address unknown; cannot prove {eb}-byte alignment"),
            ),
        }
    }

    /// Memory-bounds lint (needs a contract). Loads may touch `readable`
    /// or lie entirely below `zero_page` (the architectural-zero pad the
    /// slide convention reads); stores must stay inside `writable`.
    fn check_vbounds(&self, sink: &mut Sink, st: &AbsState, addr: AVal, ew: Sew, is_store: bool) {
        let Some(c) = self.contract else { return };
        let eb = ew.bytes() as u64;
        let span = (st.vl.bound() as u64).saturating_mul(eb);
        let mut proven = false;
        let ok = match addr {
            AVal::Const(a) => {
                proven = st.vl.as_const().is_some();
                match a.checked_add(span) {
                    Some(end) if is_store => a >= c.writable.start && end <= c.writable.end,
                    Some(end) => {
                        (a >= c.readable.start && end <= c.readable.end) || end <= c.zero_page
                    }
                    None => false,
                }
            }
            AVal::Offset { add, or_zero } => {
                match self.contract.and_then(|c| c.offset_table.as_ref()) {
                    Some(t) => {
                        let reach = t
                            .count
                            .saturating_sub(1)
                            .checked_mul(t.stride)
                            .and_then(|m| add.checked_add(m))
                            .and_then(|m| m.checked_add(span));
                        match reach {
                            Some(end) if is_store => {
                                !or_zero && add >= c.writable.start && end <= c.writable.end
                            }
                            Some(end) => {
                                add >= c.readable.start
                                    && end <= c.readable.end
                                    && (!or_zero || span <= c.zero_page)
                            }
                            None => false,
                        }
                    }
                    None => false,
                }
            }
            AVal::VregIdx { .. } => {
                !is_store && u64::from(self.vreg_max()).saturating_add(span) <= c.zero_page
            }
            AVal::Any => false,
        };
        if !ok {
            let conf = if proven {
                Confidence::Proven
            } else {
                Confidence::Unprovable
            };
            let kind = if is_store { "store" } else { "load" };
            sink.emit(Severity::Error, conf, Rule::OutOfBoundsAccess, move || {
                format!("vector {kind} of {span} bytes may leave the contract regions")
            });
        }
    }

    /// Class a freshly loaded register: reading entirely inside a
    /// contract table at the table's element width yields its class.
    fn load_class(&self, st: &AbsState, addr: AVal, ew: Sew, g: &Groups) -> VClass {
        let Some(c) = self.contract else {
            return VClass::Any;
        };
        let Some(vc) = st.vl.as_const() else {
            return VClass::Any;
        };
        let AVal::Const(a) = addr else {
            return VClass::Any;
        };
        if vc == 0 {
            return VClass::Any;
        }
        let span = vc as u64 * ew.bytes() as u64;
        let Some(end) = a.checked_add(span) else {
            return VClass::Any;
        };
        if let Some(t) = &c.offset_table {
            if ew == Sew::E32 && g.exact == Some(1) && a >= t.region.start && end <= t.region.end {
                return VClass::Offsets {
                    add: 0,
                    or_zero: false,
                    lanes: vc,
                };
            }
        }
        if let Some(t) = &c.vreg_table {
            if ew == t.elem && g.exact.is_some() && a >= t.region.start && end <= t.region.end {
                // Only the first register of a group is ever indexed by
                // slot immediates, so the class covers its lanes.
                return VClass::VregIdxs {
                    sew: ew,
                    or_zero: false,
                    lanes: vc.min(self.vlen_bits / ew.bits()),
                };
            }
        }
        VClass::Any
    }

    /// `vadd.vx` / `vadd.vi` over an offset-table class: adding a
    /// constant shifts the whole set, as long as no lane wraps at the
    /// 32-bit lane width (so the abstract shift stays exact).
    fn offset_add_class(&self, st: &AbsState, vd: VReg, vs2: VReg, cval: AVal) -> VClass {
        let AVal::Const(cv) = cval else {
            return VClass::Any;
        };
        if self.cur_sew(st) != Some(Sew::E32) {
            return VClass::Any;
        }
        let VClass::Offsets {
            add,
            or_zero: false,
            lanes,
        } = st.v[vs2.index() as usize]
        else {
            return VClass::Any;
        };
        let Some(vc) = st.vl.as_const() else {
            return VClass::Any;
        };
        if vc == 0 || vc > lanes {
            return VClass::Any;
        }
        let Some(t) = self.contract.and_then(|c| c.offset_table.as_ref()) else {
            return VClass::Any;
        };
        let c32 = cv & 0xFFFF_FFFF;
        let max_off = t.count.saturating_sub(1).saturating_mul(t.stride);
        let Some(add2) = add.checked_add(c32) else {
            return VClass::Any;
        };
        match add2.checked_add(max_off) {
            Some(top) if top <= u64::from(u32::MAX) => VClass::Offsets {
                add: add2,
                or_zero: false,
                lanes: if vd == vs2 { lanes } else { vc },
            },
            _ => VClass::Any,
        }
    }

    /// `vmv.v.v`: lanes 0..vl copy the source class; beyond vl the
    /// destination keeps stale content (classed only when vd == vs1).
    fn copy_class(&self, st: &AbsState, vd: VReg, vs1: VReg) -> VClass {
        let Some(vc) = st.vl.as_const() else {
            return VClass::Any;
        };
        if vc == 0 {
            return VClass::Any;
        }
        match st.v[vs1.index() as usize] {
            VClass::Offsets {
                add,
                or_zero,
                lanes,
            } if self.cur_sew(st) == Some(Sew::E32) && vc <= lanes => VClass::Offsets {
                add,
                or_zero,
                lanes: if vd == vs1 { lanes } else { vc },
            },
            VClass::VregIdxs {
                sew,
                or_zero,
                lanes,
            } if self.cur_sew(st) == Some(sew) && vc <= lanes => VClass::VregIdxs {
                sew,
                or_zero,
                lanes: if vd == vs1 { lanes } else { vc },
            },
            _ => VClass::Any,
        }
    }

    /// `vslide1down.vx` with a zero insert: every result lane is a set
    /// member or the inserted 0, so the class survives with `or_zero`.
    fn slide_class(&self, st: &AbsState, vd: VReg, vs2: VReg) -> VClass {
        let Some(vc) = st.vl.as_const() else {
            return VClass::Any;
        };
        if vc == 0 {
            return VClass::Any;
        }
        match st.v[vs2.index() as usize] {
            VClass::Offsets { add, lanes, .. }
                if self.cur_sew(st) == Some(Sew::E32) && vc <= lanes =>
            {
                VClass::Offsets {
                    add,
                    or_zero: true,
                    lanes: if vd == vs2 { lanes } else { vc },
                }
            }
            VClass::VregIdxs { sew, lanes, .. } if self.cur_sew(st) == Some(sew) && vc <= lanes => {
                VClass::VregIdxs {
                    sew,
                    or_zero: true,
                    lanes: if vd == vs2 { lanes } else { vc },
                }
            }
            _ => VClass::Any,
        }
    }

    /// `vslidedown.vi`: reads lanes `off..off+vl`, which must either
    /// stay inside the classed extent or run past VLMAX (where the
    /// datapath reads architectural zeros, folded in via `or_zero`).
    fn slidedown_class(&self, st: &AbsState, vd: VReg, vs2: VReg, off: usize) -> VClass {
        let Some(vc) = st.vl.as_const() else {
            return VClass::Any;
        };
        if vc == 0 {
            return VClass::Any;
        }
        let ext = |lanes: usize| if vd == vs2 { lanes } else { vc };
        match st.v[vs2.index() as usize] {
            VClass::Offsets {
                add,
                or_zero,
                lanes,
            } if self.cur_sew(st) == Some(Sew::E32) => {
                let vlmax = self.vlen_bits / 32;
                if off == 0 && vc <= lanes {
                    VClass::Offsets {
                        add,
                        or_zero,
                        lanes: ext(lanes),
                    }
                } else if off + vc <= lanes || lanes == vlmax {
                    VClass::Offsets {
                        add,
                        or_zero: true,
                        lanes: ext(lanes),
                    }
                } else {
                    VClass::Any
                }
            }
            VClass::VregIdxs {
                sew,
                or_zero,
                lanes,
            } if self.cur_sew(st) == Some(sew) => {
                let vlmax = self.vlen_bits / sew.bits();
                if off == 0 && vc <= lanes {
                    VClass::VregIdxs {
                        sew,
                        or_zero,
                        lanes: ext(lanes),
                    }
                } else if off + vc <= lanes || lanes == vlmax {
                    VClass::VregIdxs {
                        sew,
                        or_zero: true,
                        lanes: ext(lanes),
                    }
                } else {
                    VClass::Any
                }
            }
            _ => VClass::Any,
        }
    }

    /// Largest value the offset-table class can reach above `add`.
    fn offset_max(&self, add: u64) -> u64 {
        match self.contract.and_then(|c| c.offset_table.as_ref()) {
            Some(t) => add.saturating_add(t.count.saturating_sub(1).saturating_mul(t.stride)),
            None => u64::MAX,
        }
    }

    /// Largest index the vreg-table class can contain (31 without a
    /// contract, which is still a sound bound for a 5-bit index).
    fn vreg_max(&self) -> u8 {
        match self.contract.and_then(|c| c.vreg_table.as_ref()) {
            Some(t) => t.max,
            None => 31,
        }
    }

    /// `vindexmac.vx`: the grouping gate has already run, so on any
    /// continuing execution `vl <= VLMAX` and the source group is a
    /// single register (trivially in range for any 5-bit index).
    fn vindexmac_vx(
        &self,
        pc: usize,
        st: &mut AbsState,
        sink: &mut Sink,
        vd: VReg,
        vs2: VReg,
        rs: XReg,
    ) {
        let Some(s) = self.cur_sew(st) else {
            sink.emit(
                Severity::Error,
                Confidence::Unprovable,
                Rule::UnknownVtype,
                || "vindexmac.vx with no dominating vsetvli".into(),
            );
            self.write_v_window(st, vd, 4, VClass::Any);
            return;
        };
        if s == Sew::E32 {
            self.write_v1(st, vd, VClass::Any);
            return;
        }
        let widen = widen_factor(s);
        match check_widening_dst(pc, s, vd, 1) {
            Err(_) => sink.emit(
                Severity::Error,
                Confidence::Proven,
                Rule::IllegalWidening,
                move || {
                    format!(
                        "widening accumulator v{} misaligned for e{} (needs {}-register alignment)",
                        vd.index(),
                        s.bits(),
                        widen
                    )
                },
            ),
            Ok(dst_regs) => {
                if check_group(pc, vd, dst_regs).is_err() {
                    sink.emit(
                        Severity::Error,
                        Confidence::Proven,
                        Rule::GroupOutOfRange,
                        move || format!("accumulator group v{}+{dst_regs} exceeds v31", vd.index()),
                    );
                }
            }
        }
        let win = vd.index() as usize..vd.index() as usize + widen;
        if win.contains(&(vs2.index() as usize)) {
            sink.emit(
                Severity::Error,
                Confidence::Proven,
                Rule::WideningOverlap,
                move || {
                    format!(
                        "multiplier source v{} aliases the accumulator window",
                        vs2.index()
                    )
                },
            );
        } else {
            match get_x(st, rs) {
                AVal::Const(c) => {
                    let src = (c & 0x1F) as usize;
                    if win.contains(&src) {
                        sink.emit(
                            Severity::Error,
                            Confidence::Proven,
                            Rule::WideningOverlap,
                            move || format!("indexed source v{src} aliases the accumulator window"),
                        );
                    }
                }
                AVal::VregIdx { .. } => {
                    let lo = self
                        .contract
                        .and_then(|c| c.vreg_table.as_ref())
                        .map_or(0, |t| t.min) as usize;
                    let hi = self.vreg_max() as usize + 1;
                    if lo < win.end && win.start < hi {
                        sink.emit(
                            Severity::Error,
                            Confidence::Unprovable,
                            Rule::WideningOverlap,
                            move || {
                                "indexed source range may alias the accumulator window".to_string()
                            },
                        );
                    }
                }
                // An unknown index is a soundness question for the
                // group-range rule, not this lint; make no overlap claim.
                _ => {}
            }
        }
        self.write_v_window(st, vd, widen, VClass::Any);
    }

    /// `vindexmac.vvi`: group-aware; mirrors the interpreter's order of
    /// slot check, indirect-source group check, then destination rules.
    #[allow(clippy::too_many_arguments)]
    fn vindexmac_vvi(
        &self,
        pc: usize,
        st: &mut AbsState,
        sink: &mut Sink,
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
        slot: u8,
    ) {
        let g = self.groups(st);
        let Some(s) = self.cur_sew(st) else {
            sink.emit(
                Severity::Error,
                Confidence::Unprovable,
                Rule::UnknownVtype,
                || "vindexmac.vvi with no dominating vsetvli".into(),
            );
            self.write_v_window(st, vd, 4, VClass::Any);
            return;
        };
        let vlmax1 = self.vlen_bits / s.bits();
        if check_slot(pc, slot, vlmax1).is_err() {
            sink.emit(
                Severity::Error,
                Confidence::Proven,
                Rule::SlotOutOfRange,
                move || format!("slot {slot} >= VLMAX {vlmax1}"),
            );
        }
        // Indirect source: bounded only through the vreg-table class.
        let idx = match st.v[vs1.index() as usize] {
            VClass::VregIdxs { sew, lanes, .. } if sew == s && (slot as usize) < lanes => self
                .contract
                .and_then(|c| c.vreg_table.as_ref())
                .map(|t| (t.min, t.max)),
            _ => None,
        };
        match idx {
            Some((_, max)) => {
                let gmax = g.max;
                if max as usize + gmax > 32 {
                    sink.emit(
                        Severity::Error,
                        Confidence::Unprovable,
                        Rule::GroupOutOfRange,
                        move || format!("indirect source group v{max}+{gmax} may exceed v31"),
                    );
                }
            }
            None => {
                if g.max > 1 {
                    let gmax = g.max;
                    sink.emit(
                        Severity::Error,
                        Confidence::Unprovable,
                        Rule::GroupOutOfRange,
                        move || {
                            format!(
                                "indirect source of a {gmax}-register vindexmac is unbounded \
                                 (no vreg-table class on v{})",
                                vs1.index()
                            )
                        },
                    );
                }
            }
        }
        // Destination rules.
        let dst_max = if s == Sew::E32 {
            self.check_vgroup(pc, sink, vd, &g);
            g.max
        } else {
            let widen = widen_factor(s);
            match g.exact {
                Some(r) => match check_widening_dst(pc, s, vd, r) {
                    Err(_) => sink.emit(
                        Severity::Error,
                        Confidence::Proven,
                        Rule::IllegalWidening,
                        move || {
                            format!(
                                "widening accumulator v{} illegal at e{} with {r} source registers",
                                vd.index(),
                                s.bits()
                            )
                        },
                    ),
                    Ok(dst_regs) => {
                        if check_group(pc, vd, dst_regs).is_err() {
                            sink.emit(
                                Severity::Error,
                                Confidence::Proven,
                                Rule::GroupOutOfRange,
                                move || {
                                    format!(
                                        "accumulator group v{}+{dst_regs} exceeds v31",
                                        vd.index()
                                    )
                                },
                            );
                        }
                    }
                },
                None => {
                    let dst_bound = g.max * widen;
                    if !(vd.index() as usize).is_multiple_of(widen) {
                        sink.emit(
                            Severity::Error,
                            Confidence::Proven,
                            Rule::IllegalWidening,
                            move || {
                                format!(
                                    "widening accumulator v{} misaligned for e{}",
                                    vd.index(),
                                    s.bits()
                                )
                            },
                        );
                    } else if dst_bound > 4 {
                        sink.emit(
                            Severity::Error,
                            Confidence::Unprovable,
                            Rule::IllegalWidening,
                            move || {
                                format!("widening accumulator may span {dst_bound} registers > m4")
                            },
                        );
                    }
                    if vd.index() as usize + dst_bound > 32 {
                        sink.emit(
                            Severity::Error,
                            Confidence::Unprovable,
                            Rule::GroupOutOfRange,
                            move || {
                                format!(
                                    "accumulator group v{}+{dst_bound} may exceed v31",
                                    vd.index()
                                )
                            },
                        );
                    }
                }
            }
            g.max * widen
        };
        // Overlap lint: the accumulator window must not alias the
        // metadata registers or the indirect source window. A class
        // carrying only the slide-padding zero is exempt by convention.
        if dst_max > 1 {
            let win = vd.index() as usize..vd.index() as usize + dst_max;
            if win.contains(&(vs2.index() as usize)) || win.contains(&(vs1.index() as usize)) {
                sink.emit(
                    Severity::Error,
                    Confidence::Proven,
                    Rule::WideningOverlap,
                    move || {
                        format!(
                            "metadata register v{}/v{} aliases the accumulator window",
                            vs2.index(),
                            vs1.index()
                        )
                    },
                );
            } else if let Some((min, max)) = idx {
                let lo = min as usize;
                let hi = max as usize + g.max;
                if lo < win.end && win.start < hi {
                    sink.emit(
                        Severity::Error,
                        Confidence::Unprovable,
                        Rule::WideningOverlap,
                        move || "indexed source range may alias the accumulator window".to_string(),
                    );
                }
            }
        }
        self.write_v_window(st, vd, dst_max, VClass::Any);
    }

    fn write_v1(&self, st: &mut AbsState, vd: VReg, cls: VClass) {
        st.v[vd.index() as usize] = cls;
        st.v_def |= 1 << vd.index();
    }

    fn write_v_window(&self, st: &mut AbsState, vd: VReg, n: usize, cls: VClass) {
        let b = vd.index() as usize;
        for i in b..(b + n).min(32) {
            st.v[i] = cls;
            st.v_def |= 1 << i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_isa::{Lmul, ProgramBuilder};

    const VLEN: usize = 512;

    fn run(build: impl FnOnce(&mut ProgramBuilder)) -> Analysis {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        analyze_instructions(b.build().instructions(), VLEN, None)
    }

    fn rules(a: &Analysis) -> Vec<Rule> {
        a.diagnostics().iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_straight_line_program_mints_verified() {
        let a = run(|b| {
            b.li(XReg::T0, 21);
            b.push(Instruction::Add {
                rd: XReg::T1,
                rs1: XReg::T0,
                rs2: XReg::T0,
            });
            b.halt();
        });
        assert!(a.is_clean(), "{:?}", a.diagnostics());
        assert!(a.diagnostics().is_empty());
        let v = a.verified().expect("clean program earns a token");
        assert_eq!(v.program_len(), 3);
        assert_eq!(v.vlen_bits(), VLEN);
    }

    #[test]
    fn missing_halt_falls_off_end() {
        let a = run(|b| {
            b.li(XReg::T0, 1);
        });
        assert_eq!(rules(&a), vec![Rule::FallsOffEnd]);
        assert_eq!(a.diagnostics()[0].confidence, Confidence::Proven);
        assert!(a.verified().is_none());
    }

    #[test]
    fn empty_program_falls_off_end() {
        let a = analyze_instructions(&[], VLEN, None);
        assert_eq!(rules(&a), vec![Rule::FallsOffEnd]);
    }

    #[test]
    fn e64_vsetvli_is_proven_unsupported() {
        let a = run(|b| {
            b.push(Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::ZERO,
                sew: Sew::E64,
                lmul: Lmul::M1,
            });
            b.halt();
        });
        assert_eq!(rules(&a), vec![Rule::UnsupportedSew]);
        assert_eq!(a.diagnostics()[0].confidence, Confidence::Proven);
    }

    #[test]
    fn grouping_gate_fires_on_grouped_slide() {
        // vl = 32 at e32/m2 (VLMAX 16): slides have no grouping
        // semantics, so the gate must flag them.
        let a = run(|b| {
            b.li(XReg::T0, 32);
            b.push(Instruction::Vsetvli {
                rd: XReg::T1,
                rs1: XReg::T0,
                sew: Sew::E32,
                lmul: Lmul::M2,
            });
            b.push(Instruction::VslidedownVi {
                vd: VReg::V1,
                vs2: VReg::V1,
                imm: 1,
            });
            b.halt();
        });
        assert!(rules(&a).contains(&Rule::GroupingUnsupported));
        assert_eq!(
            a.diagnostics()
                .iter()
                .find(|d| d.rule == Rule::GroupingUnsupported)
                .unwrap()
                .confidence,
            Confidence::Proven
        );
    }

    #[test]
    fn negative_branch_target_flagged() {
        let a = run(|b| {
            b.push(Instruction::Jal {
                rd: XReg::ZERO,
                offset: -5,
            });
            b.halt();
        });
        assert_eq!(rules(&a), vec![Rule::PcOutOfRange]);
        assert_eq!(a.diagnostics()[0].confidence, Confidence::Proven);
    }

    #[test]
    fn slot_out_of_range_flagged() {
        // VLMAX at e32 is 16; slot 16 is out of range.
        let a = run(|b| {
            b.push(Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V4,
                vs1: VReg::V8,
                slot: 16,
            });
            b.halt();
        });
        assert!(rules(&a).contains(&Rule::SlotOutOfRange));
    }

    #[test]
    fn widening_misalignment_is_proven() {
        // e8 widening needs a 4-aligned accumulator; v1 is not.
        let a = run(|b| {
            b.li(XReg::T0, 16);
            b.push(Instruction::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::T0,
                sew: Sew::E8,
                lmul: Lmul::M1,
            });
            b.push(Instruction::VindexmacVx {
                vd: VReg::V1,
                vs2: VReg::V8,
                rs: XReg::T1,
            });
            b.halt();
        });
        let d = a
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::IllegalWidening)
            .expect("misaligned widening accumulator flagged");
        assert_eq!(d.confidence, Confidence::Proven);
    }

    #[test]
    fn use_before_def_is_warning_only() {
        let a = run(|b| {
            b.push(Instruction::Add {
                rd: XReg::T1,
                rs1: XReg::T2, // never written
                rs2: XReg::ZERO,
            });
            b.halt();
        });
        assert_eq!(rules(&a), vec![Rule::UseBeforeDef]);
        assert_eq!(a.diagnostics()[0].severity, Severity::Warning);
        assert_eq!(a.warning_count(), 1);
        // Warnings do not block verification.
        assert!(a.verified().is_some());
    }

    #[test]
    fn loop_with_constant_trip_count_converges_clean() {
        let a = run(|b| {
            b.li(XReg::T0, 8);
            let top = b.bind_label();
            b.push(Instruction::Addi {
                rd: XReg::T0,
                rs1: XReg::T0,
                imm: -1,
            });
            b.bne(XReg::T0, XReg::ZERO, top);
            b.halt();
        });
        assert!(a.is_clean(), "{:?}", a.diagnostics());
        assert!(a.diagnostics().is_empty());
    }

    #[test]
    fn store_width_mismatch_is_proven() {
        let a = run(|b| {
            b.li(XReg::T0, 0x1000);
            b.push(Instruction::Vse16 {
                vs3: VReg::V0,
                rs1: XReg::T0,
            });
            b.halt();
        });
        // Default vtype is e32: an e16 store disagrees.
        let d = a
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::IllegalSewForOp)
            .expect("width mismatch flagged");
        assert_eq!(d.confidence, Confidence::Proven);
    }

    #[test]
    fn unaligned_constant_address_is_proven() {
        let a = run(|b| {
            b.li(XReg::T0, 0x1002);
            b.push(Instruction::Vle32 {
                vd: VReg::V1,
                rs1: XReg::T0,
            });
            b.halt();
        });
        let d = a
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::UnalignedAccess)
            .expect("misaligned vle32 flagged");
        assert_eq!(d.confidence, Confidence::Proven);
    }

    #[test]
    fn float_op_at_narrow_sew_is_proven_illegal() {
        let a = run(|b| {
            b.li(XReg::T0, 16);
            b.push(Instruction::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::T0,
                sew: Sew::E16,
                lmul: Lmul::M1,
            });
            b.push(Instruction::VfaddVv {
                vd: VReg::V1,
                vs2: VReg::V2,
                vs1: VReg::V3,
            });
            b.halt();
        });
        let d = a
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::IllegalSewForOp)
            .expect("float op at e16 flagged");
        assert_eq!(d.confidence, Confidence::Proven);
    }

    #[test]
    fn rule_ids_are_stable_and_unique() {
        let mut ids: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Rule::ALL.len());
        assert_eq!(Rule::UnknownVtype.id(), "VA001");
        assert_eq!(Rule::UseBeforeDef.id(), "VA013");
    }
}
