//! Simulated-processor configuration (paper Table I plus the
//! micro-architectural latencies the table leaves implicit).

use indexmac_mem::HierarchyConfig;

/// Which scalar-core timing backend the simulator accounts cycles with.
///
/// All three consume the same decoded µop stream through the
/// [`crate::TimingModel`] trait; only the scalar core differs — the
/// decoupled vector engine model is shared, so dynamic instruction
/// counts are identical across backends and only cycle counts move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimingKind {
    /// The in-order issue scoreboard (the original model; all pinned
    /// paper numbers are measured under this backend).
    #[default]
    InOrder,
    /// Explicit fetch/decode/issue/execute/writeback pipeline with
    /// per-stage hazard stalls.
    Pipelined,
    /// Out-of-order scalar core: ROB, reservation stations, register
    /// alias table and a scalar load/store queue.
    OutOfOrder,
}

impl TimingKind {
    /// Every backend, for exhaustive sweeps and cross-backend tests.
    pub const ALL: [TimingKind; 3] = [
        TimingKind::InOrder,
        TimingKind::Pipelined,
        TimingKind::OutOfOrder,
    ];

    /// The CLI / JSON name: `inorder`, `pipelined` or `ooo`.
    pub fn name(self) -> &'static str {
        match self {
            TimingKind::InOrder => "inorder",
            TimingKind::Pipelined => "pipelined",
            TimingKind::OutOfOrder => "ooo",
        }
    }
}

impl std::fmt::Display for TimingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TimingKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "inorder" | "in-order" | "scoreboard" => Ok(TimingKind::InOrder),
            "pipelined" | "pipeline" => Ok(TimingKind::Pipelined),
            "ooo" | "out-of-order" | "outoforder" => Ok(TimingKind::OutOfOrder),
            other => Err(format!(
                "unknown timing backend '{other}' (expected inorder|pipelined|ooo)"
            )),
        }
    }
}

/// Full configuration of the simulated decoupled vector processor.
///
/// [`SimConfig::table_i`] reproduces the paper's Table I; individual
/// fields can be overridden for ablations (e.g. the VLEN sweep bench).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    // ---- vector engine (Table I: "512-bit vector engine with 16-lane
    // configuration (32-bit elements x 16 execution lanes)") ----
    /// Hardware vector register length in bits.
    pub vlen_bits: usize,
    /// Number of execution lanes (32-bit each).
    pub lanes: usize,
    /// Depth of the scalar->vector instruction queue (decoupling depth).
    pub vq_depth: usize,
    /// Vector load-queue entries into L2 (Table I: 16).
    pub vlq_entries: usize,
    /// Vector store-queue entries into L2 (Table I: 16).
    pub vsq_entries: usize,
    /// Vector instructions the scalar core can hand over per cycle.
    pub vdispatch_per_cycle: u32,

    // ---- scalar core (Table I: 8-way OoO, 60-entry ROB) ----
    /// Timing backend the simulator accounts scalar cycles with.
    pub timing: TimingKind,
    /// Scalar issue width.
    pub issue_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Reservation-station entries ([`TimingKind::OutOfOrder`] only).
    pub rs_entries: usize,
    /// Scalar load/store-queue entries ([`TimingKind::OutOfOrder`] only).
    pub lsq_entries: usize,
    /// Redirect penalty of a taken branch, cycles.
    pub branch_taken_penalty: u64,

    // ---- operation latencies (cycles) ----
    /// Simple integer ALU latency.
    pub alu_latency: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Vector arithmetic (non-MAC) latency.
    pub varith_latency: u64,
    /// Vector MAC latency (`vfmacc`, `vmacc`, `vindexmac`).
    pub vmac_latency: u64,
    /// Vector slide/permute latency.
    pub vslide_latency: u64,
    /// Vector-to-scalar transfer latency (`vmv.x.s` result to the scalar
    /// core — the cross-domain synchronisation both kernels pay).
    pub v2s_latency: u64,

    // ---- memory system ----
    /// Cache/DRAM hierarchy parameters.
    pub hierarchy: HierarchyConfig,
}

impl SimConfig {
    /// The configuration of the paper's Table I.
    pub fn table_i() -> Self {
        Self {
            vlen_bits: 512,
            lanes: 16,
            vq_depth: 16,
            vlq_entries: 16,
            vsq_entries: 16,
            vdispatch_per_cycle: 1,
            timing: TimingKind::InOrder,
            issue_width: 8,
            rob_entries: 60,
            rs_entries: 32,
            lsq_entries: 24,
            branch_taken_penalty: 2,
            alu_latency: 1,
            mul_latency: 3,
            varith_latency: 2,
            vmac_latency: 4,
            vslide_latency: 2,
            v2s_latency: 3,
            hierarchy: HierarchyConfig::table_i(),
        }
    }

    /// Maximum `vl` for 32-bit elements (`VLEN / 32`); 16 for Table I.
    pub fn vlmax_e32(&self) -> usize {
        self.vlen_bits / 32
    }

    /// Maximum `vl` per single register at element width `sew`
    /// (`VLEN / SEW`): 64 at e8 for Table I.
    pub fn vlmax_for(&self, sew: indexmac_isa::Sew) -> usize {
        self.vlen_bits / sew.bits()
    }

    /// Cycles the engine occupies issuing one `vl`-element operation
    /// across the lanes (`ceil(vl / lanes)`, minimum 1) at 32-bit
    /// elements.
    pub fn occupancy(&self, vl: usize) -> u64 {
        self.occupancy_sew(vl, indexmac_isa::Sew::E32)
    }

    /// SEW-aware engine occupancy: each 32-bit lane processes
    /// `32 / SEW` narrow elements per cycle (the datapath is bit-sliced),
    /// so elements-per-cycle scales with the selected element width —
    /// 64 e8 elements per cycle on the 16-lane Table I engine.
    pub fn occupancy_sew(&self, vl: usize, sew: indexmac_isa::Sew) -> u64 {
        let elems_per_cycle = self.lanes * (32 / sew.bits()).max(1);
        (vl.max(1)).div_ceil(elems_per_cycle) as u64
    }

    /// Copy with a different timing backend (used by the cross-backend
    /// comparison paths; warm simulators rebuild automatically because
    /// `SimConfig` comparisons see the field change).
    pub fn with_timing(mut self, timing: TimingKind) -> Self {
        self.timing = timing;
        self
    }

    /// Copy with a different VLEN (used by the VLEN-sweep ablation).
    pub fn with_vlen(mut self, vlen_bits: usize) -> Self {
        assert!(
            vlen_bits.is_multiple_of(32) && vlen_bits >= 32,
            "VLEN must be a multiple of 32"
        );
        self.vlen_bits = vlen_bits;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

impl std::fmt::Display for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Simulated processor configuration (paper Table I)")?;
        writeln!(
            f,
            "  Scalar core   : RV64GC, {}-way-issue out-of-order, {}-entry ROB",
            self.issue_width, self.rob_entries
        )?;
        writeln!(f, "  Timing model  : {}", self.timing)?;
        writeln!(
            f,
            "  L1D cache     : {}-cycle hit, {}-way, {}KB",
            self.hierarchy.l1_latency,
            self.hierarchy.l1d.ways,
            self.hierarchy.l1d.size_bytes / 1024
        )?;
        writeln!(
            f,
            "  Vector engine : {}-bit, {} lanes (32-bit elements), vl_max={}",
            self.vlen_bits,
            self.lanes,
            self.vlmax_e32()
        )?;
        writeln!(
            f,
            "  Vector memory : {} load queues + {} store queues directly into L2",
            self.vlq_entries, self.vsq_entries
        )?;
        writeln!(
            f,
            "  L2 cache      : {}-way, {}-bank, {}-cycle hit, {}KB shared",
            self.hierarchy.l2.ways,
            self.hierarchy.l2_banks,
            self.hierarchy.l2_latency,
            self.hierarchy.l2.size_bytes / 1024
        )?;
        write!(
            f,
            "  Main memory   : DDR4-2400 ({}-cycle latency, {} cycles/line)",
            self.hierarchy.dram.latency, self.hierarchy.dram.cycles_per_line
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper() {
        let c = SimConfig::table_i();
        assert_eq!(c.vlen_bits, 512);
        assert_eq!(c.lanes, 16);
        assert_eq!(c.vlmax_e32(), 16);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_entries, 60);
        assert_eq!(c.vlq_entries, 16);
        assert_eq!(c.vsq_entries, 16);
        assert_eq!(c.hierarchy.l1_latency, 2);
        assert_eq!(c.hierarchy.l2_latency, 8);
        assert_eq!(c.hierarchy.l2_banks, 8);
        assert_eq!(c.hierarchy.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.hierarchy.l2.size_bytes, 512 * 1024);
    }

    #[test]
    fn occupancy_rule() {
        let c = SimConfig::table_i();
        assert_eq!(c.occupancy(16), 1);
        assert_eq!(c.occupancy(1), 1);
        assert_eq!(c.occupancy(0), 1);
        assert_eq!(c.occupancy(17), 2);
        let wide = c.with_vlen(1024);
        assert_eq!(wide.vlmax_e32(), 32);
        assert_eq!(wide.occupancy(32), 2);
    }

    #[test]
    fn occupancy_scales_with_element_width() {
        use indexmac_isa::Sew;
        let c = SimConfig::table_i();
        assert_eq!(c.vlmax_for(Sew::E8), 64);
        assert_eq!(c.vlmax_for(Sew::E16), 32);
        assert_eq!(c.vlmax_for(Sew::E32), 16);
        // A full register's worth of elements is one cycle at any SEW.
        assert_eq!(c.occupancy_sew(64, Sew::E8), 1);
        assert_eq!(c.occupancy_sew(32, Sew::E16), 1);
        assert_eq!(c.occupancy_sew(16, Sew::E32), 1);
        // Beyond one register the occupancy grows per group register.
        assert_eq!(c.occupancy_sew(65, Sew::E8), 2);
        assert_eq!(c.occupancy_sew(128, Sew::E16), 4);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn with_vlen_validates() {
        let _ = SimConfig::table_i().with_vlen(100);
    }

    #[test]
    fn display_mentions_key_parameters() {
        let s = SimConfig::table_i().to_string();
        assert!(s.contains("8-way-issue"));
        assert!(s.contains("512-bit"));
        assert!(s.contains("DDR4-2400"));
        assert!(s.contains("inorder"));
    }

    #[test]
    fn timing_kind_round_trips_through_names() {
        for k in TimingKind::ALL {
            assert_eq!(k.name().parse::<TimingKind>().unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!("in-order".parse::<TimingKind>(), Ok(TimingKind::InOrder));
        assert_eq!(
            "out-of-order".parse::<TimingKind>(),
            Ok(TimingKind::OutOfOrder)
        );
        assert!("speculative".parse::<TimingKind>().is_err());
    }

    #[test]
    fn with_timing_changes_equality() {
        // The warm-simulator path rebuilds on config inequality; backend
        // selection must participate.
        let base = SimConfig::table_i();
        assert_eq!(
            base.timing,
            TimingKind::InOrder,
            "paper numbers stay pinned"
        );
        let ooo = base.with_timing(TimingKind::OutOfOrder);
        assert_ne!(base, ooo);
    }
}
