//! Functional (architecturally exact) execution of one instruction.
//!
//! The executor mutates [`ArchState`] and [`MainMemory`] and returns an
//! [`ExecEvent`] describing what happened — memory addresses touched,
//! the dynamically-selected indirect register of `vindexmac`, branch
//! outcome — which is exactly the information the timing model needs.
//!
//! Vector semantics are **SEW-parametric**: `vsetvli` selects e8/e16/e32
//! and every lane operation views the byte-addressed VRF at that width.
//! The custom `vindexmac`/`vindexmac.vvi` MACs are *widening* at the
//! integer widths — i8×i8 (or i16×i16) products accumulate into e32
//! lanes, so the destination spans `32/SEW` times as many registers as
//! its sources — and remain the paper's fp32 semantics at e32.

// Lockstep `for i in 0..vl` lane loops mirror the hardware semantics and
// keep source/destination aliasing explicit; iterator forms obscure that.
#![allow(clippy::needless_range_loop)]

use crate::checks::{
    check_branch_target, check_e32_only, check_element_width, check_group,
    check_grouping_supported, check_sew_supported, check_slot, check_vector_alignment,
    check_widening_dst, group_aware, group_regs,
};
use crate::state::{sign_extend, ArchState};
use indexmac_isa::{Instruction, Sew, VReg, VType};
use indexmac_mem::MainMemory;
use std::error::Error;
use std::fmt;

/// Largest supported per-register lane count (bounds the stack scratch
/// buffers): a 4096-bit VLEN register holds 512 e8 lanes.
pub const MAX_VLMAX: usize = 512;

/// Largest supported grouped vector length (`LMUL=4` × [`MAX_VLMAX`]).
pub const MAX_GROUP_LANES: usize = 4 * MAX_VLMAX;

/// A memory operation performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Starting byte address.
    pub addr: u64,
    /// Access footprint in bytes.
    pub bytes: u64,
    /// Whether the access writes.
    pub write: bool,
    /// Whether it uses the vector (direct-to-L2) port.
    pub vector: bool,
}

/// Dynamic outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecEvent {
    /// Slot of the executed instruction.
    pub pc: usize,
    /// The instruction itself.
    pub instr: Instruction,
    /// Memory operation, if any.
    pub mem: Option<MemOp>,
    /// The VRF register selected through `rs` by `vindexmac.vx` — the
    /// indirect read that has no static encoding.
    pub indirect_vreg: Option<VReg>,
    /// Whether a branch was taken.
    pub branch_taken: bool,
    /// Active `vl` when the instruction executed.
    pub vl: usize,
    /// Active element width when the instruction executed (the granted
    /// width for `vsetvli`). Drives elements-per-cycle in the timing
    /// model and the widening-destination register count.
    pub sew: Sew,
}

/// Functional-execution errors (all indicate kernel/program bugs, not
/// data-dependent conditions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A vector memory access was not element-aligned.
    Unaligned {
        /// Slot of the faulting instruction.
        pc: usize,
        /// The faulting address.
        addr: u64,
    },
    /// `vsetvli` requested an element width outside the executable
    /// subset (e64 — the datapath models e8/e16/e32).
    UnsupportedSew {
        /// Slot of the faulting instruction.
        pc: usize,
    },
    /// An instruction with no semantics at the active element width
    /// executed (float arithmetic at e8/e16, or an element load/store
    /// whose width disagrees with `vtype.sew`).
    IllegalSewForOp {
        /// Slot of the faulting instruction.
        pc: usize,
        /// The active element width.
        sew: Sew,
    },
    /// A widening MAC destination group was illegal: at e8/e16 the
    /// accumulator spans `32/SEW` registers per source register, its
    /// base must be a multiple of that factor, and the whole group may
    /// not exceed the largest modelled grouping (`m4` — the same bound
    /// the layout planner enforces as `lmul * 32/SEW <= 4`).
    IllegalWidening {
        /// Slot of the faulting instruction.
        pc: usize,
        /// The active element width.
        sew: Sew,
        /// The misaligned destination base register.
        vd: u8,
    },
    /// A branch target or fall-through left the program.
    PcOutOfRange {
        /// The out-of-range target.
        target: i64,
    },
    /// A vector instruction without register-grouping semantics executed
    /// while `vl` exceeded the single-register VLMAX (i.e. under
    /// `LMUL > 1`). Only the grouped subset (unit-stride loads/stores,
    /// `vindexmac.vvi` and the element-0 moves) may run grouped.
    GroupingUnsupported {
        /// Slot of the faulting instruction.
        pc: usize,
    },
    /// A register-group operand would run past `v31`.
    GroupOutOfRange {
        /// Slot of the faulting instruction.
        pc: usize,
        /// First register of the group.
        base: u8,
        /// Registers the group needs.
        regs: usize,
    },
    /// A `vindexmac.vvi` slot immediate addressed past the metadata
    /// register's lanes.
    SlotOutOfRange {
        /// Slot of the faulting instruction.
        pc: usize,
        /// The requested element.
        slot: u8,
        /// Lanes per (single) vector register at the active SEW.
        vlmax: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Unaligned { pc, addr } => {
                write!(f, "unaligned vector access at pc {pc}: address {addr:#x}")
            }
            ExecError::UnsupportedSew { pc } => {
                write!(f, "unsupported SEW at pc {pc} (model executes e8/e16/e32)")
            }
            ExecError::IllegalSewForOp { pc, sew } => {
                write!(f, "instruction at pc {pc} has no semantics at {sew}")
            }
            ExecError::IllegalWidening { pc, sew, vd } => {
                write!(
                    f,
                    "widening MAC at pc {pc}: destination v{vd} group illegal at {sew} \
                     (misaligned, or wider than the m4 grouping cap)"
                )
            }
            ExecError::PcOutOfRange { target } => write!(f, "control transfer to slot {target}"),
            ExecError::GroupingUnsupported { pc } => {
                write!(
                    f,
                    "instruction at pc {pc} has no register-grouping semantics (vl > VLMAX)"
                )
            }
            ExecError::GroupOutOfRange { pc, base, regs } => {
                write!(f, "register group v{base}+{regs} at pc {pc} runs past v31")
            }
            ExecError::SlotOutOfRange { pc, slot, vlmax } => {
                write!(
                    f,
                    "vindexmac.vvi slot {slot} at pc {pc} exceeds the register lanes ({vlmax})"
                )
            }
        }
    }
}

impl Error for ExecError {}

#[inline]
fn f(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// Executes a unit-stride vector load of `vl` elements of width `ew`.
fn exec_vload(
    state: &mut ArchState,
    mem: &MainMemory,
    pc: usize,
    vd: VReg,
    addr: u64,
    ew: Sew,
) -> Result<MemOp, ExecError> {
    let sew = state.vtype().sew;
    check_element_width(pc, sew, ew)?;
    let eb = ew.bytes() as u64;
    check_vector_alignment(pc, addr, eb)?;
    let vl = state.vl();
    let regs = group_regs(vl, state.vlmax());
    check_group(pc, vd, regs)?;
    for i in 0..vl {
        let a = addr + i as u64 * eb;
        let bits = match ew {
            Sew::E8 => mem.read_u8(a) as u32,
            Sew::E16 => mem.read_u16(a) as u32,
            _ => mem.read_u32(a),
        };
        state.set_v_lane_group(vd, regs, i, ew, bits);
    }
    Ok(MemOp {
        addr,
        bytes: vl as u64 * eb,
        write: false,
        vector: true,
    })
}

/// Executes a unit-stride vector store of `vl` elements of width `ew`.
fn exec_vstore(
    state: &mut ArchState,
    mem: &mut MainMemory,
    pc: usize,
    vs3: VReg,
    addr: u64,
    ew: Sew,
) -> Result<MemOp, ExecError> {
    let sew = state.vtype().sew;
    check_element_width(pc, sew, ew)?;
    let eb = ew.bytes() as u64;
    check_vector_alignment(pc, addr, eb)?;
    let vl = state.vl();
    let regs = group_regs(vl, state.vlmax());
    check_group(pc, vs3, regs)?;
    for i in 0..vl {
        let a = addr + i as u64 * eb;
        let bits = state.v_lane_group(vs3, regs, i, ew);
        match ew {
            Sew::E8 => mem.write_u8(a, bits as u8),
            Sew::E16 => mem.write_u16(a, bits as u16),
            _ => mem.write_u32(a, bits),
        }
    }
    Ok(MemOp {
        addr,
        bytes: vl as u64 * eb,
        write: true,
        vector: true,
    })
}

pub use crate::checks::widen_factor;

/// The shared MAC body of `vindexmac.vx` / `vindexmac.vvi`: multiplies
/// the selected B-row register (group) by the scalar `multiplier` lane
/// and accumulates into `vd`. At e32 the arithmetic is fp32 on same-width
/// lanes; at e8/e16 it is a **widening** integer MAC whose destination
/// group spans `widen_factor(sew)` times as many registers.
fn exec_indexmac_body(
    state: &mut ArchState,
    pc: usize,
    vd: VReg,
    src: VReg,
    multiplier_bits: u32,
) -> Result<(), ExecError> {
    let sew = state.vtype().sew;
    let vl = state.vl();
    let regs = group_regs(vl, state.vlmax());
    check_group(pc, src, regs)?;
    let mut a = [0u32; MAX_GROUP_LANES];
    for i in 0..vl {
        a[i] = state.v_lane_group(src, regs, i, sew);
    }
    if sew == Sew::E32 {
        check_group(pc, vd, regs)?;
        let multiplier = f(multiplier_bits);
        for i in 0..vl {
            let d = f(state.v_lane_group(vd, regs, i, Sew::E32));
            state.set_v_lane_group(vd, regs, i, Sew::E32, (d + multiplier * f(a[i])).to_bits());
        }
    } else {
        // Widening integer MAC: i8/i16 operands, i32 accumulation.
        let dst_regs = check_widening_dst(pc, sew, vd, regs)?;
        check_group(pc, vd, dst_regs)?;
        let multiplier = sign_extend(multiplier_bits, sew);
        for i in 0..vl {
            let d = state.v_lane_group(vd, dst_regs, i, Sew::E32) as i32;
            let prod = multiplier.wrapping_mul(sign_extend(a[i], sew));
            state.set_v_lane_group(vd, dst_regs, i, Sew::E32, d.wrapping_add(prod) as u32);
        }
    }
    Ok(())
}

/// Executes one instruction, advancing `state.pc`.
///
/// # Errors
///
/// See [`ExecError`].
pub fn step(
    state: &mut ArchState,
    mem: &mut MainMemory,
    instr: &Instruction,
) -> Result<ExecEvent, ExecError> {
    use Instruction::*;
    let pc = state.pc;
    let vl = state.vl();
    let sew = state.vtype().sew;
    let mut ev = ExecEvent {
        pc,
        instr: *instr,
        mem: None,
        indirect_vreg: None,
        branch_taken: false,
        vl,
        sew,
    };
    let mut next_pc = pc as i64 + 1;

    if instr.is_vector() && !group_aware(instr) {
        check_grouping_supported(pc, vl, state.vlmax())?;
    }
    // Element-wise float semantics exist only at e32.
    let require_e32 = |pc: usize| check_e32_only(pc, sew);
    // Lane mask of the active element width for modular integer math.
    let lane_mask: u32 = (u64::MAX >> (64 - sew.bits())) as u32;

    match *instr {
        Li { rd, imm } => state.set_x(rd, imm as u64),
        Mv { rd, rs } => {
            let v = state.x(rs);
            state.set_x(rd, v);
        }
        Addi { rd, rs1, imm } => {
            let v = state.x(rs1).wrapping_add(imm as i64 as u64);
            state.set_x(rd, v);
        }
        Add { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_add(state.x(rs2));
            state.set_x(rd, v);
        }
        Sub { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_sub(state.x(rs2));
            state.set_x(rd, v);
        }
        Mul { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_mul(state.x(rs2));
            state.set_x(rd, v);
        }
        Slli { rd, rs1, shamt } => {
            let v = state.x(rs1) << (shamt & 63);
            state.set_x(rd, v);
        }
        Srli { rd, rs1, shamt } => {
            let v = state.x(rs1) >> (shamt & 63);
            state.set_x(rd, v);
        }
        Lw { rd, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            let v = mem.read_u32(addr) as i32 as i64 as u64;
            state.set_x(rd, v);
            ev.mem = Some(MemOp {
                addr,
                bytes: 4,
                write: false,
                vector: false,
            });
        }
        Lwu { rd, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            let v = mem.read_u32(addr) as u64;
            state.set_x(rd, v);
            ev.mem = Some(MemOp {
                addr,
                bytes: 4,
                write: false,
                vector: false,
            });
        }
        Ld { rd, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            let v = mem.read_u64(addr);
            state.set_x(rd, v);
            ev.mem = Some(MemOp {
                addr,
                bytes: 8,
                write: false,
                vector: false,
            });
        }
        Sw { rs2, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            mem.write_u32(addr, state.x(rs2) as u32);
            ev.mem = Some(MemOp {
                addr,
                bytes: 4,
                write: true,
                vector: false,
            });
        }
        Sd { rs2, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            mem.write_u64(addr, state.x(rs2));
            ev.mem = Some(MemOp {
                addr,
                bytes: 8,
                write: true,
                vector: false,
            });
        }
        Beq { rs1, rs2, offset } => {
            if state.x(rs1) == state.x(rs2) {
                ev.branch_taken = true;
                next_pc = pc as i64 + offset as i64;
            }
        }
        Bne { rs1, rs2, offset } => {
            if state.x(rs1) != state.x(rs2) {
                ev.branch_taken = true;
                next_pc = pc as i64 + offset as i64;
            }
        }
        Blt { rs1, rs2, offset } => {
            if (state.x(rs1) as i64) < (state.x(rs2) as i64) {
                ev.branch_taken = true;
                next_pc = pc as i64 + offset as i64;
            }
        }
        Bge { rs1, rs2, offset } => {
            if (state.x(rs1) as i64) >= (state.x(rs2) as i64) {
                ev.branch_taken = true;
                next_pc = pc as i64 + offset as i64;
            }
        }
        Jal { rd, offset } => {
            // Link value is the next slot (the model's PC unit is slots).
            state.set_x(rd, (pc + 1) as u64);
            ev.branch_taken = true;
            next_pc = pc as i64 + offset as i64;
        }
        Nop => {}
        Halt => {
            state.halted = true;
        }
        Flw { fd, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            state.set_f_bits(fd, mem.read_u32(addr));
            ev.mem = Some(MemOp {
                addr,
                bytes: 4,
                write: false,
                vector: false,
            });
        }
        Vsetvli {
            rd,
            rs1,
            sew: new_sew,
            lmul,
        } => {
            check_sew_supported(pc, new_sew)?;
            state.set_vtype(VType { sew: new_sew, lmul });
            let vlmax = state.vlmax_grouped();
            let avl = if rs1.is_zero() {
                if rd.is_zero() {
                    state.vl()
                } else {
                    vlmax
                }
            } else {
                state.x(rs1) as usize
            };
            let vl = avl.min(vlmax);
            state.set_vl(vl);
            state.set_x(rd, vl as u64);
            ev.vl = vl;
            ev.sew = new_sew;
        }
        Vle8 { vd, rs1 } => {
            let addr = state.x(rs1);
            ev.mem = Some(exec_vload(state, mem, pc, vd, addr, Sew::E8)?);
        }
        Vle16 { vd, rs1 } => {
            let addr = state.x(rs1);
            ev.mem = Some(exec_vload(state, mem, pc, vd, addr, Sew::E16)?);
        }
        Vle32 { vd, rs1 } => {
            let addr = state.x(rs1);
            ev.mem = Some(exec_vload(state, mem, pc, vd, addr, Sew::E32)?);
        }
        Vse8 { vs3, rs1 } => {
            let addr = state.x(rs1);
            ev.mem = Some(exec_vstore(state, mem, pc, vs3, addr, Sew::E8)?);
        }
        Vse16 { vs3, rs1 } => {
            let addr = state.x(rs1);
            ev.mem = Some(exec_vstore(state, mem, pc, vs3, addr, Sew::E16)?);
        }
        Vse32 { vs3, rs1 } => {
            let addr = state.x(rs1);
            ev.mem = Some(exec_vstore(state, mem, pc, vs3, addr, Sew::E32)?);
        }
        VaddVv { vd, vs2, vs1 } => {
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
                b[i] = state.v_lane(vs1, i, sew);
            }
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, a[i].wrapping_add(b[i]) & lane_mask);
            }
        }
        VaddVx { vd, vs2, rs1 } => {
            let s = state.x(rs1) as u32 & lane_mask;
            let mut a = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
            }
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, a[i].wrapping_add(s) & lane_mask);
            }
        }
        VaddVi { vd, vs2, imm } => {
            let s = imm as i32 as u32 & lane_mask;
            let mut a = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
            }
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, a[i].wrapping_add(s) & lane_mask);
            }
        }
        VmulVv { vd, vs2, vs1 } => {
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
                b[i] = state.v_lane(vs1, i, sew);
            }
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, a[i].wrapping_mul(b[i]) & lane_mask);
            }
        }
        VmulVx { vd, vs2, rs1 } => {
            let s = state.x(rs1) as u32 & lane_mask;
            let mut a = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
            }
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, a[i].wrapping_mul(s) & lane_mask);
            }
        }
        VmaccVx { vd, rs1, vs2 } => {
            let s = state.x(rs1) as u32 & lane_mask;
            let mut a = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
            }
            for i in 0..vl {
                let d = state.v_lane(vd, i, sew);
                state.set_v_lane(vd, i, sew, d.wrapping_add(s.wrapping_mul(a[i])) & lane_mask);
            }
        }
        VfaddVv { vd, vs2, vs1 } => {
            require_e32(pc)?;
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
                b[i] = state.v_lane(vs1, i, sew);
            }
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, (f(a[i]) + f(b[i])).to_bits());
            }
        }
        VfmulVv { vd, vs2, vs1 } => {
            require_e32(pc)?;
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
                b[i] = state.v_lane(vs1, i, sew);
            }
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, (f(a[i]) * f(b[i])).to_bits());
            }
        }
        VfmaccVf { vd, fs1, vs2 } => {
            require_e32(pc)?;
            let s = state.f32(fs1);
            let mut a = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
            }
            for i in 0..vl {
                let d = f(state.v_lane(vd, i, sew));
                state.set_v_lane(vd, i, sew, (d + s * f(a[i])).to_bits());
            }
        }
        VfmaccVv { vd, vs1, vs2 } => {
            require_e32(pc)?;
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
                b[i] = state.v_lane(vs1, i, sew);
            }
            for i in 0..vl {
                let d = f(state.v_lane(vd, i, sew));
                state.set_v_lane(vd, i, sew, (d + f(b[i]) * f(a[i])).to_bits());
            }
        }
        VmvVv { vd, vs1 } => {
            let mut a = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs1, i, sew);
            }
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, a[i]);
            }
        }
        VmvVx { vd, rs1 } => {
            let s = state.x(rs1) as u32 & lane_mask;
            for i in 0..vl {
                state.set_v_lane(vd, i, sew, s);
            }
        }
        VmvXs { rd, vs2 } => {
            let v = sign_extend(state.v_lane(vs2, 0, sew), sew) as i64 as u64;
            state.set_x(rd, v);
        }
        VmvSx { vd, rs1 } => {
            let s = state.x(rs1) as u32 & lane_mask;
            state.set_v_lane(vd, 0, sew, s);
        }
        VfmvFs { fd, vs2 } => {
            require_e32(pc)?;
            let bits = state.v_lane(vs2, 0, Sew::E32);
            state.set_f_bits(fd, bits);
        }
        Vslide1downVx { vd, vs2, rs1 } => {
            let s = state.x(rs1) as u32 & lane_mask;
            let mut a = [0u32; MAX_VLMAX];
            for i in 0..vl {
                a[i] = state.v_lane(vs2, i, sew);
            }
            if vl > 0 {
                for i in 0..vl - 1 {
                    state.set_v_lane(vd, i, sew, a[i + 1]);
                }
                state.set_v_lane(vd, vl - 1, sew, s);
            }
        }
        VslidedownVi { vd, vs2, imm } => {
            let off = imm as usize;
            let vlmax = state.vlmax();
            let mut a = [0u32; MAX_VLMAX];
            for i in 0..vlmax {
                a[i] = state.v_lane(vs2, i, sew);
            }
            for i in 0..vl {
                let v = if i + off < vlmax { a[i + off] } else { 0 };
                state.set_v_lane(vd, i, sew, v);
            }
        }
        VindexmacVx { vd, vs2, rs } => {
            // The architectural definition of the paper (at e32):
            //   vd[i] += vs2[0] * vrf[rs[4:0]][i]
            // At e8/e16 the product widens into e32 accumulator lanes.
            let src = VReg::new((state.x(rs) & 0x1F) as u8);
            let multiplier_bits = state.v_lane(vs2, 0, sew);
            exec_indexmac_body(state, pc, vd, src, multiplier_bits)?;
            ev.indirect_vreg = Some(src);
        }
        VindexmacVvi { vd, vs2, vs1, slot } => {
            // Second-generation definition (after arXiv 2501.10189):
            //   vd[i] += vs2[slot] * vrf[vs1[slot][4:0]][i]
            // The slot element is read from the *single* metadata
            // registers; vd and the indirect source span the whole
            // register group when vl > VLMAX, and vd additionally
            // widens at the integer element widths.
            check_slot(pc, slot, state.vlmax())?;
            let slot = slot as usize;
            let src = VReg::new((state.v_lane(vs1, slot, sew) & 0x1F) as u8);
            let multiplier_bits = state.v_lane(vs2, slot, sew);
            exec_indexmac_body(state, pc, vd, src, multiplier_bits)?;
            ev.indirect_vreg = Some(src);
        }
    }

    check_branch_target(next_pc)?;
    state.pc = next_pc as usize;
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_isa::instr::FReg;
    use indexmac_isa::{Lmul, XReg};

    fn setup() -> (ArchState, MainMemory) {
        (ArchState::new(512), MainMemory::new())
    }

    fn run1(s: &mut ArchState, m: &mut MainMemory, i: Instruction) -> ExecEvent {
        step(s, m, &i).expect("instruction must execute")
    }

    fn set_sew(s: &mut ArchState, sew: Sew) {
        s.set_vtype(VType {
            sew,
            lmul: Lmul::M1,
        });
        s.set_vl(s.vlmax());
    }

    #[test]
    fn scalar_arith() {
        let (mut s, mut m) = setup();
        run1(
            &mut s,
            &mut m,
            Instruction::Li {
                rd: XReg::T0,
                imm: -3,
            },
        );
        run1(
            &mut s,
            &mut m,
            Instruction::Addi {
                rd: XReg::T1,
                rs1: XReg::T0,
                imm: 5,
            },
        );
        assert_eq!(s.x(XReg::T1), 2);
        run1(
            &mut s,
            &mut m,
            Instruction::Slli {
                rd: XReg::T2,
                rs1: XReg::T1,
                shamt: 4,
            },
        );
        assert_eq!(s.x(XReg::T2), 32);
        run1(
            &mut s,
            &mut m,
            Instruction::Mul {
                rd: XReg::T3,
                rs1: XReg::T2,
                rs2: XReg::T2,
            },
        );
        assert_eq!(s.x(XReg::T3), 1024);
        run1(
            &mut s,
            &mut m,
            Instruction::Sub {
                rd: XReg::T4,
                rs1: XReg::T0,
                rs2: XReg::T1,
            },
        );
        assert_eq!(s.x(XReg::T4) as i64, -5);
        assert_eq!(s.pc, 5);
    }

    #[test]
    fn loads_sign_extension() {
        let (mut s, mut m) = setup();
        m.write_u32(0x100, 0xFFFF_FFFE); // -2 as i32
        s.set_x(XReg::A0, 0x100);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Lw {
                rd: XReg::T0,
                rs1: XReg::A0,
                imm: 0,
            },
        );
        assert_eq!(s.x(XReg::T0) as i64, -2);
        assert_eq!(
            ev.mem,
            Some(MemOp {
                addr: 0x100,
                bytes: 4,
                write: false,
                vector: false
            })
        );
        run1(
            &mut s,
            &mut m,
            Instruction::Lwu {
                rd: XReg::T1,
                rs1: XReg::A0,
                imm: 0,
            },
        );
        assert_eq!(s.x(XReg::T1), 0xFFFF_FFFE);
    }

    #[test]
    fn store_then_load() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::T0, 0xABCD);
        s.set_x(XReg::A0, 0x200);
        run1(
            &mut s,
            &mut m,
            Instruction::Sd {
                rs2: XReg::T0,
                rs1: XReg::A0,
                imm: 8,
            },
        );
        run1(
            &mut s,
            &mut m,
            Instruction::Ld {
                rd: XReg::T1,
                rs1: XReg::A0,
                imm: 8,
            },
        );
        assert_eq!(s.x(XReg::T1), 0xABCD);
    }

    #[test]
    fn branches() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::T0, 1);
        s.pc = 10;
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Bne {
                rs1: XReg::T0,
                rs2: XReg::ZERO,
                offset: -5,
            },
        );
        assert!(ev.branch_taken);
        assert_eq!(s.pc, 5);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Beq {
                rs1: XReg::T0,
                rs2: XReg::ZERO,
                offset: -5,
            },
        );
        assert!(!ev.branch_taken);
        assert_eq!(s.pc, 6);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Jal {
                rd: XReg::RA,
                offset: 3,
            },
        );
        assert!(ev.branch_taken);
        assert_eq!(s.pc, 9);
        assert_eq!(s.x(XReg::RA), 7);
    }

    #[test]
    fn pc_underflow_detected() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::T0, 1);
        s.pc = 0;
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Bne {
                rs1: XReg::T0,
                rs2: XReg::ZERO,
                offset: -5,
            },
        );
        assert!(matches!(r, Err(ExecError::PcOutOfRange { target: -5 })));
    }

    fn vsetvli_m1(rd: XReg, rs1: XReg) -> Instruction {
        Instruction::Vsetvli {
            rd,
            rs1,
            sew: Sew::E32,
            lmul: Lmul::M1,
        }
    }

    #[test]
    fn vsetvli_rules() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::A0, 100);
        run1(&mut s, &mut m, vsetvli_m1(XReg::T0, XReg::A0));
        assert_eq!(s.vl(), 16);
        assert_eq!(s.x(XReg::T0), 16);
        s.set_x(XReg::A0, 7);
        run1(&mut s, &mut m, vsetvli_m1(XReg::T0, XReg::A0));
        assert_eq!(s.vl(), 7);
        // rs1=x0, rd!=x0 -> VLMAX.
        run1(&mut s, &mut m, vsetvli_m1(XReg::T0, XReg::ZERO));
        assert_eq!(s.vl(), 16);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::ZERO,
                sew: Sew::E64,
                lmul: Lmul::M1,
            },
        );
        assert!(matches!(r, Err(ExecError::UnsupportedSew { .. })));
    }

    #[test]
    fn vsetvli_narrow_sews_scale_vl() {
        // vl = LMUL * VLEN / SEW: 64 at e8, 32 at e16 for a 512-bit VLEN.
        let (mut s, mut m) = setup();
        s.set_x(XReg::A0, 1000);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                sew: Sew::E8,
                lmul: Lmul::M1,
            },
        );
        assert_eq!(s.vl(), 64);
        assert_eq!(s.x(XReg::T0), 64);
        assert_eq!(ev.sew, Sew::E8);
        run1(
            &mut s,
            &mut m,
            Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                sew: Sew::E16,
                lmul: Lmul::M1,
            },
        );
        assert_eq!(s.vl(), 32);
        run1(
            &mut s,
            &mut m,
            Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                sew: Sew::E16,
                lmul: Lmul::M2,
            },
        );
        assert_eq!(s.vl(), 64);
    }

    #[test]
    fn vsetvli_grants_grouped_vl() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::A0, 100);
        run1(
            &mut s,
            &mut m,
            Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                sew: Sew::E32,
                lmul: Lmul::M2,
            },
        );
        assert_eq!(s.vl(), 32);
        assert_eq!(s.x(XReg::T0), 32);
        // rs1=x0, rd!=x0 -> grouped VLMAX.
        run1(
            &mut s,
            &mut m,
            Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::ZERO,
                sew: Sew::E32,
                lmul: Lmul::M4,
            },
        );
        assert_eq!(s.vl(), 64);
    }

    #[test]
    fn vector_load_store_roundtrip() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..16).map(|i| i as f32 * 1.5).collect();
        m.write_f32_slice(0x1000, &data);
        s.set_x(XReg::A0, 0x1000);
        s.set_x(XReg::A1, 0x2000);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Vle32 {
                vd: VReg::V1,
                rs1: XReg::A0,
            },
        );
        assert_eq!(ev.mem.unwrap().bytes, 64);
        assert!(ev.mem.unwrap().vector);
        assert_eq!(ev.sew, Sew::E32);
        run1(
            &mut s,
            &mut m,
            Instruction::Vse32 {
                vs3: VReg::V1,
                rs1: XReg::A1,
            },
        );
        assert_eq!(m.read_f32_slice(0x2000, 16), data);
    }

    #[test]
    fn narrow_load_store_roundtrip() {
        let (mut s, mut m) = setup();
        for i in 0..64u64 {
            m.write_u8(0x1000 + i, (i as u8).wrapping_mul(3).wrapping_sub(90));
        }
        set_sew(&mut s, Sew::E8);
        assert_eq!(s.vl(), 64);
        s.set_x(XReg::A0, 0x1000);
        s.set_x(XReg::A1, 0x2000);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Vle8 {
                vd: VReg::V3,
                rs1: XReg::A0,
            },
        );
        assert_eq!(ev.mem.unwrap().bytes, 64, "64 one-byte elements");
        assert_eq!(ev.sew, Sew::E8);
        run1(
            &mut s,
            &mut m,
            Instruction::Vse8 {
                vs3: VReg::V3,
                rs1: XReg::A1,
            },
        );
        for i in 0..64u64 {
            assert_eq!(m.read_u8(0x2000 + i), m.read_u8(0x1000 + i));
        }
        // e16: 32 elements, 64 bytes.
        set_sew(&mut s, Sew::E16);
        assert_eq!(s.vl(), 32);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Vle16 {
                vd: VReg::V4,
                rs1: XReg::A0,
            },
        );
        assert_eq!(ev.mem.unwrap().bytes, 64);
        run1(
            &mut s,
            &mut m,
            Instruction::Vse16 {
                vs3: VReg::V4,
                rs1: XReg::A1,
            },
        );
        assert_eq!(m.read_u16(0x2000), m.read_u16(0x1000));
    }

    #[test]
    fn element_width_must_match_sew() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::A0, 0x1000);
        // vle8 at the default e32 vtype faults.
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vle8 {
                vd: VReg::V1,
                rs1: XReg::A0,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::IllegalSewForOp { sew: Sew::E32, .. })
        ));
        // vle32 at e8 faults too.
        set_sew(&mut s, Sew::E8);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vle32 {
                vd: VReg::V1,
                rs1: XReg::A0,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::IllegalSewForOp { sew: Sew::E8, .. })
        ));
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vse16 {
                vs3: VReg::V1,
                rs1: XReg::A0,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::IllegalSewForOp { sew: Sew::E8, .. })
        ));
    }

    #[test]
    fn float_ops_require_e32() {
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E8);
        for i in [
            Instruction::VfaddVv {
                vd: VReg::V1,
                vs2: VReg::V2,
                vs1: VReg::V3,
            },
            Instruction::VfmulVv {
                vd: VReg::V1,
                vs2: VReg::V2,
                vs1: VReg::V3,
            },
            Instruction::VfmaccVf {
                vd: VReg::V1,
                fs1: FReg::F0,
                vs2: VReg::V2,
            },
            Instruction::VfmaccVv {
                vd: VReg::V1,
                vs1: VReg::V2,
                vs2: VReg::V3,
            },
            Instruction::VfmvFs {
                fd: FReg::F0,
                vs2: VReg::V2,
            },
        ] {
            let r = step(&mut s, &mut m, &i);
            assert!(
                matches!(r, Err(ExecError::IllegalSewForOp { sew: Sew::E8, .. })),
                "{i} must fault at e8"
            );
        }
    }

    #[test]
    fn vector_load_respects_vl() {
        let (mut s, mut m) = setup();
        m.write_f32_slice(0x1000, &[9.0; 16]);
        s.set_v_f32(VReg::V1, &[1.0; 16]);
        s.set_vl(4);
        s.set_x(XReg::A0, 0x1000);
        run1(
            &mut s,
            &mut m,
            Instruction::Vle32 {
                vd: VReg::V1,
                rs1: XReg::A0,
            },
        );
        // Tail is undisturbed.
        assert_eq!(s.v_f32(VReg::V1, 3), 9.0);
        assert_eq!(s.v_f32(VReg::V1, 4), 1.0);
    }

    #[test]
    fn unaligned_vector_access_faults() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::A0, 0x1001);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vle32 {
                vd: VReg::V1,
                rs1: XReg::A0,
            },
        );
        assert!(matches!(r, Err(ExecError::Unaligned { addr: 0x1001, .. })));
        // Byte elements have no alignment constraint.
        set_sew(&mut s, Sew::E8);
        assert!(step(
            &mut s,
            &mut m,
            &Instruction::Vle8 {
                vd: VReg::V1,
                rs1: XReg::A0
            }
        )
        .is_ok());
        // 16-bit elements need 2-byte alignment.
        set_sew(&mut s, Sew::E16);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vle16 {
                vd: VReg::V1,
                rs1: XReg::A0,
            },
        );
        assert!(matches!(r, Err(ExecError::Unaligned { addr: 0x1001, .. })));
    }

    #[test]
    fn integer_vector_ops() {
        let (mut s, mut m) = setup();
        for i in 0..16 {
            s.set_v_lane(VReg::V1, i, Sew::E32, i as u32);
            s.set_v_lane(VReg::V2, i, Sew::E32, 10);
        }
        run1(
            &mut s,
            &mut m,
            Instruction::VaddVv {
                vd: VReg::V3,
                vs2: VReg::V1,
                vs1: VReg::V2,
            },
        );
        assert_eq!(s.v_lane(VReg::V3, 5, Sew::E32), 15);
        s.set_x(XReg::T0, 3);
        run1(
            &mut s,
            &mut m,
            Instruction::VmulVx {
                vd: VReg::V4,
                vs2: VReg::V1,
                rs1: XReg::T0,
            },
        );
        assert_eq!(s.v_lane(VReg::V4, 7, Sew::E32), 21);
        run1(
            &mut s,
            &mut m,
            Instruction::VmaccVx {
                vd: VReg::V4,
                rs1: XReg::T0,
                vs2: VReg::V2,
            },
        );
        assert_eq!(s.v_lane(VReg::V4, 7, Sew::E32), 21 + 30);
        run1(
            &mut s,
            &mut m,
            Instruction::VaddVi {
                vd: VReg::V5,
                vs2: VReg::V1,
                imm: -1,
            },
        );
        assert_eq!(s.v_lane(VReg::V5, 0, Sew::E32), u32::MAX);
    }

    #[test]
    fn integer_ops_wrap_at_the_element_width() {
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E8);
        s.set_v_lane(VReg::V1, 0, Sew::E8, 200);
        s.set_v_lane(VReg::V2, 0, Sew::E8, 100);
        run1(
            &mut s,
            &mut m,
            Instruction::VaddVv {
                vd: VReg::V3,
                vs2: VReg::V1,
                vs1: VReg::V2,
            },
        );
        assert_eq!(s.v_lane(VReg::V3, 0, Sew::E8), (200 + 100) & 0xFF);
        run1(
            &mut s,
            &mut m,
            Instruction::VmulVv {
                vd: VReg::V4,
                vs2: VReg::V1,
                vs1: VReg::V2,
            },
        );
        assert_eq!(s.v_lane(VReg::V4, 0, Sew::E8), (200u32 * 100) & 0xFF);
    }

    #[test]
    fn float_mac() {
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::V1, &[2.0; 16]);
        s.set_v_f32(VReg::V2, &[0.5; 16]);
        s.set_f_bits(FReg::F0, 3.0f32.to_bits());
        run1(
            &mut s,
            &mut m,
            Instruction::VfmaccVf {
                vd: VReg::V2,
                fs1: FReg::F0,
                vs2: VReg::V1,
            },
        );
        assert_eq!(s.v_f32(VReg::V2, 0), 0.5 + 3.0 * 2.0);
        run1(
            &mut s,
            &mut m,
            Instruction::VfmaccVv {
                vd: VReg::V2,
                vs1: VReg::V1,
                vs2: VReg::V1,
            },
        );
        assert_eq!(s.v_f32(VReg::V2, 0), 6.5 + 4.0);
    }

    #[test]
    fn slides() {
        let (mut s, mut m) = setup();
        let vals: Vec<f32> = (0..16).map(|i| i as f32).collect();
        s.set_v_f32(VReg::V1, &vals);
        s.set_x(XReg::T0, 99f32.to_bits() as u64);
        run1(
            &mut s,
            &mut m,
            Instruction::Vslide1downVx {
                vd: VReg::V1,
                vs2: VReg::V1,
                rs1: XReg::T0,
            },
        );
        assert_eq!(s.v_f32(VReg::V1, 0), 1.0);
        assert_eq!(s.v_f32(VReg::V1, 14), 15.0);
        assert_eq!(s.v_f32(VReg::V1, 15), 99.0);

        s.set_v_f32(VReg::V2, &vals);
        run1(
            &mut s,
            &mut m,
            Instruction::VslidedownVi {
                vd: VReg::V3,
                vs2: VReg::V2,
                imm: 4,
            },
        );
        assert_eq!(s.v_f32(VReg::V3, 0), 4.0);
        assert_eq!(s.v_f32(VReg::V3, 11), 15.0);
        assert_eq!(s.v_lane(VReg::V3, 12, Sew::E32), 0); // beyond vlmax reads as zero
    }

    #[test]
    fn slides_walk_narrow_lanes() {
        // The metadata walk of Algorithm 3 at e8: slide shifts 8-bit
        // lanes, so the next value/index lands in element 0.
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E8);
        for i in 0..64 {
            s.set_v_lane(VReg::V4, i, Sew::E8, i as u32 + 1);
        }
        run1(
            &mut s,
            &mut m,
            Instruction::Vslide1downVx {
                vd: VReg::V4,
                vs2: VReg::V4,
                rs1: XReg::ZERO,
            },
        );
        assert_eq!(s.v_lane(VReg::V4, 0, Sew::E8), 2);
        assert_eq!(s.v_lane(VReg::V4, 62, Sew::E8), 64);
        assert_eq!(s.v_lane(VReg::V4, 63, Sew::E8), 0);
    }

    #[test]
    fn cross_domain_moves() {
        let (mut s, mut m) = setup();
        s.set_v_lane(VReg::V1, 0, Sew::E32, 0xFFFF_FFF0); // negative as i32
        run1(
            &mut s,
            &mut m,
            Instruction::VmvXs {
                rd: XReg::T0,
                vs2: VReg::V1,
            },
        );
        assert_eq!(s.x(XReg::T0) as i64, -16);
        s.set_x(XReg::T1, 0x42);
        run1(
            &mut s,
            &mut m,
            Instruction::VmvSx {
                vd: VReg::V2,
                rs1: XReg::T1,
            },
        );
        assert_eq!(s.v_lane(VReg::V2, 0, Sew::E32), 0x42);
        run1(
            &mut s,
            &mut m,
            Instruction::VfmvFs {
                fd: FReg::F1,
                vs2: VReg::V1,
            },
        );
        assert_eq!(s.f_bits(FReg::F1), 0xFFFF_FFF0);
        run1(
            &mut s,
            &mut m,
            Instruction::VmvVx {
                vd: VReg::V3,
                rs1: XReg::T1,
            },
        );
        assert_eq!(s.v_lane(VReg::V3, 15, Sew::E32), 0x42);
    }

    #[test]
    fn vmv_xs_sign_extends_narrow_lanes() {
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E8);
        s.set_v_lane(VReg::V1, 0, Sew::E8, 0xFE); // -2 as i8
        run1(
            &mut s,
            &mut m,
            Instruction::VmvXs {
                rd: XReg::T0,
                vs2: VReg::V1,
            },
        );
        assert_eq!(s.x(XReg::T0) as i64, -2);
        set_sew(&mut s, Sew::E16);
        s.set_v_lane(VReg::V2, 0, Sew::E16, 0x8000);
        run1(
            &mut s,
            &mut m,
            Instruction::VmvXs {
                rd: XReg::T1,
                vs2: VReg::V2,
            },
        );
        assert_eq!(s.x(XReg::T1) as i64, -32768);
    }

    #[test]
    fn vindexmac_semantics() {
        let (mut s, mut m) = setup();
        // v20 holds a B row; v4 holds `values` with value 2.5 at elem 0;
        // v1 is the accumulator.
        s.set_v_f32(VReg::new(20), &[1.0, 2.0, 3.0, 4.0]);
        s.set_v_f32(VReg::V4, &[2.5, 0.0, 0.0, 0.0]);
        s.set_v_f32(VReg::V1, &[10.0, 10.0, 10.0, 10.0]);
        s.set_vl(4);
        s.set_x(XReg::T0, 20); // selects v20
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVx {
                vd: VReg::V1,
                vs2: VReg::V4,
                rs: XReg::T0,
            },
        );
        assert_eq!(ev.indirect_vreg, Some(VReg::new(20)));
        assert_eq!(s.v_as_f32(VReg::V1), vec![12.5, 15.0, 17.5, 20.0]);
        assert_eq!(ev.mem, None, "vindexmac must not touch memory");
    }

    #[test]
    fn vindexmac_uses_only_5_lsbs() {
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::new(3), &[1.0; 16]);
        s.set_v_f32(VReg::V4, &[1.0; 16]);
        s.set_x(XReg::T0, 32 + 3); // 5 LSBs = 3
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVx {
                vd: VReg::V1,
                vs2: VReg::V4,
                rs: XReg::T0,
            },
        );
        assert_eq!(s.v_f32(VReg::V1, 0), 1.0);
    }

    #[test]
    fn widening_vindexmac_i8_semantics() {
        // e8: 64 i8 lanes in the B-row register; the accumulator is the
        // 4-register group v0..v3 of 64 i32 lanes.
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E8);
        for i in 0..64 {
            s.set_v_lane(VReg::new(20), i, Sew::E8, (i as i32 - 32) as u32);
        }
        s.set_v_lane(VReg::V8, 0, Sew::E8, (-3i32) as u32); // value = -3
                                                            // Pre-existing accumulator values in the widened group.
        for i in 0..64 {
            s.set_v_lane_group(VReg::V0, 4, i, Sew::E32, 1000u32.wrapping_mul(i as u32));
        }
        s.set_x(XReg::T0, 20);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVx {
                vd: VReg::V0,
                vs2: VReg::V8,
                rs: XReg::T0,
            },
        );
        assert_eq!(ev.sew, Sew::E8);
        assert_eq!(ev.indirect_vreg, Some(VReg::new(20)));
        for i in 0..64 {
            let expect = (1000i32 * i as i32) + (-3) * (i as i32 - 32);
            assert_eq!(
                s.v_lane_group(VReg::V0, 4, i, Sew::E32) as i32,
                expect,
                "lane {i}"
            );
        }
        // Lane 16 of the accumulator lives in v1: the group widened.
        assert_eq!(
            s.v_lane(VReg::V1, 0, Sew::E32) as i32,
            16000 + (-3) * (16 - 32)
        );
    }

    #[test]
    fn widening_vindexmac_vvi_i16_semantics() {
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E16);
        assert_eq!(s.vl(), 32);
        for i in 0..32 {
            s.set_v_lane(VReg::new(20), i, Sew::E16, (100 + i as i32) as u32);
        }
        s.set_v_lane(VReg::V8, 2, Sew::E16, (-2i32) as u32); // values[2] = -2
        s.set_v_lane(VReg::new(10), 2, Sew::E16, 20); // col_idx[2] -> v20
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V8,
                vs1: VReg::new(10),
                slot: 2,
            },
        );
        assert_eq!(ev.indirect_vreg, Some(VReg::new(20)));
        for i in 0..32 {
            assert_eq!(
                s.v_lane_group(VReg::V0, 2, i, Sew::E32) as i32,
                -2 * (100 + i as i32),
                "lane {i}"
            );
        }
        // Accumulator spans v0v1 at e16 (widen factor 2).
        assert_eq!(s.v_lane(VReg::V1, 0, Sew::E32) as i32, -2 * 116);
    }

    #[test]
    fn widening_accumulation_wraps_i32() {
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E8);
        s.set_v_lane(VReg::new(20), 0, Sew::E8, 127);
        s.set_v_lane(VReg::V8, 0, Sew::E8, 127);
        for i in 0..64 {
            s.set_v_lane_group(VReg::V0, 4, i, Sew::E32, i32::MAX as u32);
        }
        s.set_x(XReg::T0, 20);
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVx {
                vd: VReg::V0,
                vs2: VReg::V8,
                rs: XReg::T0,
            },
        );
        assert_eq!(
            s.v_lane_group(VReg::V0, 4, 0, Sew::E32) as i32,
            i32::MAX.wrapping_add(127 * 127)
        );
    }

    #[test]
    fn widening_destination_must_be_aligned() {
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E8);
        s.set_x(XReg::T0, 20);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVx {
                vd: VReg::V1,
                vs2: VReg::V8,
                rs: XReg::T0,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::IllegalWidening {
                sew: Sew::E8,
                vd: 1,
                ..
            })
        ));
        // e16 widens by 2: odd destinations fault, even ones are fine.
        set_sew(&mut s, Sew::E16);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVx {
                vd: VReg::V3,
                vs2: VReg::V8,
                rs: XReg::T0,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::IllegalWidening {
                sew: Sew::E16,
                vd: 3,
                ..
            })
        ));
        assert!(step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVx {
                vd: VReg::V2,
                vs2: VReg::V8,
                rs: XReg::T0
            },
        )
        .is_ok());
    }

    #[test]
    fn widening_accumulator_group_capped_at_m4() {
        // Grouped narrow-SEW MACs whose widened destination would span
        // more than 4 registers describe hardware the model does not
        // have (the planner's `lmul * 32/SEW <= 4` bound); the executor
        // faults instead of simulating it.
        let (mut s, mut m) = setup();
        s.set_vtype(VType {
            sew: Sew::E8,
            lmul: Lmul::M2,
        });
        s.set_vl(128); // 2 e8 registers -> an 8-register e32 accumulator
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V8,
                vs1: VReg::new(9),
                slot: 0,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::IllegalWidening {
                sew: Sew::E8,
                vd: 0,
                ..
            })
        ));
        // e16,m2 widens to exactly m4: legal.
        s.set_vtype(VType {
            sew: Sew::E16,
            lmul: Lmul::M2,
        });
        s.set_vl(64);
        assert!(step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V8,
                vs1: VReg::new(9),
                slot: 0,
            },
        )
        .is_ok());
    }

    #[test]
    fn widening_destination_past_v31_faults() {
        let (mut s, mut m) = setup();
        set_sew(&mut s, Sew::E8);
        s.set_x(XReg::T0, 20);
        // v28 + 4 widened regs = v28..v31 fits; v29 is misaligned; the
        // aligned v28 is the last legal base... and v32 would overflow.
        assert!(step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVx {
                vd: VReg::new(28),
                vs2: VReg::V8,
                rs: XReg::T0
            },
        )
        .is_ok());
        set_sew(&mut s, Sew::E16);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVx {
                vd: VReg::new(31),
                vs2: VReg::V8,
                rs: XReg::T0,
            },
        );
        assert!(matches!(r, Err(ExecError::IllegalWidening { .. })));
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVvi {
                vd: VReg::new(30),
                vs2: VReg::V8,
                vs1: VReg::new(9),
                slot: 0,
            },
        );
        // v30 is 2-aligned but v30..v31 only fits one 2-wide group: ok.
        assert!(r.is_ok());
    }

    #[test]
    fn halt_sets_flag() {
        let (mut s, mut m) = setup();
        run1(&mut s, &mut m, Instruction::Halt);
        assert!(s.halted);
    }

    #[test]
    fn vindexmac_vvi_semantics() {
        let (mut s, mut m) = setup();
        // v20 holds a B row; v4 holds `values`; v8 holds register
        // indices; v1 is the accumulator. Slot 2 selects value 2.5 and
        // register 20 — no scalar register involved anywhere.
        s.set_v_f32(VReg::new(20), &[1.0, 2.0, 3.0, 4.0]);
        s.set_v_f32(VReg::V4, &[0.0, 0.0, 2.5, 0.0]);
        s.set_v_lane(VReg::V8, 2, Sew::E32, 20);
        s.set_v_f32(VReg::V1, &[10.0, 10.0, 10.0, 10.0]);
        s.set_vl(4);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi {
                vd: VReg::V1,
                vs2: VReg::V4,
                vs1: VReg::V8,
                slot: 2,
            },
        );
        assert_eq!(ev.indirect_vreg, Some(VReg::new(20)));
        assert_eq!(s.v_as_f32(VReg::V1), vec![12.5, 15.0, 17.5, 20.0]);
        assert_eq!(ev.mem, None, "vindexmac.vvi must not touch memory");
    }

    #[test]
    fn vindexmac_vvi_uses_only_5_lsbs_of_index() {
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::new(3), &[1.0; 16]);
        s.set_v_f32(VReg::V4, &[1.0; 16]);
        s.set_v_lane(VReg::V8, 0, Sew::E32, 32 + 3); // 5 LSBs = 3
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi {
                vd: VReg::V1,
                vs2: VReg::V4,
                vs1: VReg::V8,
                slot: 0,
            },
        );
        assert_eq!(s.v_f32(VReg::V1, 0), 1.0);
    }

    #[test]
    fn vindexmac_vvi_grouped_spans_registers() {
        let (mut s, mut m) = setup();
        // Under m2 the B "row" is the v20v21 group (32 lanes) and the
        // accumulator is the v0v1 group; metadata stays in single regs.
        s.set_vtype(indexmac_isa::VType {
            sew: Sew::E32,
            lmul: Lmul::M2,
        });
        s.set_vl(32);
        s.set_v_f32(VReg::new(20), &[2.0; 16]);
        s.set_v_f32(VReg::new(21), &[3.0; 16]);
        s.set_v_f32(VReg::V8, &[0.5; 16]); // values
        s.set_v_lane(VReg::new(12), 1, Sew::E32, 20); // colidx reg, slot 1 -> v20 group
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V8,
                vs1: VReg::new(12),
                slot: 1,
            },
        );
        assert_eq!(ev.vl, 32);
        assert_eq!(ev.indirect_vreg, Some(VReg::new(20)));
        assert_eq!(s.v_f32(VReg::V0, 15), 0.5 * 2.0);
        // Lane 16 of the group lives in v1 and took v21's data.
        assert_eq!(s.v_f32(VReg::V1, 0), 0.5 * 3.0);
        assert_eq!(s.v_f32(VReg::V1, 15), 0.5 * 3.0);
    }

    #[test]
    fn grouped_load_store_roundtrip() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        m.write_f32_slice(0x1000, &data);
        s.set_vtype(indexmac_isa::VType {
            sew: Sew::E32,
            lmul: Lmul::M2,
        });
        s.set_vl(32);
        s.set_x(XReg::A0, 0x1000);
        s.set_x(XReg::A1, 0x2000);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::Vle32 {
                vd: VReg::V2,
                rs1: XReg::A0,
            },
        );
        assert_eq!(ev.mem.unwrap().bytes, 128);
        assert_eq!(s.v_f32(VReg::V3, 0), 16.0, "second register of the group");
        run1(
            &mut s,
            &mut m,
            Instruction::Vse32 {
                vs3: VReg::V2,
                rs1: XReg::A1,
            },
        );
        assert_eq!(m.read_f32_slice(0x2000, 32), data);
    }

    #[test]
    fn ungrouped_ops_fault_under_grouping() {
        let (mut s, mut m) = setup();
        s.set_vtype(indexmac_isa::VType {
            sew: Sew::E32,
            lmul: Lmul::M2,
        });
        s.set_vl(32);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VfaddVv {
                vd: VReg::V0,
                vs2: VReg::V2,
                vs1: VReg::V4,
            },
        );
        assert!(matches!(r, Err(ExecError::GroupingUnsupported { .. })));
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vslide1downVx {
                vd: VReg::V0,
                vs2: VReg::V0,
                rs1: XReg::ZERO,
            },
        );
        assert!(matches!(r, Err(ExecError::GroupingUnsupported { .. })));
    }

    #[test]
    fn grouped_ops_reject_overflowing_groups() {
        let (mut s, mut m) = setup();
        s.set_vtype(indexmac_isa::VType {
            sew: Sew::E32,
            lmul: Lmul::M2,
        });
        s.set_vl(32);
        s.set_x(XReg::A0, 0x1000);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vle32 {
                vd: VReg::new(31),
                rs1: XReg::A0,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::GroupOutOfRange {
                base: 31,
                regs: 2,
                ..
            })
        ));
        // An indirect group read past v31 faults too.
        s.set_v_lane(VReg::V8, 0, Sew::E32, 31);
        s.set_v_f32(VReg::V4, &[1.0; 16]);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V4,
                vs1: VReg::V8,
                slot: 0,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::GroupOutOfRange { base: 31, .. })
        ));
    }

    #[test]
    fn vvi_slot_out_of_range_faults() {
        let (mut s, mut m) = setup();
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V4,
                vs1: VReg::V8,
                slot: 16,
            },
        );
        assert!(matches!(
            r,
            Err(ExecError::SlotOutOfRange {
                slot: 16,
                vlmax: 16,
                ..
            })
        ));
        // At e8 the same register holds 64 lanes, so slot 16 is legal.
        let mut s = ArchState::new(512);
        set_sew(&mut s, Sew::E8);
        assert!(step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V4,
                vs1: VReg::V8,
                slot: 16
            },
        )
        .is_ok());
    }

    #[test]
    fn vindexmac_vvi_aliasing_vd_equals_source() {
        // vd == vrf[vs1[slot]]: operands must be read before writing.
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::V1, &[1.0, 2.0]);
        s.set_v_f32(VReg::V4, &[3.0]);
        s.set_v_lane(VReg::V8, 0, Sew::E32, 1); // indirect source is v1 == vd
        s.set_vl(2);
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi {
                vd: VReg::V1,
                vs2: VReg::V4,
                vs1: VReg::V8,
                slot: 0,
            },
        );
        // vd[i] = vd[i] + 3*vd_old[i] = 4*old.
        assert_eq!(s.v_as_f32(VReg::V1), vec![4.0, 8.0]);
    }

    #[test]
    fn vindexmac_aliasing_vd_equals_source() {
        // vd == vrf[rs]: operands must be read before writing.
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::V1, &[1.0, 2.0]);
        s.set_v_f32(VReg::V4, &[3.0]);
        s.set_vl(2);
        s.set_x(XReg::T0, 1); // indirect source is v1 == vd
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVx {
                vd: VReg::V1,
                vs2: VReg::V4,
                rs: XReg::T0,
            },
        );
        // vd[i] = vd[i] + 3*vd_old[i] = 4*old.
        assert_eq!(s.v_as_f32(VReg::V1), vec![4.0, 8.0]);
    }
}
