//! Functional (architecturally exact) execution of one instruction.
//!
//! The executor mutates [`ArchState`] and [`MainMemory`] and returns an
//! [`ExecEvent`] describing what happened — memory addresses touched,
//! the dynamically-selected indirect register of `vindexmac`, branch
//! outcome — which is exactly the information the timing model needs.

// Lockstep `for i in 0..vl` lane loops mirror the hardware semantics and
// keep source/destination aliasing explicit; iterator forms obscure that.
#![allow(clippy::needless_range_loop)]

use crate::state::ArchState;
use indexmac_isa::{Instruction, Sew, VReg, VType};
use indexmac_mem::MainMemory;
use std::error::Error;
use std::fmt;

/// Largest supported `vlmax` (bounds the stack scratch buffers).
pub const MAX_VLMAX: usize = 128;

/// Largest supported grouped vector length (`LMUL=4` × [`MAX_VLMAX`]).
pub const MAX_GROUP_LANES: usize = 4 * MAX_VLMAX;

/// A memory operation performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Starting byte address.
    pub addr: u64,
    /// Access footprint in bytes.
    pub bytes: u64,
    /// Whether the access writes.
    pub write: bool,
    /// Whether it uses the vector (direct-to-L2) port.
    pub vector: bool,
}

/// Dynamic outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecEvent {
    /// Slot of the executed instruction.
    pub pc: usize,
    /// The instruction itself.
    pub instr: Instruction,
    /// Memory operation, if any.
    pub mem: Option<MemOp>,
    /// The VRF register selected through `rs` by `vindexmac.vx` — the
    /// indirect read that has no static encoding.
    pub indirect_vreg: Option<VReg>,
    /// Whether a branch was taken.
    pub branch_taken: bool,
    /// Active `vl` when the instruction executed.
    pub vl: usize,
}

/// Functional-execution errors (all indicate kernel/program bugs, not
/// data-dependent conditions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A vector memory access was not element-aligned.
    Unaligned {
        /// Slot of the faulting instruction.
        pc: usize,
        /// The faulting address.
        addr: u64,
    },
    /// `vsetvli` requested an element width other than 32 bits.
    UnsupportedSew {
        /// Slot of the faulting instruction.
        pc: usize,
    },
    /// A branch target or fall-through left the program.
    PcOutOfRange {
        /// The out-of-range target.
        target: i64,
    },
    /// A vector instruction without register-grouping semantics executed
    /// while `vl` exceeded the single-register VLMAX (i.e. under
    /// `LMUL > 1`). Only the grouped subset (`vle32`/`vse32`/
    /// `vindexmac.vvi` and the element-0 moves) may run grouped.
    GroupingUnsupported {
        /// Slot of the faulting instruction.
        pc: usize,
    },
    /// A register-group operand would run past `v31`.
    GroupOutOfRange {
        /// Slot of the faulting instruction.
        pc: usize,
        /// First register of the group.
        base: u8,
        /// Registers the group needs.
        regs: usize,
    },
    /// A `vindexmac.vvi` slot immediate addressed past the metadata
    /// register's lanes.
    SlotOutOfRange {
        /// Slot of the faulting instruction.
        pc: usize,
        /// The requested element.
        slot: u8,
        /// Lanes per (single) vector register.
        vlmax: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Unaligned { pc, addr } => {
                write!(f, "unaligned vector access at pc {pc}: address {addr:#x}")
            }
            ExecError::UnsupportedSew { pc } => {
                write!(f, "unsupported SEW at pc {pc} (model executes e32 only)")
            }
            ExecError::PcOutOfRange { target } => write!(f, "control transfer to slot {target}"),
            ExecError::GroupingUnsupported { pc } => {
                write!(f, "instruction at pc {pc} has no register-grouping semantics (vl > VLMAX)")
            }
            ExecError::GroupOutOfRange { pc, base, regs } => {
                write!(f, "register group v{base}+{regs} at pc {pc} runs past v31")
            }
            ExecError::SlotOutOfRange { pc, slot, vlmax } => {
                write!(f, "vindexmac.vvi slot {slot} at pc {pc} exceeds the register lanes ({vlmax})")
            }
        }
    }
}

impl Error for ExecError {}

#[inline]
fn f(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// Registers a grouped operand spans for the active `vl`.
fn group_regs(vl: usize, vlmax: usize) -> usize {
    vl.div_ceil(vlmax).max(1)
}

/// Whether `instr` has defined semantics when `vl` exceeds the
/// single-register VLMAX (register grouping): the grouped memory ops,
/// `vindexmac.vvi`, and the element-0 moves (which touch only lane 0 of
/// the group regardless of LMUL).
fn group_aware(instr: &Instruction) -> bool {
    matches!(
        instr,
        Instruction::Vsetvli { .. }
            | Instruction::Vle32 { .. }
            | Instruction::Vse32 { .. }
            | Instruction::VindexmacVvi { .. }
            | Instruction::VmvXs { .. }
            | Instruction::VmvSx { .. }
            | Instruction::VfmvFs { .. }
    )
}

fn check_group(pc: usize, r: VReg, regs: usize) -> Result<(), ExecError> {
    if r.index() as usize + regs > 32 {
        return Err(ExecError::GroupOutOfRange { pc, base: r.index(), regs });
    }
    Ok(())
}

/// Executes one instruction, advancing `state.pc`.
///
/// # Errors
///
/// See [`ExecError`].
pub fn step(
    state: &mut ArchState,
    mem: &mut MainMemory,
    instr: &Instruction,
) -> Result<ExecEvent, ExecError> {
    use Instruction::*;
    let pc = state.pc;
    let vl = state.vl();
    let mut ev = ExecEvent {
        pc,
        instr: *instr,
        mem: None,
        indirect_vreg: None,
        branch_taken: false,
        vl,
    };
    let mut next_pc = pc as i64 + 1;

    if vl > state.vlmax() && instr.is_vector() && !group_aware(instr) {
        return Err(ExecError::GroupingUnsupported { pc });
    }

    match *instr {
        Li { rd, imm } => state.set_x(rd, imm as u64),
        Mv { rd, rs } => {
            let v = state.x(rs);
            state.set_x(rd, v);
        }
        Addi { rd, rs1, imm } => {
            let v = state.x(rs1).wrapping_add(imm as i64 as u64);
            state.set_x(rd, v);
        }
        Add { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_add(state.x(rs2));
            state.set_x(rd, v);
        }
        Sub { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_sub(state.x(rs2));
            state.set_x(rd, v);
        }
        Mul { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_mul(state.x(rs2));
            state.set_x(rd, v);
        }
        Slli { rd, rs1, shamt } => {
            let v = state.x(rs1) << (shamt & 63);
            state.set_x(rd, v);
        }
        Srli { rd, rs1, shamt } => {
            let v = state.x(rs1) >> (shamt & 63);
            state.set_x(rd, v);
        }
        Lw { rd, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            let v = mem.read_u32(addr) as i32 as i64 as u64;
            state.set_x(rd, v);
            ev.mem = Some(MemOp { addr, bytes: 4, write: false, vector: false });
        }
        Lwu { rd, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            let v = mem.read_u32(addr) as u64;
            state.set_x(rd, v);
            ev.mem = Some(MemOp { addr, bytes: 4, write: false, vector: false });
        }
        Ld { rd, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            let v = mem.read_u64(addr);
            state.set_x(rd, v);
            ev.mem = Some(MemOp { addr, bytes: 8, write: false, vector: false });
        }
        Sw { rs2, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            mem.write_u32(addr, state.x(rs2) as u32);
            ev.mem = Some(MemOp { addr, bytes: 4, write: true, vector: false });
        }
        Sd { rs2, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            mem.write_u64(addr, state.x(rs2));
            ev.mem = Some(MemOp { addr, bytes: 8, write: true, vector: false });
        }
        Beq { rs1, rs2, offset } => {
            if state.x(rs1) == state.x(rs2) {
                ev.branch_taken = true;
                next_pc = pc as i64 + offset as i64;
            }
        }
        Bne { rs1, rs2, offset } => {
            if state.x(rs1) != state.x(rs2) {
                ev.branch_taken = true;
                next_pc = pc as i64 + offset as i64;
            }
        }
        Blt { rs1, rs2, offset } => {
            if (state.x(rs1) as i64) < (state.x(rs2) as i64) {
                ev.branch_taken = true;
                next_pc = pc as i64 + offset as i64;
            }
        }
        Bge { rs1, rs2, offset } => {
            if (state.x(rs1) as i64) >= (state.x(rs2) as i64) {
                ev.branch_taken = true;
                next_pc = pc as i64 + offset as i64;
            }
        }
        Jal { rd, offset } => {
            // Link value is the next slot (the model's PC unit is slots).
            state.set_x(rd, (pc + 1) as u64);
            ev.branch_taken = true;
            next_pc = pc as i64 + offset as i64;
        }
        Nop => {}
        Halt => {
            state.halted = true;
        }
        Flw { fd, rs1, imm } => {
            let addr = state.x(rs1).wrapping_add(imm as i64 as u64);
            state.set_f_bits(fd, mem.read_u32(addr));
            ev.mem = Some(MemOp { addr, bytes: 4, write: false, vector: false });
        }
        Vsetvli { rd, rs1, sew, lmul } => {
            if sew != Sew::E32 {
                return Err(ExecError::UnsupportedSew { pc });
            }
            state.set_vtype(VType { sew, lmul });
            let vlmax = state.vlmax_grouped();
            let avl = if rs1.is_zero() {
                if rd.is_zero() {
                    state.vl()
                } else {
                    vlmax
                }
            } else {
                state.x(rs1) as usize
            };
            let vl = avl.min(vlmax);
            state.set_vl(vl);
            state.set_x(rd, vl as u64);
            ev.vl = vl;
        }
        Vle32 { vd, rs1 } => {
            let addr = state.x(rs1);
            if !addr.is_multiple_of(4) {
                return Err(ExecError::Unaligned { pc, addr });
            }
            let regs = group_regs(vl, state.vlmax());
            check_group(pc, vd, regs)?;
            for i in 0..vl {
                let w = mem.read_u32(addr + (i * 4) as u64);
                state.v_group_mut(vd, regs)[i] = w;
            }
            ev.mem = Some(MemOp { addr, bytes: (vl * 4) as u64, write: false, vector: true });
        }
        Vse32 { vs3, rs1 } => {
            let addr = state.x(rs1);
            if !addr.is_multiple_of(4) {
                return Err(ExecError::Unaligned { pc, addr });
            }
            let regs = group_regs(vl, state.vlmax());
            check_group(pc, vs3, regs)?;
            for i in 0..vl {
                mem.write_u32(addr + (i * 4) as u64, state.v_group(vs3, regs)[i]);
            }
            ev.mem = Some(MemOp { addr, bytes: (vl * 4) as u64, write: true, vector: true });
        }
        VaddVv { vd, vs2, vs1 } => {
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            b[..vl].copy_from_slice(&state.v(vs1)[..vl]);
            for i in 0..vl {
                state.v_mut(vd)[i] = a[i].wrapping_add(b[i]);
            }
        }
        VaddVx { vd, vs2, rs1 } => {
            let s = state.x(rs1) as u32;
            let mut a = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            for i in 0..vl {
                state.v_mut(vd)[i] = a[i].wrapping_add(s);
            }
        }
        VaddVi { vd, vs2, imm } => {
            let s = imm as i32 as u32;
            let mut a = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            for i in 0..vl {
                state.v_mut(vd)[i] = a[i].wrapping_add(s);
            }
        }
        VmulVv { vd, vs2, vs1 } => {
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            b[..vl].copy_from_slice(&state.v(vs1)[..vl]);
            for i in 0..vl {
                state.v_mut(vd)[i] = a[i].wrapping_mul(b[i]);
            }
        }
        VmulVx { vd, vs2, rs1 } => {
            let s = state.x(rs1) as u32;
            let mut a = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            for i in 0..vl {
                state.v_mut(vd)[i] = a[i].wrapping_mul(s);
            }
        }
        VmaccVx { vd, rs1, vs2 } => {
            let s = state.x(rs1) as u32;
            let mut a = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            for i in 0..vl {
                let d = state.v(vd)[i];
                state.v_mut(vd)[i] = d.wrapping_add(s.wrapping_mul(a[i]));
            }
        }
        VfaddVv { vd, vs2, vs1 } => {
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            b[..vl].copy_from_slice(&state.v(vs1)[..vl]);
            for i in 0..vl {
                state.v_mut(vd)[i] = (f(a[i]) + f(b[i])).to_bits();
            }
        }
        VfmulVv { vd, vs2, vs1 } => {
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            b[..vl].copy_from_slice(&state.v(vs1)[..vl]);
            for i in 0..vl {
                state.v_mut(vd)[i] = (f(a[i]) * f(b[i])).to_bits();
            }
        }
        VfmaccVf { vd, fs1, vs2 } => {
            let s = state.f32(fs1);
            let mut a = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            for i in 0..vl {
                let d = f(state.v(vd)[i]);
                state.v_mut(vd)[i] = (d + s * f(a[i])).to_bits();
            }
        }
        VfmaccVv { vd, vs1, vs2 } => {
            let mut a = [0u32; MAX_VLMAX];
            let mut b = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            b[..vl].copy_from_slice(&state.v(vs1)[..vl]);
            for i in 0..vl {
                let d = f(state.v(vd)[i]);
                state.v_mut(vd)[i] = (d + f(b[i]) * f(a[i])).to_bits();
            }
        }
        VmvVv { vd, vs1 } => {
            let mut a = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs1)[..vl]);
            state.v_mut(vd)[..vl].copy_from_slice(&a[..vl]);
        }
        VmvVx { vd, rs1 } => {
            let s = state.x(rs1) as u32;
            for i in 0..vl {
                state.v_mut(vd)[i] = s;
            }
        }
        VmvXs { rd, vs2 } => {
            let v = state.v(vs2)[0] as i32 as i64 as u64;
            state.set_x(rd, v);
        }
        VmvSx { vd, rs1 } => {
            let s = state.x(rs1) as u32;
            state.v_mut(vd)[0] = s;
        }
        VfmvFs { fd, vs2 } => {
            let bits = state.v(vs2)[0];
            state.set_f_bits(fd, bits);
        }
        Vslide1downVx { vd, vs2, rs1 } => {
            let s = state.x(rs1) as u32;
            let mut a = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(vs2)[..vl]);
            let dst = state.v_mut(vd);
            if vl > 0 {
                dst[..vl - 1].copy_from_slice(&a[1..vl]);
                dst[vl - 1] = s;
            }
        }
        VslidedownVi { vd, vs2, imm } => {
            let off = imm as usize;
            let vlmax = state.vlmax();
            let mut a = [0u32; MAX_VLMAX];
            a[..vlmax].copy_from_slice(&state.v(vs2)[..vlmax]);
            let dst = state.v_mut(vd);
            for i in 0..vl {
                dst[i] = if i + off < vlmax { a[i + off] } else { 0 };
            }
        }
        VindexmacVx { vd, vs2, rs } => {
            // The architectural definition of the paper:
            //   vd[i] += vs2[0] * vrf[rs[4:0]][i]
            let src = VReg::new((state.x(rs) & 0x1F) as u8);
            let multiplier = f(state.v(vs2)[0]);
            let mut a = [0u32; MAX_VLMAX];
            a[..vl].copy_from_slice(&state.v(src)[..vl]);
            for i in 0..vl {
                let d = f(state.v(vd)[i]);
                state.v_mut(vd)[i] = (d + multiplier * f(a[i])).to_bits();
            }
            ev.indirect_vreg = Some(src);
        }
        VindexmacVvi { vd, vs2, vs1, slot } => {
            // Second-generation definition (after arXiv 2501.10189):
            //   vd[i] += vs2[slot] * vrf[vs1[slot][4:0]][i]
            // The slot element is read from the *single* metadata
            // registers; vd and the indirect source span the whole
            // register group when vl > VLMAX.
            let slot = slot as usize;
            if slot >= state.vlmax() {
                return Err(ExecError::SlotOutOfRange { pc, slot: slot as u8, vlmax: state.vlmax() });
            }
            let src = VReg::new((state.v(vs1)[slot] & 0x1F) as u8);
            let multiplier = f(state.v(vs2)[slot]);
            let regs = group_regs(vl, state.vlmax());
            check_group(pc, src, regs)?;
            check_group(pc, vd, regs)?;
            let mut a = [0u32; MAX_GROUP_LANES];
            a[..vl].copy_from_slice(&state.v_group(src, regs)[..vl]);
            let dst = state.v_group_mut(vd, regs);
            for i in 0..vl {
                dst[i] = (f(dst[i]) + multiplier * f(a[i])).to_bits();
            }
            ev.indirect_vreg = Some(src);
        }
    }

    if next_pc < 0 {
        return Err(ExecError::PcOutOfRange { target: next_pc });
    }
    state.pc = next_pc as usize;
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_isa::instr::FReg;
    use indexmac_isa::{Lmul, XReg};

    fn setup() -> (ArchState, MainMemory) {
        (ArchState::new(512), MainMemory::new())
    }

    fn run1(s: &mut ArchState, m: &mut MainMemory, i: Instruction) -> ExecEvent {
        step(s, m, &i).expect("instruction must execute")
    }

    #[test]
    fn scalar_arith() {
        let (mut s, mut m) = setup();
        run1(&mut s, &mut m, Instruction::Li { rd: XReg::T0, imm: -3 });
        run1(&mut s, &mut m, Instruction::Addi { rd: XReg::T1, rs1: XReg::T0, imm: 5 });
        assert_eq!(s.x(XReg::T1), 2);
        run1(&mut s, &mut m, Instruction::Slli { rd: XReg::T2, rs1: XReg::T1, shamt: 4 });
        assert_eq!(s.x(XReg::T2), 32);
        run1(&mut s, &mut m, Instruction::Mul { rd: XReg::T3, rs1: XReg::T2, rs2: XReg::T2 });
        assert_eq!(s.x(XReg::T3), 1024);
        run1(&mut s, &mut m, Instruction::Sub { rd: XReg::T4, rs1: XReg::T0, rs2: XReg::T1 });
        assert_eq!(s.x(XReg::T4) as i64, -5);
        assert_eq!(s.pc, 5);
    }

    #[test]
    fn loads_sign_extension() {
        let (mut s, mut m) = setup();
        m.write_u32(0x100, 0xFFFF_FFFE); // -2 as i32
        s.set_x(XReg::A0, 0x100);
        let ev = run1(&mut s, &mut m, Instruction::Lw { rd: XReg::T0, rs1: XReg::A0, imm: 0 });
        assert_eq!(s.x(XReg::T0) as i64, -2);
        assert_eq!(ev.mem, Some(MemOp { addr: 0x100, bytes: 4, write: false, vector: false }));
        run1(&mut s, &mut m, Instruction::Lwu { rd: XReg::T1, rs1: XReg::A0, imm: 0 });
        assert_eq!(s.x(XReg::T1), 0xFFFF_FFFE);
    }

    #[test]
    fn store_then_load() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::T0, 0xABCD);
        s.set_x(XReg::A0, 0x200);
        run1(&mut s, &mut m, Instruction::Sd { rs2: XReg::T0, rs1: XReg::A0, imm: 8 });
        run1(&mut s, &mut m, Instruction::Ld { rd: XReg::T1, rs1: XReg::A0, imm: 8 });
        assert_eq!(s.x(XReg::T1), 0xABCD);
    }

    #[test]
    fn branches() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::T0, 1);
        s.pc = 10;
        let ev =
            run1(&mut s, &mut m, Instruction::Bne { rs1: XReg::T0, rs2: XReg::ZERO, offset: -5 });
        assert!(ev.branch_taken);
        assert_eq!(s.pc, 5);
        let ev =
            run1(&mut s, &mut m, Instruction::Beq { rs1: XReg::T0, rs2: XReg::ZERO, offset: -5 });
        assert!(!ev.branch_taken);
        assert_eq!(s.pc, 6);
        let ev = run1(&mut s, &mut m, Instruction::Jal { rd: XReg::RA, offset: 3 });
        assert!(ev.branch_taken);
        assert_eq!(s.pc, 9);
        assert_eq!(s.x(XReg::RA), 7);
    }

    #[test]
    fn pc_underflow_detected() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::T0, 1);
        s.pc = 0;
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Bne { rs1: XReg::T0, rs2: XReg::ZERO, offset: -5 },
        );
        assert!(matches!(r, Err(ExecError::PcOutOfRange { target: -5 })));
    }

    fn vsetvli_m1(rd: XReg, rs1: XReg) -> Instruction {
        Instruction::Vsetvli { rd, rs1, sew: Sew::E32, lmul: Lmul::M1 }
    }

    #[test]
    fn vsetvli_rules() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::A0, 100);
        run1(&mut s, &mut m, vsetvli_m1(XReg::T0, XReg::A0));
        assert_eq!(s.vl(), 16);
        assert_eq!(s.x(XReg::T0), 16);
        s.set_x(XReg::A0, 7);
        run1(&mut s, &mut m, vsetvli_m1(XReg::T0, XReg::A0));
        assert_eq!(s.vl(), 7);
        // rs1=x0, rd!=x0 -> VLMAX.
        run1(&mut s, &mut m, vsetvli_m1(XReg::T0, XReg::ZERO));
        assert_eq!(s.vl(), 16);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vsetvli { rd: XReg::T0, rs1: XReg::ZERO, sew: Sew::E64, lmul: Lmul::M1 },
        );
        assert!(matches!(r, Err(ExecError::UnsupportedSew { .. })));
    }

    #[test]
    fn vsetvli_grants_grouped_vl() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::A0, 100);
        run1(
            &mut s,
            &mut m,
            Instruction::Vsetvli { rd: XReg::T0, rs1: XReg::A0, sew: Sew::E32, lmul: Lmul::M2 },
        );
        assert_eq!(s.vl(), 32);
        assert_eq!(s.x(XReg::T0), 32);
        // rs1=x0, rd!=x0 -> grouped VLMAX.
        run1(
            &mut s,
            &mut m,
            Instruction::Vsetvli { rd: XReg::T0, rs1: XReg::ZERO, sew: Sew::E32, lmul: Lmul::M4 },
        );
        assert_eq!(s.vl(), 64);
    }

    #[test]
    fn vector_load_store_roundtrip() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..16).map(|i| i as f32 * 1.5).collect();
        m.write_f32_slice(0x1000, &data);
        s.set_x(XReg::A0, 0x1000);
        s.set_x(XReg::A1, 0x2000);
        let ev = run1(&mut s, &mut m, Instruction::Vle32 { vd: VReg::V1, rs1: XReg::A0 });
        assert_eq!(ev.mem.unwrap().bytes, 64);
        assert!(ev.mem.unwrap().vector);
        run1(&mut s, &mut m, Instruction::Vse32 { vs3: VReg::V1, rs1: XReg::A1 });
        assert_eq!(m.read_f32_slice(0x2000, 16), data);
    }

    #[test]
    fn vector_load_respects_vl() {
        let (mut s, mut m) = setup();
        m.write_f32_slice(0x1000, &[9.0; 16]);
        s.set_v_f32(VReg::V1, &[1.0; 16]);
        s.set_vl(4);
        s.set_x(XReg::A0, 0x1000);
        run1(&mut s, &mut m, Instruction::Vle32 { vd: VReg::V1, rs1: XReg::A0 });
        // Tail is undisturbed.
        assert_eq!(s.v_f32(VReg::V1, 3), 9.0);
        assert_eq!(s.v_f32(VReg::V1, 4), 1.0);
    }

    #[test]
    fn unaligned_vector_access_faults() {
        let (mut s, mut m) = setup();
        s.set_x(XReg::A0, 0x1001);
        let r = step(&mut s, &mut m, &Instruction::Vle32 { vd: VReg::V1, rs1: XReg::A0 });
        assert!(matches!(r, Err(ExecError::Unaligned { addr: 0x1001, .. })));
    }

    #[test]
    fn integer_vector_ops() {
        let (mut s, mut m) = setup();
        for i in 0..16 {
            s.v_mut(VReg::V1)[i] = i as u32;
            s.v_mut(VReg::V2)[i] = 10;
        }
        run1(&mut s, &mut m, Instruction::VaddVv { vd: VReg::V3, vs2: VReg::V1, vs1: VReg::V2 });
        assert_eq!(s.v(VReg::V3)[5], 15);
        s.set_x(XReg::T0, 3);
        run1(&mut s, &mut m, Instruction::VmulVx { vd: VReg::V4, vs2: VReg::V1, rs1: XReg::T0 });
        assert_eq!(s.v(VReg::V4)[7], 21);
        run1(&mut s, &mut m, Instruction::VmaccVx { vd: VReg::V4, rs1: XReg::T0, vs2: VReg::V2 });
        assert_eq!(s.v(VReg::V4)[7], 21 + 30);
        run1(&mut s, &mut m, Instruction::VaddVi { vd: VReg::V5, vs2: VReg::V1, imm: -1 });
        assert_eq!(s.v(VReg::V5)[0], u32::MAX);
    }

    #[test]
    fn float_mac() {
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::V1, &[2.0; 16]);
        s.set_v_f32(VReg::V2, &[0.5; 16]);
        s.set_f_bits(FReg::F0, 3.0f32.to_bits());
        run1(&mut s, &mut m, Instruction::VfmaccVf { vd: VReg::V2, fs1: FReg::F0, vs2: VReg::V1 });
        assert_eq!(s.v_f32(VReg::V2, 0), 0.5 + 3.0 * 2.0);
        run1(&mut s, &mut m, Instruction::VfmaccVv { vd: VReg::V2, vs1: VReg::V1, vs2: VReg::V1 });
        assert_eq!(s.v_f32(VReg::V2, 0), 6.5 + 4.0);
    }

    #[test]
    fn slides() {
        let (mut s, mut m) = setup();
        let vals: Vec<f32> = (0..16).map(|i| i as f32).collect();
        s.set_v_f32(VReg::V1, &vals);
        s.set_x(XReg::T0, 99f32.to_bits() as u64);
        run1(
            &mut s,
            &mut m,
            Instruction::Vslide1downVx { vd: VReg::V1, vs2: VReg::V1, rs1: XReg::T0 },
        );
        assert_eq!(s.v_f32(VReg::V1, 0), 1.0);
        assert_eq!(s.v_f32(VReg::V1, 14), 15.0);
        assert_eq!(s.v_f32(VReg::V1, 15), 99.0);

        s.set_v_f32(VReg::V2, &vals);
        run1(
            &mut s,
            &mut m,
            Instruction::VslidedownVi { vd: VReg::V3, vs2: VReg::V2, imm: 4 },
        );
        assert_eq!(s.v_f32(VReg::V3, 0), 4.0);
        assert_eq!(s.v_f32(VReg::V3, 11), 15.0);
        assert_eq!(s.v(VReg::V3)[12], 0); // beyond vlmax reads as zero
    }

    #[test]
    fn cross_domain_moves() {
        let (mut s, mut m) = setup();
        s.v_mut(VReg::V1)[0] = 0xFFFF_FFF0; // negative as i32
        run1(&mut s, &mut m, Instruction::VmvXs { rd: XReg::T0, vs2: VReg::V1 });
        assert_eq!(s.x(XReg::T0) as i64, -16);
        s.set_x(XReg::T1, 0x42);
        run1(&mut s, &mut m, Instruction::VmvSx { vd: VReg::V2, rs1: XReg::T1 });
        assert_eq!(s.v(VReg::V2)[0], 0x42);
        run1(&mut s, &mut m, Instruction::VfmvFs { fd: FReg::F1, vs2: VReg::V1 });
        assert_eq!(s.f_bits(FReg::F1), 0xFFFF_FFF0);
        run1(&mut s, &mut m, Instruction::VmvVx { vd: VReg::V3, rs1: XReg::T1 });
        assert_eq!(s.v(VReg::V3)[15], 0x42);
    }

    #[test]
    fn vindexmac_semantics() {
        let (mut s, mut m) = setup();
        // v20 holds a B row; v4 holds `values` with value 2.5 at elem 0;
        // v1 is the accumulator.
        s.set_v_f32(VReg::new(20), &[1.0, 2.0, 3.0, 4.0]);
        s.set_v_f32(VReg::V4, &[2.5, 0.0, 0.0, 0.0]);
        s.set_v_f32(VReg::V1, &[10.0, 10.0, 10.0, 10.0]);
        s.set_vl(4);
        s.set_x(XReg::T0, 20); // selects v20
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVx { vd: VReg::V1, vs2: VReg::V4, rs: XReg::T0 },
        );
        assert_eq!(ev.indirect_vreg, Some(VReg::new(20)));
        assert_eq!(s.v_as_f32(VReg::V1), vec![12.5, 15.0, 17.5, 20.0]);
        assert_eq!(ev.mem, None, "vindexmac must not touch memory");
    }

    #[test]
    fn vindexmac_uses_only_5_lsbs() {
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::new(3), &[1.0; 16]);
        s.set_v_f32(VReg::V4, &[1.0; 16]);
        s.set_x(XReg::T0, 32 + 3); // 5 LSBs = 3
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVx { vd: VReg::V1, vs2: VReg::V4, rs: XReg::T0 },
        );
        assert_eq!(s.v_f32(VReg::V1, 0), 1.0);
    }

    #[test]
    fn halt_sets_flag() {
        let (mut s, mut m) = setup();
        run1(&mut s, &mut m, Instruction::Halt);
        assert!(s.halted);
    }

    #[test]
    fn vindexmac_vvi_semantics() {
        let (mut s, mut m) = setup();
        // v20 holds a B row; v4 holds `values`; v8 holds register
        // indices; v1 is the accumulator. Slot 2 selects value 2.5 and
        // register 20 — no scalar register involved anywhere.
        s.set_v_f32(VReg::new(20), &[1.0, 2.0, 3.0, 4.0]);
        s.set_v_f32(VReg::V4, &[0.0, 0.0, 2.5, 0.0]);
        s.v_mut(VReg::V8)[2] = 20;
        s.set_v_f32(VReg::V1, &[10.0, 10.0, 10.0, 10.0]);
        s.set_vl(4);
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi { vd: VReg::V1, vs2: VReg::V4, vs1: VReg::V8, slot: 2 },
        );
        assert_eq!(ev.indirect_vreg, Some(VReg::new(20)));
        assert_eq!(s.v_as_f32(VReg::V1), vec![12.5, 15.0, 17.5, 20.0]);
        assert_eq!(ev.mem, None, "vindexmac.vvi must not touch memory");
    }

    #[test]
    fn vindexmac_vvi_uses_only_5_lsbs_of_index() {
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::new(3), &[1.0; 16]);
        s.set_v_f32(VReg::V4, &[1.0; 16]);
        s.v_mut(VReg::V8)[0] = 32 + 3; // 5 LSBs = 3
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi { vd: VReg::V1, vs2: VReg::V4, vs1: VReg::V8, slot: 0 },
        );
        assert_eq!(s.v_f32(VReg::V1, 0), 1.0);
    }

    #[test]
    fn vindexmac_vvi_grouped_spans_registers() {
        let (mut s, mut m) = setup();
        // Under m2 the B "row" is the v20v21 group (32 lanes) and the
        // accumulator is the v0v1 group; metadata stays in single regs.
        s.set_vtype(indexmac_isa::VType { sew: Sew::E32, lmul: Lmul::M2 });
        s.set_vl(32);
        s.set_v_f32(VReg::new(20), &[2.0; 16]);
        s.set_v_f32(VReg::new(21), &[3.0; 16]);
        s.set_v_f32(VReg::V8, &[0.5; 16]); // values
        s.v_mut(VReg::new(12))[1] = 20; // colidx reg, slot 1 -> v20 group
        let ev = run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V8,
                vs1: VReg::new(12),
                slot: 1,
            },
        );
        assert_eq!(ev.vl, 32);
        assert_eq!(ev.indirect_vreg, Some(VReg::new(20)));
        assert_eq!(s.v_f32(VReg::V0, 15), 0.5 * 2.0);
        // Lane 16 of the group lives in v1 and took v21's data.
        assert_eq!(s.v_f32(VReg::V1, 0), 0.5 * 3.0);
        assert_eq!(s.v_f32(VReg::V1, 15), 0.5 * 3.0);
    }

    #[test]
    fn grouped_load_store_roundtrip() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        m.write_f32_slice(0x1000, &data);
        s.set_vtype(indexmac_isa::VType { sew: Sew::E32, lmul: Lmul::M2 });
        s.set_vl(32);
        s.set_x(XReg::A0, 0x1000);
        s.set_x(XReg::A1, 0x2000);
        let ev = run1(&mut s, &mut m, Instruction::Vle32 { vd: VReg::V2, rs1: XReg::A0 });
        assert_eq!(ev.mem.unwrap().bytes, 128);
        assert_eq!(s.v_f32(VReg::V3, 0), 16.0, "second register of the group");
        run1(&mut s, &mut m, Instruction::Vse32 { vs3: VReg::V2, rs1: XReg::A1 });
        assert_eq!(m.read_f32_slice(0x2000, 32), data);
    }

    #[test]
    fn ungrouped_ops_fault_under_grouping() {
        let (mut s, mut m) = setup();
        s.set_vtype(indexmac_isa::VType { sew: Sew::E32, lmul: Lmul::M2 });
        s.set_vl(32);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VfaddVv { vd: VReg::V0, vs2: VReg::V2, vs1: VReg::V4 },
        );
        assert!(matches!(r, Err(ExecError::GroupingUnsupported { .. })));
        let r = step(
            &mut s,
            &mut m,
            &Instruction::Vslide1downVx { vd: VReg::V0, vs2: VReg::V0, rs1: XReg::ZERO },
        );
        assert!(matches!(r, Err(ExecError::GroupingUnsupported { .. })));
    }

    #[test]
    fn grouped_ops_reject_overflowing_groups() {
        let (mut s, mut m) = setup();
        s.set_vtype(indexmac_isa::VType { sew: Sew::E32, lmul: Lmul::M2 });
        s.set_vl(32);
        s.set_x(XReg::A0, 0x1000);
        let r = step(&mut s, &mut m, &Instruction::Vle32 { vd: VReg::new(31), rs1: XReg::A0 });
        assert!(matches!(r, Err(ExecError::GroupOutOfRange { base: 31, regs: 2, .. })));
        // An indirect group read past v31 faults too.
        s.v_mut(VReg::V8)[0] = 31;
        s.set_v_f32(VReg::V4, &[1.0; 16]);
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVvi { vd: VReg::V0, vs2: VReg::V4, vs1: VReg::V8, slot: 0 },
        );
        assert!(matches!(r, Err(ExecError::GroupOutOfRange { base: 31, .. })));
    }

    #[test]
    fn vvi_slot_out_of_range_faults() {
        let (mut s, mut m) = setup();
        let r = step(
            &mut s,
            &mut m,
            &Instruction::VindexmacVvi { vd: VReg::V0, vs2: VReg::V4, vs1: VReg::V8, slot: 16 },
        );
        assert!(matches!(r, Err(ExecError::SlotOutOfRange { slot: 16, vlmax: 16, .. })));
    }

    #[test]
    fn vindexmac_vvi_aliasing_vd_equals_source() {
        // vd == vrf[vs1[slot]]: operands must be read before writing.
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::V1, &[1.0, 2.0]);
        s.set_v_f32(VReg::V4, &[3.0]);
        s.v_mut(VReg::V8)[0] = 1; // indirect source is v1 == vd
        s.set_vl(2);
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVvi { vd: VReg::V1, vs2: VReg::V4, vs1: VReg::V8, slot: 0 },
        );
        // vd[i] = vd[i] + 3*vd_old[i] = 4*old.
        assert_eq!(s.v_as_f32(VReg::V1), vec![4.0, 8.0]);
    }

    #[test]
    fn vindexmac_aliasing_vd_equals_source() {
        // vd == vrf[rs]: operands must be read before writing.
        let (mut s, mut m) = setup();
        s.set_v_f32(VReg::V1, &[1.0, 2.0]);
        s.set_v_f32(VReg::V4, &[3.0]);
        s.set_vl(2);
        s.set_x(XReg::T0, 1); // indirect source is v1 == vd
        run1(
            &mut s,
            &mut m,
            Instruction::VindexmacVx { vd: VReg::V1, vs2: VReg::V4, rs: XReg::T0 },
        );
        // vd[i] = vd[i] + 3*vd_old[i] = 4*old.
        assert_eq!(s.v_as_f32(VReg::V1), vec![4.0, 8.0]);
    }
}
