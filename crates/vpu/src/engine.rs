//! The decode-once execution engine.
//!
//! The legacy [`crate::exec::step`] interpreter re-derives everything
//! from the [`Instruction`] enum on **every dynamic instruction**:
//! operand fields are re-unpacked, grouping support and e32-only rules
//! are re-matched, branch offsets are re-added to the PC, and a full
//! [`ExecEvent`] is materialised even when nobody consumes it
//! (`run_functional`). With sweeps spanning (pattern × dims × SEW ×
//! LMUL × kernel × model) grids, that per-step overhead *is* the
//! repository's hot path.
//!
//! [`DecodedProgram`] moves all of it to decode time, once per program:
//!
//! * operand fields are unpacked into flat µops (immediates
//!   pre-extended to the datapath width, branch targets resolved to
//!   absolute slots);
//! * per-slot static checks are resolved: whether an opcode has
//!   register-grouping semantics and whether it is e32-only is decided
//!   by the µop variant itself, so the per-step `group_aware` /
//!   `require_e32` re-matching disappears;
//! * the per-SEW constants the vector µops need — lane masks, widening
//!   factors, element sizes — live in the const [`SEW_INFO`] table,
//!   indexed rather than recomputed;
//! * the hot vector µops (unit-stride loads/stores, `vfmacc.vf`, both
//!   IndexMAC generations) operate on whole register-group byte slices
//!   (one borrow per instruction) and page-chunked memory transfers
//!   instead of per-lane accessor calls.
//!
//! Execution is observed through the [`Observer`] trait. The engine is
//! generic over it, and [`NullObserver`] advertises at compile time
//! that events are unwanted, so the functional path monomorphizes to a
//! loop that never builds an [`ExecEvent`] at all. The legacy `step()`
//! interpreter is kept verbatim as the **oracle**: cold µops fall back
//! to it, and `crates/vpu/tests/prop_engine.rs` differentially tests
//! the two paths for identical architectural state, reports and faults.

use crate::analyze::Verified;
use crate::checks::{
    check_e32_only, check_element_width, check_group, check_grouping_supported,
    check_sew_supported, check_slot, check_vector_alignment, check_widening_dst, group_regs,
};
use crate::exec::{step, ExecEvent, MemOp};
use crate::sim::SimError;
use crate::state::{sign_extend, ArchState};
use indexmac_isa::instr::FReg;
use indexmac_isa::{Instruction, Lmul, Program, Sew, VReg, XReg};
use indexmac_mem::MainMemory;

/// Observes the dynamic instruction stream of an engine run.
///
/// The engine is generic over the observer, so each implementation gets
/// its own monomorphized loop: the timing path ([`crate::TimingObserver`])
/// compiles to exactly the old closure-based loop, while
/// [`NullObserver`] — with [`Observer::WANTS_EVENTS`] `false` — compiles
/// to a loop with no event construction whatsoever.
pub trait Observer {
    /// Whether the engine must materialise an [`ExecEvent`] per dynamic
    /// instruction. `false` lets the functional path skip all event
    /// bookkeeping (the compiler removes the dead branches).
    const WANTS_EVENTS: bool = true;

    /// Called once per retired dynamic instruction, in program order.
    fn observe(&mut self, ev: &ExecEvent);
}

/// Observer of the functional path: wants nothing, sees nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    const WANTS_EVENTS: bool = false;

    #[inline]
    fn observe(&mut self, _ev: &ExecEvent) {}
}

/// Every `FnMut(&ExecEvent)` closure is an observer, so ad-hoc
/// inspection (tests, one-off instrumentation) keeps the old shape.
impl<F: FnMut(&ExecEvent)> Observer for F {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        self(ev);
    }
}

/// Why a bounded range execution (the sharded executor's primitive)
/// stopped without a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeExit {
    /// The program executed `ebreak`.
    Halted,
    /// The instruction budget ran out with the program still running —
    /// an error for a whole-program run, a checkpoint boundary for the
    /// sharded executor.
    Budget,
}

/// Per-SEW constants used by the vector µops, precomputed once instead
/// of re-derived per dynamic instruction: element bytes, the modular
/// lane mask, and the widening accumulator factor (`32 / SEW`).
#[derive(Debug, Clone, Copy)]
pub struct SewInfo {
    /// Element size in bytes.
    pub bytes: usize,
    /// Mask selecting the low `SEW` bits of a lane value.
    pub lane_mask: u32,
    /// Widening factor of the integer IndexMAC accumulator.
    pub widen: usize,
}

/// [`SewInfo`] for e8/e16/e32, indexed by [`sew_index`].
pub const SEW_INFO: [SewInfo; 3] = [
    SewInfo {
        bytes: 1,
        lane_mask: 0xFF,
        widen: 4,
    },
    SewInfo {
        bytes: 2,
        lane_mask: 0xFFFF,
        widen: 2,
    },
    SewInfo {
        bytes: 4,
        lane_mask: 0xFFFF_FFFF,
        widen: 1,
    },
];

/// Index of an executable SEW in [`SEW_INFO`].
///
/// # Panics
///
/// Panics on [`Sew::E64`], which the datapath does not execute (the
/// `vsetvli` µop faults before any lane math can ask for it).
pub fn sew_index(sew: Sew) -> usize {
    match sew {
        Sew::E8 => 0,
        Sew::E16 => 1,
        Sew::E32 => 2,
        Sew::E64 => panic!("e64 lanes are outside the modelled subset"),
    }
}

/// Largest register-group byte footprint the stack scratch buffers must
/// hold: an `m4` group of 4096-bit registers.
const MAX_GROUP_BYTES: usize = 4 * 512;

/// One predecoded micro-operation. Operands are unpacked, immediates
/// pre-extended, branch targets absolute; the variant itself encodes
/// the static properties (`group_aware`, e32-only) that the legacy
/// interpreter re-derives per step. Cold opcodes decode to
/// [`Uop::Step`], which defers to the oracle interpreter — bit-for-bit
/// the legacy semantics, paid only on the cold path.
#[derive(Debug, Clone, Copy)]
enum Uop {
    // ---- scalar ----
    Li {
        rd: XReg,
        imm: u64,
    },
    Mv {
        rd: XReg,
        rs: XReg,
    },
    Addi {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Add {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Sub {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Mul {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Slli {
        rd: XReg,
        rs1: XReg,
        shamt: u32,
    },
    Srli {
        rd: XReg,
        rs1: XReg,
        shamt: u32,
    },
    Lw {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Lwu {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Ld {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Sw {
        rs2: XReg,
        rs1: XReg,
        imm: u64,
    },
    Sd {
        rs2: XReg,
        rs1: XReg,
        imm: u64,
    },
    Flw {
        fd: FReg,
        rs1: XReg,
        imm: u64,
    },
    Beq {
        rs1: XReg,
        rs2: XReg,
        target: i64,
    },
    Bne {
        rs1: XReg,
        rs2: XReg,
        target: i64,
    },
    Blt {
        rs1: XReg,
        rs2: XReg,
        target: i64,
    },
    Bge {
        rs1: XReg,
        rs2: XReg,
        target: i64,
    },
    Jal {
        rd: XReg,
        target: i64,
    },
    Nop,
    Halt,

    // ---- hot vector ----
    Vsetvli {
        rd: XReg,
        rs1: XReg,
        sew: Sew,
        lmul: Lmul,
    },
    /// Unit-stride vector load of any element width (the width is a
    /// decode-time constant, not a per-step re-match).
    VLoad {
        vd: VReg,
        rs1: XReg,
        ew: Sew,
    },
    /// Unit-stride vector store of any element width.
    VStore {
        vs3: VReg,
        rs1: XReg,
        ew: Sew,
    },
    /// `vfmacc.vf` — the baselines' inner-loop MAC (e32-only, m1-only;
    /// both facts are this variant, not a runtime lookup).
    VfmaccVf {
        vd: VReg,
        fs1: FReg,
        vs2: VReg,
    },
    /// First-generation `vindexmac.vx`.
    VindexmacVx {
        vd: VReg,
        vs2: VReg,
        rs: XReg,
    },
    /// Second-generation `vindexmac.vvi`.
    VindexmacVvi {
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
        slot: u8,
    },

    // ---- cold tail ----
    /// Any other instruction: defer to the `step()` oracle.
    Step,
}

/// Fewest repeated blocks worth replacing with a fused lane loop. Two
/// is enough: even the shortest legal run (one accumulator, two slots)
/// saves four µop dispatches plus the per-µop source-group copies, and
/// the second-generation kernels emit exactly two slots per block at
/// LMUL=2 (the 1:4 metadata packs two indices per grouped lane).
const MIN_FUSE_REPS: usize = 2;

/// Most `vindexmac.vvi` µops per block the matcher will fuse (the
/// kernels emit one per accumulator tile, far below this).
const MAX_FUSE_U: usize = 32;

/// One trace-compiled run: `reps` consecutive copies of the IndexMAC
/// steady-state block — `u` `vindexmac.vvi` µops (same destination /
/// multiplier / metadata registers per position across blocks, only the
/// metadata `slot` varies), a counter bump (`addi rd, rd, imm`) and a
/// loop-shaped `bne` whose target is the next slot either way (the
/// kernels are fully unrolled, so the "loop" branch always falls
/// through). Such a run has no memory traffic and no observable control
/// flow, which is what lets [`DecodedProgram::try_fused`] replace
/// `reps * (u + 2)` µop dispatches with `u` batched lane loops.
#[derive(Debug, Clone)]
struct FusedRun {
    start: usize,
    /// `vindexmac.vvi` µops per block.
    u: usize,
    /// Number of consecutive identical blocks.
    reps: usize,
    /// Per-position `(vd, vs2, vs1)`, identical across blocks.
    ops: Box<[(VReg, VReg, VReg)]>,
    /// All `reps * u` slot immediates in program order, extracted at
    /// decode so the executor never re-fetches the µop stream.
    slots: Box<[u8]>,
    /// The counter register of the per-block `addi rd, rd, imm`.
    ctr: XReg,
    /// The per-block counter increment.
    ctr_imm: u64,
}

impl FusedRun {
    fn block_len(&self) -> usize {
        self.u + 2
    }

    fn len(&self) -> usize {
        self.reps * self.block_len()
    }
}

/// Matches one candidate block at `at`: returns `(u, ctr, imm, bne_rs1,
/// bne_rs2)` when `uops[at..]` starts with `u >= 1` `vindexmac.vvi`
/// µops, an `addi rd, rd, imm`, and a `bne` targeting its own next slot.
fn match_block(uops: &[Uop], at: usize) -> Option<(usize, XReg, u64, XReg, XReg)> {
    let mut u = 0;
    while u < MAX_FUSE_U && matches!(uops.get(at + u), Some(Uop::VindexmacVvi { .. })) {
        u += 1;
    }
    if u == 0 {
        return None;
    }
    let Some(&Uop::Addi { rd, rs1, imm }) = uops.get(at + u) else {
        return None;
    };
    if rd != rs1 {
        return None;
    }
    let bne_pc = at + u + 1;
    let Some(&Uop::Bne {
        rs1: b1,
        rs2: b2,
        target,
    }) = uops.get(bne_pc)
    else {
        return None;
    };
    if target != (bne_pc + 1) as i64 {
        return None;
    }
    Some((u, rd, imm, b1, b2))
}

/// Decode-time trace compiler: scans the µop stream for runs of
/// [`MIN_FUSE_REPS`]+ identical steady-state blocks and records them,
/// plus a per-slot entry table (`0` = no run starts here, else run
/// index + 1) so the execution loop pays one array load per fetch.
fn find_fused_runs(uops: &[Uop]) -> (Box<[FusedRun]>, Box<[u32]>) {
    let mut runs: Vec<FusedRun> = Vec::new();
    let mut at_table = vec![0u32; uops.len()];
    let mut pc = 0;
    while pc < uops.len() {
        let Some((u, ctr, ctr_imm, b1, b2)) = match_block(uops, pc) else {
            pc += 1;
            continue;
        };
        let ops: Box<[(VReg, VReg, VReg)]> = (0..u)
            .map(|q| match uops[pc + q] {
                Uop::VindexmacVvi { vd, vs2, vs1, .. } => (vd, vs2, vs1),
                _ => unreachable!("match_block checked the µop kinds"),
            })
            .collect();
        let block = u + 2;
        let mut reps = 1;
        'grow: loop {
            let next = pc + reps * block;
            match match_block(uops, next) {
                Some((u2, c2, i2, x1, x2))
                    if u2 == u && c2 == ctr && i2 == ctr_imm && x1 == b1 && x2 == b2 =>
                {
                    for (q, &expect) in ops.iter().enumerate() {
                        let Uop::VindexmacVvi { vd, vs2, vs1, .. } = uops[next + q] else {
                            unreachable!("match_block checked the µop kinds");
                        };
                        if (vd, vs2, vs1) != expect {
                            break 'grow;
                        }
                    }
                    reps += 1;
                }
                _ => break,
            }
        }
        if reps >= MIN_FUSE_REPS {
            let mut slots = Vec::with_capacity(reps * u);
            for b in 0..reps {
                for q in 0..u {
                    let Uop::VindexmacVvi { slot, .. } = uops[pc + b * block + q] else {
                        unreachable!("match_block checked the µop kinds");
                    };
                    slots.push(slot);
                }
            }
            at_table[pc] = runs.len() as u32 + 1;
            runs.push(FusedRun {
                start: pc,
                u,
                reps,
                ops,
                slots: slots.into_boxed_slice(),
                ctr,
                ctr_imm,
            });
            pc += reps * block;
        } else {
            pc += 1;
        }
    }
    (runs.into(), at_table.into())
}

/// Shortest straight-line region worth compiling to a trace: below this
/// the entry-table lookup and loop setup cost as much as the dispatches
/// they replace.
const MIN_TRACE_UOPS: usize = 6;

/// Longest region one trace may cover. A bound keeps trace *starts*
/// dense in the µop stream, so an execution resumed at an arbitrary
/// slot (a shard boundary lands wherever the budget ran out) falls back
/// to per-µop dispatch for at most this many µops before re-entering
/// compiled code.
const MAX_TRACE_UOPS: usize = 4096;

/// One op of a compiled [`Trace`]: a single µop with its operands
/// pre-extracted (no per-op fetch, entry-table probe, or event
/// plumbing), or a whole embedded [`FusedRun`]. Each op's architectural
/// effect is identical to the µop(s) it covers, which is what lets
/// [`DecodedProgram::run_trace`] stop between any two ops — on budget
/// exhaustion or a fused run stopping early — and hand the µop-exact
/// resume point back to the interpreter.
#[derive(Debug, Clone, Copy)]
enum TraceOp {
    Li {
        rd: XReg,
        imm: u64,
    },
    Mv {
        rd: XReg,
        rs: XReg,
    },
    Addi {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Add {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Sub {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Mul {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Slli {
        rd: XReg,
        rs1: XReg,
        shamt: u32,
    },
    Srli {
        rd: XReg,
        rs1: XReg,
        shamt: u32,
    },
    Nop,
    Vsetvli {
        rd: XReg,
        rs1: XReg,
        sew: Sew,
        lmul: Lmul,
    },
    VLoad {
        vd: VReg,
        rs1: XReg,
        ew: Sew,
    },
    VStore {
        vs3: VReg,
        rs1: XReg,
        ew: Sew,
    },
    /// A conditional branch whose taken target is its own fall-through
    /// slot — the fully-unrolled kernels' loop bookkeeping. Whichever
    /// way the comparison goes the next slot is the same, so the op
    /// retires without reading its registers.
    BranchFall,
    /// An embedded `vindexmac.vvi` slot loop: index into
    /// [`DecodedProgram::fused`].
    Mac {
        run: u32,
    },
    /// A coalesced run of `li` / static-address vector access µops:
    /// index into [`Trace::bursts`].
    Burst {
        idx: u32,
    },
}

/// One vector access of a [`Burst`], its address pre-resolved at
/// trace build time.
#[derive(Debug, Clone, Copy)]
struct BurstAccess {
    store: bool,
    /// Destination (load) or source (store) group base register.
    reg: VReg,
    addr: u64,
    ew: Sew,
}

/// A coalesced run of consecutive trace ops — scalar writes whose
/// values are build-time constants (`li`, or arithmetic folded over
/// `li` results) and vector loads/stores whose addresses
/// constant-propagation resolved. Executing a burst is architecturally
/// identical to dispatching the original µops one at a time: the
/// scalar writes apply in program order, the accesses apply in program
/// order, and the two streams commute with each other (accesses take
/// their addresses from the embedded constants, not the scalar file;
/// scalar ops never read vector state). What the coalescing buys is
/// batching — the shared `vl`/group-width computation happens once (no
/// `vsetvli` can appear inside a burst) and the per-op dispatch
/// disappears. All-or-nothing under a budget: a burst that does not
/// fit is skipped entirely and the interpreter retires its µops one at
/// a time instead.
#[derive(Debug, Clone)]
struct Burst {
    /// µop slots covered (one per coalesced op).
    uops: u32,
    /// Scalar constant writes, in program order.
    sets: Box<[(XReg, u64)]>,
    /// Vector accesses, in program order.
    accs: Box<[BurstAccess]>,
}

/// Executes one [`Burst`] under the current vtype. Infallible: every
/// coalesced op was classified as unable to fault under a `Verified`
/// token, and the addresses are the same constants the per-µop path
/// would compute.
fn exec_burst(burst: &Burst, state: &mut ArchState, mem: &mut MainMemory) {
    for &(rd, v) in &burst.sets {
        state.set_x(rd, v);
    }
    let vl = state.vl();
    let regs = group_regs(vl, state.vlmax());
    for a in &burst.accs {
        debug_assert_eq!(state.vtype().sew, a.ew, "verified access width drifted");
        let eb = SEW_INFO[sew_index(a.ew)].bytes;
        if a.store {
            let src = state.v_group_bytes(a.reg, regs);
            mem.write_slice(a.addr, &src[..vl * eb]);
        } else {
            let dst = state.v_group_bytes_mut(a.reg, regs);
            mem.read_slice(a.addr, &mut dst[..vl * eb]);
        }
    }
}

/// One compiled straight-line trace: `len` consecutive µops starting at
/// `start`, none of which can fault or leave the fall-through path
/// under a [`Verified`] token (the sole data-dependent fault, a fused
/// run's out-of-range indirect source, exits the trace instead of
/// raising). Executing a trace is architecturally identical to
/// dispatching its µops one at a time — it just skips the per-µop
/// fetch, entry-table probe and `pc` bookkeeping.
#[derive(Debug, Clone)]
struct Trace {
    start: usize,
    /// Total µop slots covered.
    len: usize,
    ops: Box<[TraceOp]>,
    /// Statically-known data addresses, one per page the trace's
    /// loads and stores touch, collected by [`plan_trace`]. The
    /// executor prefetches all of them once on trace entry — something
    /// the per-µop path, which discovers each address only when the
    /// `li` before the access retires, cannot do. A trace covers at
    /// most [`MAX_TRACE_UOPS`] µops (a few dozen pages), so nothing
    /// prefetched here is evicted again before its access runs.
    prefetch: Box<[u64]>,
    /// Coalesced op runs referenced by [`TraceOp::Burst`].
    bursts: Box<[Burst]>,
}

/// Fewest vector accesses that justify coalescing a run into a
/// [`Burst`]: below two, the shared `vl`/group-width setup costs as
/// much as the dispatches it saves and the run replays as plain ops.
const MIN_BURST_ACCESSES: usize = 2;

/// Third trace-compiler pass: constant-propagates the scalar register
/// file through one compiled trace and uses the resolved values two
/// ways.
///
/// **Bursts.** Maximal runs of consecutive ops whose effects are fully
/// known at build time — constant scalar writes (`li`, or arithmetic
/// whose inputs all trace back to `li`s) and vector loads/stores at
/// resolved addresses — coalesce into [`Burst`]s, replacing the run
/// with a single [`TraceOp::Burst`]. Register values at trace entry
/// are unknown (except `x0`, hardwired to zero), so only effects
/// rebuilt from constants inside the trace qualify; those are
/// identical on every execution. The kernels materialise every operand
/// address with a `li` right before the access, so in practice the
/// whole steady-state load/store traffic coalesces.
///
/// **Prefetch.** Every resolved access address is also collected into
/// the trace's page-prefetch list. Only *page transitions* are kept:
/// within a [`PAGE_BYTES`](indexmac_mem::PAGE_BYTES) page the accesses
/// stream contiguously through one allocation and the hardware
/// prefetcher keeps up on its own, but it stops at the page boundary —
/// exactly where the simulator also pays a fresh page-map lookup. One
/// early hint per new page covers that gap without paying a lookup per
/// access.
fn plan_trace(start: usize, len: usize, ops: Vec<TraceOp>, fused: &[FusedRun]) -> Trace {
    let mut vals = [None::<u64>; 32];
    // `x0` is hardwired to zero: reads see 0, writes are discarded.
    vals[0] = Some(0);
    fn set(vals: &mut [Option<u64>; 32], rd: XReg, v: Option<u64>) {
        if !rd.is_zero() {
            vals[rd.index() as usize] = v;
        }
    }
    let mut prefetch = Vec::new();
    let mut last_page = None::<u64>;
    let mut out_ops: Vec<TraceOp> = Vec::new();
    let mut bursts: Vec<Burst> = Vec::new();
    // The candidate run: original ops (replayed verbatim when the run
    // is too short to pay for itself) plus their resolved effects.
    let mut run_ops: Vec<TraceOp> = Vec::new();
    let mut run_sets: Vec<(XReg, u64)> = Vec::new();
    let mut run_accs: Vec<BurstAccess> = Vec::new();
    fn flush(
        out_ops: &mut Vec<TraceOp>,
        bursts: &mut Vec<Burst>,
        run_ops: &mut Vec<TraceOp>,
        run_sets: &mut Vec<(XReg, u64)>,
        run_accs: &mut Vec<BurstAccess>,
    ) {
        if run_accs.len() >= MIN_BURST_ACCESSES {
            out_ops.push(TraceOp::Burst {
                idx: bursts.len() as u32,
            });
            bursts.push(Burst {
                uops: run_ops.len() as u32,
                sets: std::mem::take(run_sets).into(),
                accs: std::mem::take(run_accs).into(),
            });
            run_ops.clear();
        } else {
            out_ops.append(run_ops);
            run_sets.clear();
            run_accs.clear();
        }
    }
    // A scalar op with a build-time-constant result joins the
    // candidate run as a constant write; an unresolved one ends it.
    fn fold(
        vals: &mut [Option<u64>; 32],
        run_ops: &mut Vec<TraceOp>,
        run_sets: &mut Vec<(XReg, u64)>,
        op: TraceOp,
        rd: XReg,
        v: Option<u64>,
    ) -> bool {
        set(vals, rd, v);
        match v {
            Some(v) => {
                run_ops.push(op);
                run_sets.push((rd, v));
                true
            }
            None => false,
        }
    }
    for op in ops {
        let joined = match op {
            TraceOp::Li { rd, imm } => {
                fold(&mut vals, &mut run_ops, &mut run_sets, op, rd, Some(imm))
            }
            TraceOp::Mv { rd, rs } => {
                let v = vals[rs.index() as usize];
                fold(&mut vals, &mut run_ops, &mut run_sets, op, rd, v)
            }
            TraceOp::Addi { rd, rs1, imm } => {
                let v = vals[rs1.index() as usize].map(|v| v.wrapping_add(imm));
                fold(&mut vals, &mut run_ops, &mut run_sets, op, rd, v)
            }
            TraceOp::Add { rd, rs1, rs2 } => {
                let v = vals[rs1.index() as usize]
                    .zip(vals[rs2.index() as usize])
                    .map(|(a, b)| a.wrapping_add(b));
                fold(&mut vals, &mut run_ops, &mut run_sets, op, rd, v)
            }
            TraceOp::Sub { rd, rs1, rs2 } => {
                let v = vals[rs1.index() as usize]
                    .zip(vals[rs2.index() as usize])
                    .map(|(a, b)| a.wrapping_sub(b));
                fold(&mut vals, &mut run_ops, &mut run_sets, op, rd, v)
            }
            TraceOp::Mul { rd, rs1, rs2 } => {
                let v = vals[rs1.index() as usize]
                    .zip(vals[rs2.index() as usize])
                    .map(|(a, b)| a.wrapping_mul(b));
                fold(&mut vals, &mut run_ops, &mut run_sets, op, rd, v)
            }
            // `shamt` was masked to `& 63` at decode, so the plain
            // shifts mirror the executor exactly.
            TraceOp::Slli { rd, rs1, shamt } => {
                let v = vals[rs1.index() as usize].map(|v| v << shamt);
                fold(&mut vals, &mut run_ops, &mut run_sets, op, rd, v)
            }
            TraceOp::Srli { rd, rs1, shamt } => {
                let v = vals[rs1.index() as usize].map(|v| v >> shamt);
                fold(&mut vals, &mut run_ops, &mut run_sets, op, rd, v)
            }
            TraceOp::VLoad { vd, rs1, ew } => match vals[rs1.index() as usize] {
                Some(addr) => {
                    run_ops.push(op);
                    run_accs.push(BurstAccess {
                        store: false,
                        reg: vd,
                        addr,
                        ew,
                    });
                    note_page(&mut prefetch, &mut last_page, addr);
                    true
                }
                None => false,
            },
            TraceOp::VStore { vs3, rs1, ew } => match vals[rs1.index() as usize] {
                Some(addr) => {
                    run_ops.push(op);
                    run_accs.push(BurstAccess {
                        store: true,
                        reg: vs3,
                        addr,
                        ew,
                    });
                    note_page(&mut prefetch, &mut last_page, addr);
                    true
                }
                None => false,
            },
            // No architectural effect: rides along in the candidate
            // run (it only bumps the µop count) so one no-op between
            // two access runs does not split a burst.
            TraceOp::Nop | TraceOp::BranchFall => {
                run_ops.push(op);
                true
            }
            TraceOp::Vsetvli { rd, .. } => {
                set(&mut vals, rd, None);
                false
            }
            TraceOp::Mac { run } => {
                set(&mut vals, fused[run as usize].ctr, None);
                false
            }
            TraceOp::Burst { .. } => unreachable!("bursts are introduced by this pass"),
        };
        if !joined {
            flush(
                &mut out_ops,
                &mut bursts,
                &mut run_ops,
                &mut run_sets,
                &mut run_accs,
            );
            out_ops.push(op);
        }
    }
    flush(
        &mut out_ops,
        &mut bursts,
        &mut run_ops,
        &mut run_sets,
        &mut run_accs,
    );
    Trace {
        start,
        len,
        ops: out_ops.into(),
        prefetch: prefetch.into(),
        bursts: bursts.into(),
    }
}

/// Appends `addr` to the trace's prefetch list when it opens a new
/// [`PAGE_BYTES`](indexmac_mem::PAGE_BYTES) page (see [`plan_trace`]).
fn note_page(prefetch: &mut Vec<u64>, last_page: &mut Option<u64>, addr: u64) {
    let page = addr & !(indexmac_mem::PAGE_BYTES - 1);
    if *last_page != Some(page) {
        prefetch.push(addr);
        *last_page = Some(page);
    }
}

/// Classifies one µop for trace inclusion: its pre-extracted
/// [`TraceOp`], or `None` when the op can branch off the fall-through
/// path, fault, touch scalar memory, or needs the cold-path oracle —
/// any of those ends the trace and stays on per-µop dispatch.
fn trace_op(uop: &Uop, pc: usize) -> Option<TraceOp> {
    Some(match *uop {
        Uop::Li { rd, imm } => TraceOp::Li { rd, imm },
        Uop::Mv { rd, rs } => TraceOp::Mv { rd, rs },
        Uop::Addi { rd, rs1, imm } => TraceOp::Addi { rd, rs1, imm },
        Uop::Add { rd, rs1, rs2 } => TraceOp::Add { rd, rs1, rs2 },
        Uop::Sub { rd, rs1, rs2 } => TraceOp::Sub { rd, rs1, rs2 },
        Uop::Mul { rd, rs1, rs2 } => TraceOp::Mul { rd, rs1, rs2 },
        Uop::Slli { rd, rs1, shamt } => TraceOp::Slli { rd, rs1, shamt },
        Uop::Srli { rd, rs1, shamt } => TraceOp::Srli { rd, rs1, shamt },
        Uop::Nop => TraceOp::Nop,
        Uop::Vsetvli { rd, rs1, sew, lmul } => TraceOp::Vsetvli { rd, rs1, sew, lmul },
        Uop::VLoad { vd, rs1, ew } => TraceOp::VLoad { vd, rs1, ew },
        Uop::VStore { vs3, rs1, ew } => TraceOp::VStore { vs3, rs1, ew },
        Uop::Beq { target, .. }
        | Uop::Bne { target, .. }
        | Uop::Blt { target, .. }
        | Uop::Bge { target, .. }
            if target == (pc + 1) as i64 =>
        {
            TraceOp::BranchFall
        }
        _ => return None,
    })
}

/// Second trace-compiler pass: compiles maximal straight-line regions —
/// the whole steady-state tile body of the kernels (address `li`s,
/// unit-stride loads, `vsetvli`s, the fused MAC slot loops, stores and
/// loop bookkeeping) — into [`Trace`]s, plus a per-slot entry table
/// mirroring `fused_at`. Runs after [`find_fused_runs`] so slot loops
/// embed as single [`TraceOp::Mac`] ops.
fn find_traces(uops: &[Uop], fused: &[FusedRun], fused_at: &[u32]) -> (Box<[Trace]>, Box<[u32]>) {
    let mut traces: Vec<Trace> = Vec::new();
    let mut at_table = vec![0u32; uops.len()];
    let mut pc = 0;
    while pc < uops.len() {
        let mut ops: Vec<TraceOp> = Vec::new();
        let mut end = pc;
        while end < uops.len() && end - pc < MAX_TRACE_UOPS {
            let entry = fused_at[end];
            if entry != 0 {
                ops.push(TraceOp::Mac { run: entry - 1 });
                end += fused[entry as usize - 1].len();
                continue;
            }
            let Some(op) = trace_op(&uops[end], end) else {
                break;
            };
            ops.push(op);
            end += 1;
        }
        let len = end - pc;
        if len >= MIN_TRACE_UOPS {
            at_table[pc] = traces.len() as u32 + 1;
            traces.push(plan_trace(pc, len, ops, fused));
            pc = end;
        } else {
            pc += 1;
        }
    }
    (traces.into(), at_table.into())
}

fn decode_one(pc: usize, instr: &Instruction) -> Uop {
    use Instruction as I;
    let abs = |offset: i32| pc as i64 + offset as i64;
    match *instr {
        I::Li { rd, imm } => Uop::Li {
            rd,
            imm: imm as u64,
        },
        I::Mv { rd, rs } => Uop::Mv { rd, rs },
        I::Addi { rd, rs1, imm } => Uop::Addi {
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Add { rd, rs1, rs2 } => Uop::Add { rd, rs1, rs2 },
        I::Sub { rd, rs1, rs2 } => Uop::Sub { rd, rs1, rs2 },
        I::Mul { rd, rs1, rs2 } => Uop::Mul { rd, rs1, rs2 },
        I::Slli { rd, rs1, shamt } => Uop::Slli {
            rd,
            rs1,
            shamt: (shamt & 63) as u32,
        },
        I::Srli { rd, rs1, shamt } => Uop::Srli {
            rd,
            rs1,
            shamt: (shamt & 63) as u32,
        },
        I::Lw { rd, rs1, imm } => Uop::Lw {
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Lwu { rd, rs1, imm } => Uop::Lwu {
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Ld { rd, rs1, imm } => Uop::Ld {
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Sw { rs2, rs1, imm } => Uop::Sw {
            rs2,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Sd { rs2, rs1, imm } => Uop::Sd {
            rs2,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Flw { fd, rs1, imm } => Uop::Flw {
            fd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Beq { rs1, rs2, offset } => Uop::Beq {
            rs1,
            rs2,
            target: abs(offset),
        },
        I::Bne { rs1, rs2, offset } => Uop::Bne {
            rs1,
            rs2,
            target: abs(offset),
        },
        I::Blt { rs1, rs2, offset } => Uop::Blt {
            rs1,
            rs2,
            target: abs(offset),
        },
        I::Bge { rs1, rs2, offset } => Uop::Bge {
            rs1,
            rs2,
            target: abs(offset),
        },
        I::Jal { rd, offset } => Uop::Jal {
            rd,
            target: abs(offset),
        },
        I::Nop => Uop::Nop,
        I::Halt => Uop::Halt,
        I::Vsetvli { rd, rs1, sew, lmul } => Uop::Vsetvli { rd, rs1, sew, lmul },
        I::Vle8 { vd, rs1 } => Uop::VLoad {
            vd,
            rs1,
            ew: Sew::E8,
        },
        I::Vle16 { vd, rs1 } => Uop::VLoad {
            vd,
            rs1,
            ew: Sew::E16,
        },
        I::Vle32 { vd, rs1 } => Uop::VLoad {
            vd,
            rs1,
            ew: Sew::E32,
        },
        I::Vse8 { vs3, rs1 } => Uop::VStore {
            vs3,
            rs1,
            ew: Sew::E8,
        },
        I::Vse16 { vs3, rs1 } => Uop::VStore {
            vs3,
            rs1,
            ew: Sew::E16,
        },
        I::Vse32 { vs3, rs1 } => Uop::VStore {
            vs3,
            rs1,
            ew: Sew::E32,
        },
        I::VfmaccVf { vd, fs1, vs2 } => Uop::VfmaccVf { vd, fs1, vs2 },
        I::VindexmacVx { vd, vs2, rs } => Uop::VindexmacVx { vd, vs2, rs },
        I::VindexmacVvi { vd, vs2, vs1, slot } => Uop::VindexmacVvi { vd, vs2, vs1, slot },
        _ => Uop::Step,
    }
}

/// A program predecoded into µops, ready to run many times.
///
/// Decoding is a single O(static-length) pass; the payoff is per
/// *dynamic* instruction, so a kernel decoded once and swept over many
/// seeds amortises to nothing (see `indexmac::experiment`'s
/// `ProgramCache`). The original instructions are kept alongside the
/// µops for event construction, tracing and the cold-path oracle.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    uops: Box<[Uop]>,
    instrs: Box<[Instruction]>,
    /// Trace-compiled steady-state runs (see [`FusedRun`]).
    fused: Box<[FusedRun]>,
    /// Per-slot fused-run entry table: `0` = no run starts at this
    /// slot, else index + 1 into `fused`.
    fused_at: Box<[u32]>,
    /// Compiled straight-line traces (see [`Trace`]); each embeds the
    /// fused runs it spans as [`TraceOp::Mac`] ops.
    traces: Box<[Trace]>,
    /// Per-slot trace entry table, same encoding as `fused_at`.
    trace_at: Box<[u32]>,
}

impl DecodedProgram {
    /// Predecodes `program` into µops and trace-compiles the IndexMAC
    /// steady-state blocks (see [`DecodedProgram::fused_runs`]).
    pub fn decode(program: &Program) -> Self {
        let instrs: Box<[Instruction]> = program.instructions().into();
        let uops: Box<[Uop]> = instrs
            .iter()
            .enumerate()
            .map(|(pc, i)| decode_one(pc, i))
            .collect();
        let (fused, fused_at) = find_fused_runs(&uops);
        let (traces, trace_at) = find_traces(&uops, &fused, &fused_at);
        Self {
            uops,
            instrs,
            fused,
            fused_at,
            traces,
            trace_at,
        }
    }

    /// Number of fused steady-state runs the trace compiler found.
    pub fn fused_runs(&self) -> usize {
        self.fused.len()
    }

    /// Static µop slots covered by fused runs (the MAC slot loops
    /// alone; see [`DecodedProgram::traced_uops`] for whole-trace
    /// coverage).
    pub fn fused_uops(&self) -> usize {
        self.fused.iter().map(FusedRun::len).sum()
    }

    /// Number of compiled straight-line traces.
    pub fn trace_segments(&self) -> usize {
        self.traces.len()
    }

    /// Static µop slots covered by compiled traces — the trace
    /// compiler's coverage of the program (`traced_uops() / len()` of
    /// the hot kernels approaches 1).
    pub fn traced_uops(&self) -> usize {
        self.traces.iter().map(|t| t.len).sum()
    }

    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The original instruction at `pc` (µops keep their source form
    /// for events and listings).
    pub fn instruction(&self, pc: usize) -> Option<&Instruction> {
        self.instrs.get(pc)
    }

    /// The full original instruction stream — the static analyzer's
    /// input ([`crate::analyze`] walks instructions, not µops, so cold
    /// opcodes are covered too).
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Runs the program from slot 0 until `ebreak`, mutating `state`
    /// and `mem` exactly like the `step()` oracle would, reporting
    /// every dynamic instruction to `obs`.
    ///
    /// # Errors
    ///
    /// The same conditions — and the same values — as the stepwise
    /// loop: [`SimError::Exec`] on functional faults,
    /// [`SimError::FellOffEnd`] on a missing `ebreak`, and
    /// [`SimError::InstructionLimit`] once `max_instructions` retire
    /// without halting (a program whose `ebreak` *is* the limit-th
    /// instruction succeeds).
    pub fn execute<O: Observer>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        max_instructions: u64,
    ) -> Result<u64, SimError> {
        self.execute_impl::<O, true, false>(state, mem, obs, max_instructions)
    }

    /// Runs the program with the statically-provable fault checks
    /// compiled out: element-width agreement, alignment, grouping
    /// support, widening-destination legality, slot ranges and branch
    /// ranges are elided, because the [`Verified`] token witnesses that
    /// [`crate::analyze`] proved them for every reachable slot. The
    /// *data-dependent* indirect-source group check of the IndexMAC
    /// µops is retained (its operand comes from memory), as are the
    /// fetch bound ([`SimError::FellOffEnd`]) and the instruction
    /// limit, so results stay bit-identical to [`DecodedProgram::execute`]
    /// on any program the analyzer accepts.
    ///
    /// `token` must come from analyzing **this** program at the same
    /// VLEN (debug builds assert both).
    ///
    /// When the observer wants no events (the functional
    /// [`NullObserver`] path), execution additionally enters the
    /// trace-compiled fast path: fused steady-state runs (see
    /// [`DecodedProgram::fused_runs`]) retire as batched lane loops.
    /// The fused executor validates every dynamic condition the per-µop
    /// path would check just-in-time, stopping at the exact µop where
    /// one fails and handing that µop to the per-µop loop, so results
    /// — state, retired counts, faults — stay bit-identical.
    /// Use [`DecodedProgram::execute_verified_untraced`] to measure the
    /// pre-trace-compiler verified loop.
    ///
    /// # Errors
    ///
    /// The retained conditions above; see [`DecodedProgram::execute`].
    pub fn execute_verified<O: Observer>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        max_instructions: u64,
        token: Verified,
    ) -> Result<u64, SimError> {
        self.assert_token(state, token);
        self.execute_impl::<O, false, true>(state, mem, obs, max_instructions)
    }

    /// [`DecodedProgram::execute_verified`] with the trace compiler
    /// disabled: the plain check-elided µop loop, kept as the
    /// measurement baseline the fused path is compared against
    /// (`crates/bench/benches/engine_throughput.rs`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DecodedProgram::execute_verified`].
    pub fn execute_verified_untraced<O: Observer>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        max_instructions: u64,
        token: Verified,
    ) -> Result<u64, SimError> {
        self.assert_token(state, token);
        self.execute_impl::<O, false, false>(state, mem, obs, max_instructions)
    }

    #[inline]
    fn assert_token(&self, state: &ArchState, token: Verified) {
        debug_assert_eq!(
            token.program_len(),
            self.len(),
            "Verified token minted for a different program"
        );
        debug_assert_eq!(
            token.vlen_bits(),
            state.vlen_bits(),
            "Verified token minted for a different VLEN"
        );
        let _ = (state, token);
    }

    fn execute_impl<O: Observer, const CHECKED: bool, const TRACED: bool>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        max_instructions: u64,
    ) -> Result<u64, SimError> {
        state.pc = 0;
        state.halted = false;
        match self.run_range::<O, CHECKED, TRACED>(state, mem, obs, max_instructions)? {
            (instret, RangeExit::Halted) => Ok(instret),
            (_, RangeExit::Budget) => Err(SimError::InstructionLimit {
                limit: max_instructions,
            }),
        }
    }

    /// Resumable execution core: runs from the **current** `state.pc`
    /// (no reset) for at most `budget` dynamic instructions, returning
    /// the retired count and why execution stopped. This is the
    /// primitive both the whole-program entry points and the sharded
    /// executor ([`crate::shard`]) are built on; shard boundaries are
    /// exactly the [`RangeExit::Budget`] exits.
    ///
    /// Retirement semantics match the legacy loop bit-for-bit: at least
    /// one instruction executes per call (even at `budget == 0`, like
    /// the legacy loop, which checked its limit only *after* executing),
    /// and a program that halts exactly on the budget boundary counts as
    /// [`RangeExit::Halted`].
    pub(crate) fn run_range<O: Observer, const CHECKED: bool, const TRACED: bool>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        budget: u64,
    ) -> Result<(u64, RangeExit), SimError> {
        let mut instret: u64 = 0;
        while !state.halted {
            let pc = state.pc;
            let Some(uop) = self.uops.get(pc) else {
                return Err(SimError::FellOffEnd { pc });
            };
            // The compiled fast paths are sound only where the per-µop
            // checks were statically elided (`!CHECKED`, i.e. under a
            // `Verified` token) and no observer needs per-µop events —
            // both decided at compile time, so the checked and timed
            // monomorphizations carry no trace-compiler code at all.
            if TRACED && !CHECKED && !O::WANTS_EVENTS {
                let entry = self.trace_at[pc];
                if entry != 0 {
                    let trace = &self.traces[entry as usize - 1];
                    let n = self.run_trace(trace, state, mem, budget - instret)?;
                    if n > 0 {
                        instret += n;
                        if instret >= budget && !state.halted {
                            return Ok((instret, RangeExit::Budget));
                        }
                        continue;
                    }
                }
                // No trace starts here (e.g. a shard resumed mid-trace),
                // but a fused slot loop might.
                let entry = self.fused_at[pc];
                if entry != 0 {
                    let run = &self.fused[entry as usize - 1];
                    let n = self.try_fused(run, state, budget - instret);
                    if n > 0 {
                        instret += n;
                        if instret >= budget && !state.halted {
                            return Ok((instret, RangeExit::Budget));
                        }
                        continue;
                    }
                }
            }
            self.exec_uop::<O, CHECKED>(state, mem, obs, pc, uop)?;
            instret += 1;
            if instret >= budget && !state.halted {
                return Ok((instret, RangeExit::Budget));
            }
        }
        Ok((instret, RangeExit::Halted))
    }

    /// [`DecodedProgram::run_range`] through the checked µop loop (the
    /// sharded executor's replay primitive for unanalyzed programs).
    pub(crate) fn run_range_checked<O: Observer>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        budget: u64,
    ) -> Result<(u64, RangeExit), SimError> {
        self.run_range::<O, true, false>(state, mem, obs, budget)
    }

    /// [`DecodedProgram::run_range`] through the check-elided loop,
    /// trace compilation enabled (inert for event-wanting observers).
    pub(crate) fn run_range_verified<O: Observer>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        budget: u64,
        token: Verified,
    ) -> Result<(u64, RangeExit), SimError> {
        self.assert_token(state, token);
        self.run_range::<O, false, true>(state, mem, obs, budget)
    }

    /// Executes one µop, advancing `state.pc`. Split out of the fetch
    /// loop so each observer's monomorphization stays readable in
    /// profiles. With `CHECKED = false` (the [`Verified`] path) the
    /// statically-proven fault branches compile out; each elision keeps
    /// a `debug_assert` so test builds still catch a mis-minted token.
    #[inline]
    fn exec_uop<O: Observer, const CHECKED: bool>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        pc: usize,
        uop: &Uop,
    ) -> Result<(), SimError> {
        // Event context, only composed when the observer wants events
        // (the stores below are dead — and removed — otherwise).
        let mut mem_op: Option<MemOp> = None;
        let mut indirect: Option<VReg> = None;
        let mut taken = false;
        let mut ev_vl = 0usize;
        let mut ev_sew = Sew::E32;
        if O::WANTS_EVENTS {
            ev_vl = state.vl();
            ev_sew = state.vtype().sew;
        }
        let mut next_pc = pc + 1;

        match *uop {
            Uop::Li { rd, imm } => state.set_x(rd, imm),
            Uop::Mv { rd, rs } => {
                let v = state.x(rs);
                state.set_x(rd, v);
            }
            Uop::Addi { rd, rs1, imm } => {
                let v = state.x(rs1).wrapping_add(imm);
                state.set_x(rd, v);
            }
            Uop::Add { rd, rs1, rs2 } => {
                let v = state.x(rs1).wrapping_add(state.x(rs2));
                state.set_x(rd, v);
            }
            Uop::Sub { rd, rs1, rs2 } => {
                let v = state.x(rs1).wrapping_sub(state.x(rs2));
                state.set_x(rd, v);
            }
            Uop::Mul { rd, rs1, rs2 } => {
                let v = state.x(rs1).wrapping_mul(state.x(rs2));
                state.set_x(rd, v);
            }
            Uop::Slli { rd, rs1, shamt } => {
                let v = state.x(rs1) << shamt;
                state.set_x(rd, v);
            }
            Uop::Srli { rd, rs1, shamt } => {
                let v = state.x(rs1) >> shamt;
                state.set_x(rd, v);
            }
            Uop::Lw { rd, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                let v = mem.read_u32(addr) as i32 as i64 as u64;
                state.set_x(rd, v);
                mem_op = Some(scalar_mem(addr, 4, false));
            }
            Uop::Lwu { rd, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                let v = mem.read_u32(addr) as u64;
                state.set_x(rd, v);
                mem_op = Some(scalar_mem(addr, 4, false));
            }
            Uop::Ld { rd, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                let v = mem.read_u64(addr);
                state.set_x(rd, v);
                mem_op = Some(scalar_mem(addr, 8, false));
            }
            Uop::Sw { rs2, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                mem.write_u32(addr, state.x(rs2) as u32);
                mem_op = Some(scalar_mem(addr, 4, true));
            }
            Uop::Sd { rs2, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                mem.write_u64(addr, state.x(rs2));
                mem_op = Some(scalar_mem(addr, 8, true));
            }
            Uop::Flw { fd, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                state.set_f_bits(fd, mem.read_u32(addr));
                mem_op = Some(scalar_mem(addr, 4, false));
            }
            Uop::Beq { rs1, rs2, target } => {
                if state.x(rs1) == state.x(rs2) {
                    taken = true;
                    next_pc = checked_target::<CHECKED>(target)?;
                }
            }
            Uop::Bne { rs1, rs2, target } => {
                if state.x(rs1) != state.x(rs2) {
                    taken = true;
                    next_pc = checked_target::<CHECKED>(target)?;
                }
            }
            Uop::Blt { rs1, rs2, target } => {
                if (state.x(rs1) as i64) < (state.x(rs2) as i64) {
                    taken = true;
                    next_pc = checked_target::<CHECKED>(target)?;
                }
            }
            Uop::Bge { rs1, rs2, target } => {
                if (state.x(rs1) as i64) >= (state.x(rs2) as i64) {
                    taken = true;
                    next_pc = checked_target::<CHECKED>(target)?;
                }
            }
            Uop::Jal { rd, target } => {
                // The link write precedes the range check, like the
                // oracle (a faulting jal leaves rd written).
                state.set_x(rd, (pc + 1) as u64);
                taken = true;
                next_pc = checked_target::<CHECKED>(target)?;
            }
            Uop::Nop => {}
            Uop::Halt => state.halted = true,
            Uop::Vsetvli { rd, rs1, sew, lmul } => {
                if CHECKED {
                    check_sew_supported(pc, sew)?;
                } else {
                    debug_assert_ne!(sew, Sew::E64, "verified program selected e64");
                }
                ev_vl = vsetvli_body(state, rd, rs1, sew, lmul);
                ev_sew = sew;
            }
            Uop::VLoad { vd, rs1, ew } => {
                mem_op = Some(vload_body::<CHECKED>(state, mem, pc, vd, rs1, ew)?);
            }
            Uop::VStore { vs3, rs1, ew } => {
                mem_op = Some(vstore_body::<CHECKED>(state, mem, pc, vs3, rs1, ew)?);
            }
            Uop::VfmaccVf { vd, fs1, vs2 } => {
                let vl = state.vl();
                let sew = state.vtype().sew;
                if CHECKED {
                    // Not group-aware: the oracle faults on grouping
                    // before the element-width rule.
                    check_grouping_supported(pc, vl, state.vlmax())?;
                    check_e32_only(pc, sew)?;
                } else {
                    debug_assert!(vl <= state.vlmax());
                    debug_assert_eq!(sew, Sew::E32);
                }
                let s = state.f32(fs1);
                let mut buf = [0u8; MAX_GROUP_BYTES];
                buf[..vl * 4].copy_from_slice(&state.v_bytes(vs2)[..vl * 4]);
                let dst = state.v_bytes_mut(vd);
                for i in 0..vl {
                    let o = i * 4;
                    let a = f32::from_bits(le32(&buf, o));
                    let d = f32::from_bits(le32(dst, o));
                    dst[o..o + 4].copy_from_slice(&(d + s * a).to_bits().to_le_bytes());
                }
            }
            Uop::VindexmacVx { vd, vs2, rs } => {
                let sew = state.vtype().sew;
                if CHECKED {
                    // Unlike `.vvi`, the first-generation MAC has no
                    // register-grouping semantics (the oracle's
                    // `group_aware` list excludes it).
                    check_grouping_supported(pc, state.vl(), state.vlmax())?;
                } else {
                    debug_assert!(state.vl() <= state.vlmax());
                }
                let src = VReg::new((state.x(rs) & 0x1F) as u8);
                let multiplier_bits = state.v_lane(vs2, 0, sew);
                indexmac_body::<CHECKED>(state, pc, vd, src, multiplier_bits, sew)?;
                indirect = Some(src);
            }
            Uop::VindexmacVvi { vd, vs2, vs1, slot } => {
                let sew = state.vtype().sew;
                if CHECKED {
                    check_slot(pc, slot, state.vlmax())?;
                } else {
                    debug_assert!((slot as usize) < state.vlmax());
                }
                let slot = slot as usize;
                let src = VReg::new((state.v_lane(vs1, slot, sew) & 0x1F) as u8);
                let multiplier_bits = state.v_lane(vs2, slot, sew);
                indexmac_body::<CHECKED>(state, pc, vd, src, multiplier_bits, sew)?;
                indirect = Some(src);
            }
            Uop::Step => {
                // Cold path: run the oracle interpreter for this one
                // instruction (it advances state.pc itself).
                let ev = step(state, mem, &self.instrs[pc])?;
                if O::WANTS_EVENTS {
                    obs.observe(&ev);
                }
                return Ok(());
            }
        }

        state.pc = next_pc;
        if O::WANTS_EVENTS {
            obs.observe(&ExecEvent {
                pc,
                instr: self.instrs[pc],
                mem: mem_op,
                indirect_vreg: indirect,
                branch_taken: taken,
                vl: ev_vl,
                sew: ev_sew,
            });
        }
        Ok(())
    }

    /// Executes a prefix of a [`FusedRun`] as batched lane loops and
    /// returns the µops retired (0 when the static shape check fails
    /// or the first block does not fit `budget`). `state.pc` is left
    /// at the first unexecuted slot, so the caller's per-µop loop
    /// resumes µop-exactly when the run stops early — on exhausted
    /// budget (block-granular), or on a µop whose indirect source is
    /// out of range (the one data-dependent fault the verified path
    /// retains) or aliases an accumulator group (the per-µop path
    /// handles the overlapping borrow this loop cannot express).
    ///
    /// Bit-exactness: execution is in program order, in place — block
    /// by block, accumulator by accumulator — so any retired prefix
    /// applies exactly the per-µop path's operation sequence (same f32
    /// / wrapping-integer ops, same order, no reassociation, no
    /// staging buffer). Each µop's sources are validated just-in-time
    /// *before* its lanes are touched, so a failing µop leaves state
    /// exactly as the per-µop path would find it. The run's only
    /// architectural effects are the accumulator register groups, the
    /// counter register and the PC (its branches always fall through,
    /// and it touches no memory).
    fn try_fused(&self, run: &FusedRun, state: &mut ArchState, budget: u64) -> u64 {
        let sew = state.vtype().sew;
        if sew == Sew::E64 {
            return 0;
        }
        let vl = state.vl();
        let vlmax = state.vlmax();
        let regs = group_regs(vl, vlmax);
        let info = SEW_INFO[sew_index(sew)];
        let dst_regs = if sew == Sew::E32 {
            regs
        } else {
            regs * info.widen
        };
        if vl * 4 > MAX_GROUP_BYTES {
            return 0;
        }
        // Static shape check (statically proven on the verified path;
        // re-validated because returning 0 is free) + the destination
        // bitmask: bit `r` set iff register `r` is inside some
        // accumulator group. Accumulator groups must be pairwise
        // disjoint for the mask to be meaningful, and the multiplier /
        // metadata registers outside every one of them so the batched
        // lane reads below see the same values as per-µop execution.
        let mut dst_mask: u32 = 0;
        for &(vd, ..) in &run.ops {
            let di = vd.index() as usize;
            if sew != Sew::E32 && (!di.is_multiple_of(info.widen) || dst_regs > 4) {
                return 0;
            }
            if di + dst_regs > 32 {
                return 0;
            }
            let group = ((1u32 << dst_regs) - 1) << di;
            if dst_mask & group != 0 {
                return 0;
            }
            dst_mask |= group;
        }
        for &(_, vs2, vs1) in &run.ops {
            if dst_mask & (1 << vs2.index()) != 0 || dst_mask & (1 << vs1.index()) != 0 {
                return 0;
            }
        }
        let src_mask = (1u32 << regs) - 1;

        // Execute in program order, validating each µop's indirect
        // source just-in-time against the destination mask. `done`
        // counts retired µops, which is also the PC offset into the
        // run: `u` MAC µops per block, then the counter `addi` and the
        // fall-through `bne` (no architectural effect — its target is
        // its own fall-through slot). Multiplier/metadata lanes are
        // read straight off the register file bytes: `slot < vlmax`
        // bounds the lane to one register, so the read sees exactly
        // what `v_lane` would return (and the slots that would make
        // `v_lane` panic fall back to the per-µop path, which panics
        // identically).
        let vlen_bytes = state.vlen_bits() / 8;
        let eb = info.bytes;
        let block = run.block_len();
        let mut slots = run.slots.iter();
        let mut done: usize = 0;
        'blocks: for _ in 0..run.reps {
            if (done + block) as u64 > budget {
                break;
            }
            for &(vd, vs2, vs1) in &run.ops {
                debug_assert!(matches!(
                    self.uops[run.start + done],
                    Uop::VindexmacVvi { .. }
                ));
                let slot = *slots.next().expect("decode collected reps * u slots") as usize;
                if slot >= vlmax {
                    break 'blocks;
                }
                let vrf = state.vrf_bytes();
                let m_bits = lane_bits(vrf, vs2.index() as usize * vlen_bytes + slot * eb, sew);
                let idx = lane_bits(vrf, vs1.index() as usize * vlen_bytes + slot * eb, sew);
                let src = (idx & 0x1F) as usize;
                if src + regs > 32 || (dst_mask >> src) & src_mask != 0 {
                    break 'blocks;
                }
                let src = VReg::new(src as u8);
                if sew == Sew::E32 {
                    let m = f32::from_bits(m_bits);
                    let (dst, sb) = state.v_group_pair_mut(vd, regs, src, regs);
                    let (dst, sb) = (&mut dst[..vl * 4], &sb[..vl * 4]);
                    for (ch, sc) in dst.chunks_exact_mut(4).zip(sb.chunks_exact(4)) {
                        let a = f32::from_bits(u32::from_le_bytes(sc.try_into().expect("4 bytes")));
                        let d = f32::from_bits(u32::from_le_bytes(ch.try_into().expect("4 bytes")));
                        ch.copy_from_slice(&(d + m * a).to_bits().to_le_bytes());
                    }
                } else {
                    let m = sign_extend(m_bits, sew);
                    let (dst, sb) = state.v_group_pair_mut(vd, dst_regs, src, regs);
                    let dst = &mut dst[..vl * 4];
                    if sew == Sew::E8 {
                        let sb = &sb[..vl];
                        for (ch, &raw) in dst.chunks_exact_mut(4).zip(sb.iter()) {
                            let d = i32::from_le_bytes(ch.try_into().expect("4 bytes"));
                            let v = d.wrapping_add(m.wrapping_mul(raw as i8 as i32));
                            ch.copy_from_slice(&v.to_le_bytes());
                        }
                    } else {
                        let sb = &sb[..vl * 2];
                        for (ch, sc) in dst.chunks_exact_mut(4).zip(sb.chunks_exact(2)) {
                            let a = i16::from_le_bytes(sc.try_into().expect("2 bytes")) as i32;
                            let d = i32::from_le_bytes(ch.try_into().expect("4 bytes"));
                            ch.copy_from_slice(&d.wrapping_add(m.wrapping_mul(a)).to_le_bytes());
                        }
                    }
                }
                done += 1;
            }
            // The counter `addi` plus the fall-through `bne`.
            let c = state.x(run.ctr).wrapping_add(run.ctr_imm);
            state.set_x(run.ctr, c);
            done += 2;
        }
        state.pc = run.start + done;
        done as u64
    }

    /// Executes as much of `trace` as `budget` allows, starting at its
    /// first µop (callers enter only via `trace_at[state.pc]`). Returns
    /// the µops retired; `state.pc` is left at the first unexecuted
    /// slot, so the interpreter resumes µop-exactly whether the trace
    /// ran dry of budget, hit a fused run that stopped early (the
    /// caller's per-µop loop then raises the precise fault or handles
    /// the aliasing µop), or completed.
    ///
    /// Infallible in practice: every trace op was classified as unable
    /// to fault under a `Verified` token ([`trace_op`]), and the shared
    /// `*_body` helpers compile their check branches out at
    /// `CHECKED = false`. The `Result` only propagates that type.
    fn run_trace(
        &self,
        trace: &Trace,
        state: &mut ArchState,
        mem: &mut MainMemory,
        budget: u64,
    ) -> Result<u64, SimError> {
        // Warm every statically-known page this trace touches before
        // executing a single op. A hint only: no architectural effect,
        // and over-prefetching past an early stop just warms lines for
        // the resumed run.
        for &addr in &trace.prefetch {
            mem.prefetch(addr);
        }
        let mut pc = trace.start;
        if budget >= trace.len as u64 {
            // Fast loop: the budget covers the whole trace, so no
            // per-op budget compare or retired-count bookkeeping —
            // only `pc`, which the early-stop paths need.
            for op in &trace.ops {
                match *op {
                    TraceOp::Mac { run } => {
                        let run = &self.fused[run as usize];
                        let n = self.try_fused(run, state, u64::MAX);
                        pc += n as usize;
                        if n < run.len() as u64 {
                            state.pc = pc;
                            return Ok((pc - trace.start) as u64);
                        }
                    }
                    TraceOp::Burst { idx } => {
                        let burst = &trace.bursts[idx as usize];
                        exec_burst(burst, state, mem);
                        pc += burst.uops as usize;
                    }
                    _ => {
                        exec_trace_op(op, state, mem, pc)?;
                        pc += 1;
                    }
                }
            }
            state.pc = pc;
            return Ok(trace.len as u64);
        }
        let mut consumed: u64 = 0;
        'ops: for op in &trace.ops {
            if consumed >= budget {
                break;
            }
            match *op {
                TraceOp::Mac { run } => {
                    let run = &self.fused[run as usize];
                    let n = self.try_fused(run, state, budget - consumed);
                    consumed += n;
                    pc += n as usize;
                    if n < run.len() as u64 {
                        break 'ops;
                    }
                }
                // All-or-nothing: a burst that does not fit the
                // remaining budget is left to the per-µop
                // interpreter, which retires its µops one at a time
                // up to the exact budget boundary.
                TraceOp::Burst { idx } => {
                    let burst = &trace.bursts[idx as usize];
                    if consumed + burst.uops as u64 > budget {
                        break 'ops;
                    }
                    exec_burst(burst, state, mem);
                    consumed += burst.uops as u64;
                    pc += burst.uops as usize;
                }
                _ => {
                    exec_trace_op(op, state, mem, pc)?;
                    consumed += 1;
                    pc += 1;
                }
            }
        }
        state.pc = pc;
        Ok(consumed)
    }
}

/// Executes one non-[`TraceOp::Mac`] trace op — the shared body of
/// [`DecodedProgram::run_trace`]'s budget-free and budgeted loops.
/// Infallible in practice (see `run_trace`); the `Result` only
/// propagates the `*_body` helpers' type.
#[inline]
fn exec_trace_op(
    op: &TraceOp,
    state: &mut ArchState,
    mem: &mut MainMemory,
    pc: usize,
) -> Result<(), SimError> {
    match *op {
        TraceOp::Li { rd, imm } => state.set_x(rd, imm),
        TraceOp::Mv { rd, rs } => {
            let v = state.x(rs);
            state.set_x(rd, v);
        }
        TraceOp::Addi { rd, rs1, imm } => {
            let v = state.x(rs1).wrapping_add(imm);
            state.set_x(rd, v);
        }
        TraceOp::Add { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_add(state.x(rs2));
            state.set_x(rd, v);
        }
        TraceOp::Sub { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_sub(state.x(rs2));
            state.set_x(rd, v);
        }
        TraceOp::Mul { rd, rs1, rs2 } => {
            let v = state.x(rs1).wrapping_mul(state.x(rs2));
            state.set_x(rd, v);
        }
        TraceOp::Slli { rd, rs1, shamt } => {
            let v = state.x(rs1) << shamt;
            state.set_x(rd, v);
        }
        TraceOp::Srli { rd, rs1, shamt } => {
            let v = state.x(rs1) >> shamt;
            state.set_x(rd, v);
        }
        TraceOp::Nop | TraceOp::BranchFall => {}
        TraceOp::Vsetvli { rd, rs1, sew, lmul } => {
            debug_assert_ne!(sew, Sew::E64, "verified program selected e64");
            vsetvli_body(state, rd, rs1, sew, lmul);
        }
        TraceOp::VLoad { vd, rs1, ew } => {
            vload_body::<false>(state, mem, pc, vd, rs1, ew)?;
        }
        TraceOp::VStore { vs3, rs1, ew } => {
            vstore_body::<false>(state, mem, pc, vs3, rs1, ew)?;
        }
        TraceOp::Mac { .. } | TraceOp::Burst { .. } => {
            unreachable!("run_trace handles fused runs and bursts")
        }
    }
    Ok(())
}

/// One lane, zero-extended, read straight off register-file bytes at a
/// precomputed offset — the caller has already bounded the lane to a
/// single register, so this returns exactly what
/// [`ArchState::v_lane`](crate::ArchState::v_lane) would.
#[inline]
fn lane_bits(vrf: &[u8], off: usize, sew: Sew) -> u32 {
    match sew {
        Sew::E8 => vrf[off] as u32,
        Sew::E16 => u16::from_le_bytes(vrf[off..off + 2].try_into().expect("2 bytes")) as u32,
        _ => u32::from_le_bytes(vrf[off..off + 4].try_into().expect("4 bytes")),
    }
}

#[inline]
fn scalar_mem(addr: u64, bytes: u64, write: bool) -> MemOp {
    MemOp {
        addr,
        bytes,
        write,
        vector: false,
    }
}

/// Validates a precomputed absolute branch target, mirroring the
/// oracle's `next_pc < 0` rule (over-the-end targets surface later as
/// `FellOffEnd`, exactly like the oracle). The verified path
/// (`CHECKED = false`) compiles the branch out: the analyzer proved
/// every reachable target non-negative.
#[inline]
fn checked_target<const CHECKED: bool>(target: i64) -> Result<usize, SimError> {
    if CHECKED {
        crate::checks::check_branch_target(target)?;
    } else {
        debug_assert!(target >= 0, "verified program branched below slot 0");
    }
    Ok(target as usize)
}

#[inline]
fn le32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

/// The shared MAC body of both IndexMAC µops — bit-for-bit the oracle's
/// `exec_indexmac_body`, restructured to borrow each register group's
/// bytes once instead of per lane.
///
/// The indirect-source group check is retained even on the verified
/// path (`CHECKED = false`): the selected register comes from runtime
/// data (scalar register or metadata lane), so the analyzer can only
/// vouch for it through a layout contract — the one data-dependent rule
/// stays a real branch. The *destination* checks (widening alignment,
/// group ranges over a decode-time-constant base) do compile out.
/// `vsetvli` semantics, shared verbatim by the per-µop interpreter and
/// the trace executor. Returns the new `vl` (for event construction).
#[inline]
fn vsetvli_body(state: &mut ArchState, rd: XReg, rs1: XReg, sew: Sew, lmul: Lmul) -> usize {
    state.set_vtype(indexmac_isa::VType { sew, lmul });
    let vlmax = state.vlmax_grouped();
    let avl = if rs1.is_zero() {
        if rd.is_zero() {
            state.vl()
        } else {
            vlmax
        }
    } else {
        state.x(rs1) as usize
    };
    let vl = avl.min(vlmax);
    state.set_vl(vl);
    state.set_x(rd, vl as u64);
    vl
}

/// Unit-stride vector load semantics, shared verbatim by the per-µop
/// interpreter and the trace executor.
#[inline]
fn vload_body<const CHECKED: bool>(
    state: &mut ArchState,
    mem: &mut MainMemory,
    pc: usize,
    vd: VReg,
    rs1: XReg,
    ew: Sew,
) -> Result<MemOp, SimError> {
    let sew = state.vtype().sew;
    let eb = SEW_INFO[sew_index(ew)].bytes;
    let addr = state.x(rs1);
    let vl = state.vl();
    let regs = group_regs(vl, state.vlmax());
    if CHECKED {
        check_element_width(pc, sew, ew)?;
        check_vector_alignment(pc, addr, eb as u64)?;
        check_group(pc, vd, regs)?;
    } else {
        debug_assert_eq!(sew, ew, "verified load width drifted");
        debug_assert!(addr.is_multiple_of(eb as u64));
        debug_assert!(vd.index() as usize + regs <= 32);
    }
    let dst = state.v_group_bytes_mut(vd, regs);
    mem.read_slice(addr, &mut dst[..vl * eb]);
    Ok(MemOp {
        addr,
        bytes: (vl * eb) as u64,
        write: false,
        vector: true,
    })
}

/// Unit-stride vector store semantics, shared verbatim by the per-µop
/// interpreter and the trace executor.
#[inline]
fn vstore_body<const CHECKED: bool>(
    state: &mut ArchState,
    mem: &mut MainMemory,
    pc: usize,
    vs3: VReg,
    rs1: XReg,
    ew: Sew,
) -> Result<MemOp, SimError> {
    let sew = state.vtype().sew;
    let eb = SEW_INFO[sew_index(ew)].bytes;
    let addr = state.x(rs1);
    let vl = state.vl();
    let regs = group_regs(vl, state.vlmax());
    if CHECKED {
        check_element_width(pc, sew, ew)?;
        check_vector_alignment(pc, addr, eb as u64)?;
        check_group(pc, vs3, regs)?;
    } else {
        debug_assert_eq!(sew, ew, "verified store width drifted");
        debug_assert!(addr.is_multiple_of(eb as u64));
        debug_assert!(vs3.index() as usize + regs <= 32);
    }
    let src = state.v_group_bytes(vs3, regs);
    mem.write_slice(addr, &src[..vl * eb]);
    Ok(MemOp {
        addr,
        bytes: (vl * eb) as u64,
        write: true,
        vector: true,
    })
}

fn indexmac_body<const CHECKED: bool>(
    state: &mut ArchState,
    pc: usize,
    vd: VReg,
    src: VReg,
    multiplier_bits: u32,
    sew: Sew,
) -> Result<(), SimError> {
    let vl = state.vl();
    let regs = group_regs(vl, state.vlmax());
    check_group(pc, src, regs)?;
    let info = SEW_INFO[sew_index(sew)];
    let mut buf = [0u8; MAX_GROUP_BYTES];
    buf[..vl * info.bytes].copy_from_slice(&state.v_group_bytes(src, regs)[..vl * info.bytes]);
    if sew == Sew::E32 {
        if CHECKED {
            check_group(pc, vd, regs)?;
        } else {
            debug_assert!(vd.index() as usize + regs <= 32);
        }
        let m = f32::from_bits(multiplier_bits);
        let dst = state.v_group_bytes_mut(vd, regs);
        for i in 0..vl {
            let o = i * 4;
            let a = f32::from_bits(le32(&buf, o));
            let d = f32::from_bits(le32(dst, o));
            dst[o..o + 4].copy_from_slice(&(d + m * a).to_bits().to_le_bytes());
        }
    } else {
        // Widening integer MAC: i8/i16 operands, i32 accumulation, the
        // destination group `widen`× the source EMUL.
        let dst_regs = if CHECKED {
            let dst_regs = check_widening_dst(pc, sew, vd, regs)?;
            check_group(pc, vd, dst_regs)?;
            dst_regs
        } else {
            let dst_regs = regs * info.widen;
            debug_assert!((vd.index() as usize).is_multiple_of(info.widen) && dst_regs <= 4);
            debug_assert!(vd.index() as usize + dst_regs <= 32);
            dst_regs
        };
        let m = sign_extend(multiplier_bits, sew);
        let dst = state.v_group_bytes_mut(vd, dst_regs);
        if sew == Sew::E8 {
            for (i, &raw) in buf.iter().enumerate().take(vl) {
                let a = raw as i8 as i32;
                let o = i * 4;
                let d = le32(dst, o) as i32;
                let v = d.wrapping_add(m.wrapping_mul(a));
                dst[o..o + 4].copy_from_slice(&v.to_le_bytes());
            }
        } else {
            for i in 0..vl {
                let a = i16::from_le_bytes([buf[i * 2], buf[i * 2 + 1]]) as i32;
                let o = i * 4;
                let d = le32(dst, o) as i32;
                let v = d.wrapping_add(m.wrapping_mul(a));
                dst[o..o + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_isa::{ProgramBuilder, VType};

    fn fixture(build: impl FnOnce(&mut ProgramBuilder)) -> Program {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.build()
    }

    /// Runs `program` through both the decoded engine and the stepwise
    /// oracle on identical initial state, asserting identical results
    /// and final architectural state.
    fn assert_parity(program: &Program, setup: impl Fn(&mut ArchState, &mut MainMemory)) {
        let mut s_engine = ArchState::new(512);
        let mut m_engine = MainMemory::new();
        setup(&mut s_engine, &mut m_engine);
        let mut s_oracle = s_engine.clone();
        let mut m_oracle = m_engine.clone();

        let decoded = DecodedProgram::decode(program);
        let got = decoded.execute(&mut s_engine, &mut m_engine, &mut NullObserver, 100_000);

        // Oracle loop: fetch + step until halt.
        let want = (|| -> Result<u64, SimError> {
            s_oracle.pc = 0;
            s_oracle.halted = false;
            let mut n = 0u64;
            while !s_oracle.halted {
                let pc = s_oracle.pc;
                let instr = *program.fetch(pc).ok_or(SimError::FellOffEnd { pc })?;
                step(&mut s_oracle, &mut m_oracle, &instr)?;
                n += 1;
                if n >= 100_000 && !s_oracle.halted {
                    return Err(SimError::InstructionLimit { limit: 100_000 });
                }
            }
            Ok(n)
        })();

        assert_eq!(got, want, "run outcome diverged");
        for r in 0..32 {
            assert_eq!(
                s_engine.x(XReg::new(r)),
                s_oracle.x(XReg::new(r)),
                "x{r} diverged"
            );
            let v = VReg::new(r);
            assert_eq!(s_engine.v_bytes(v), s_oracle.v_bytes(v), "v{r} diverged");
        }
        assert_eq!(s_engine.vl(), s_oracle.vl());
        assert_eq!(s_engine.vtype(), s_oracle.vtype());
        assert_eq!(s_engine.pc, s_oracle.pc);
    }

    #[test]
    fn decode_unpacks_and_preserves_length() {
        let p = fixture(|b| {
            b.li(XReg::T0, 5);
            let top = b.bind_label();
            b.addi(XReg::T0, XReg::T0, -1);
            b.bne(XReg::T0, XReg::ZERO, top);
            b.halt();
        });
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.instruction(3), Some(&Instruction::Halt));
        assert_eq!(d.instruction(4), None);
        // The backward branch's target is absolute after decode.
        assert!(matches!(d.uops[2], Uop::Bne { target: 1, .. }));
    }

    #[test]
    fn scalar_loop_parity() {
        let p = fixture(|b| {
            b.li(XReg::T0, 10);
            let top = b.bind_label();
            b.addi(XReg::T1, XReg::T1, 7);
            b.addi(XReg::T0, XReg::T0, -1);
            b.bne(XReg::T0, XReg::ZERO, top);
            b.halt();
        });
        assert_parity(&p, |_, _| {});
    }

    #[test]
    fn vector_roundtrip_parity_at_each_sew() {
        for (sew, lmul) in [
            (Sew::E8, Lmul::M1),
            (Sew::E16, Lmul::M2),
            (Sew::E32, Lmul::M1),
            (Sew::E32, Lmul::M2),
        ] {
            let p = fixture(|b| {
                b.push(Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::ZERO,
                    sew,
                    lmul,
                });
                b.li(XReg::A0, 0x1000);
                b.li(XReg::A1, 0x2000);
                b.push(match sew {
                    Sew::E8 => Instruction::Vle8 {
                        vd: VReg::V4,
                        rs1: XReg::A0,
                    },
                    Sew::E16 => Instruction::Vle16 {
                        vd: VReg::V4,
                        rs1: XReg::A0,
                    },
                    _ => Instruction::Vle32 {
                        vd: VReg::V4,
                        rs1: XReg::A0,
                    },
                });
                b.push(match sew {
                    Sew::E8 => Instruction::Vse8 {
                        vs3: VReg::V4,
                        rs1: XReg::A1,
                    },
                    Sew::E16 => Instruction::Vse16 {
                        vs3: VReg::V4,
                        rs1: XReg::A1,
                    },
                    _ => Instruction::Vse32 {
                        vs3: VReg::V4,
                        rs1: XReg::A1,
                    },
                });
                b.halt();
            });
            assert_parity(&p, |_, m| {
                for i in 0..256u64 {
                    m.write_u8(0x1000 + i, (i as u8).wrapping_mul(31).wrapping_add(7));
                }
            });
        }
    }

    #[test]
    fn indexmac_vvi_parity_including_widening() {
        for sew in [Sew::E8, Sew::E16, Sew::E32] {
            let p = fixture(|b| {
                b.push(Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::ZERO,
                    sew,
                    lmul: Lmul::M1,
                });
                b.push(Instruction::VindexmacVvi {
                    vd: VReg::V0,
                    vs2: VReg::V8,
                    vs1: VReg::new(9),
                    slot: 2,
                });
                b.halt();
            });
            assert_parity(&p, |s, _| {
                s.set_vtype(VType {
                    sew,
                    lmul: Lmul::M1,
                });
                for i in 0..s.lanes(sew) {
                    s.set_v_lane(VReg::new(20), i, sew, (i as u32).wrapping_mul(0x83));
                    s.set_v_lane(
                        VReg::V8,
                        i,
                        sew,
                        (i as u32).wrapping_mul(0x2B).wrapping_add(1),
                    );
                }
                s.set_v_lane(VReg::new(9), 2, sew, 20);
            });
        }
    }

    #[test]
    fn fault_parity_on_bad_programs() {
        // Missing halt.
        assert_parity(
            &fixture(|b| {
                b.li(XReg::T0, 1);
            }),
            |_, _| {},
        );
        // Unaligned vector load.
        assert_parity(
            &fixture(|b| {
                b.li(XReg::A0, 0x1001);
                b.push(Instruction::Vle32 {
                    vd: VReg::V1,
                    rs1: XReg::A0,
                });
                b.halt();
            }),
            |_, _| {},
        );
        // e64 vsetvli.
        assert_parity(
            &fixture(|b| {
                b.push(Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::ZERO,
                    sew: Sew::E64,
                    lmul: Lmul::M1,
                });
                b.halt();
            }),
            |_, _| {},
        );
        // Backward branch past slot 0.
        assert_parity(
            &fixture(|b| {
                b.push(Instruction::Beq {
                    rs1: XReg::ZERO,
                    rs2: XReg::ZERO,
                    offset: -5,
                });
                b.halt();
            }),
            |_, _| {},
        );
        // Widening destination misaligned at e8.
        assert_parity(
            &fixture(|b| {
                b.push(Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::ZERO,
                    sew: Sew::E8,
                    lmul: Lmul::M1,
                });
                b.li(XReg::T1, 20);
                b.push(Instruction::VindexmacVx {
                    vd: VReg::V1,
                    vs2: VReg::V8,
                    rs: XReg::T1,
                });
                b.halt();
            }),
            |_, _| {},
        );
    }

    #[test]
    fn cold_uops_fall_back_to_the_oracle() {
        // vadd.vv / slides / moves decode to Uop::Step and still execute.
        let p = fixture(|b| {
            b.li(XReg::T0, 3);
            b.push(Instruction::VmvVx {
                vd: VReg::V1,
                rs1: XReg::T0,
            });
            b.push(Instruction::VaddVv {
                vd: VReg::V2,
                vs2: VReg::V1,
                vs1: VReg::V1,
            });
            b.push(Instruction::Vslide1downVx {
                vd: VReg::V2,
                vs2: VReg::V2,
                rs1: XReg::ZERO,
            });
            b.push(Instruction::VmvXs {
                rd: XReg::T1,
                vs2: VReg::V2,
            });
            b.halt();
        });
        let d = DecodedProgram::decode(&p);
        assert!(matches!(d.uops[2], Uop::Step));
        assert_parity(&p, |_, _| {});
    }

    #[test]
    fn null_observer_and_event_observer_agree_on_state() {
        let p = fixture(|b| {
            b.li(XReg::A0, 0x3000);
            b.push(Instruction::Vle32 {
                vd: VReg::V2,
                rs1: XReg::A0,
            });
            b.push(Instruction::VfmaccVf {
                vd: VReg::V3,
                fs1: FReg::F0,
                vs2: VReg::V2,
            });
            b.halt();
        });
        let d = DecodedProgram::decode(&p);
        let mut s1 = ArchState::new(512);
        let mut m1 = MainMemory::new();
        m1.write_f32_slice(0x3000, &[1.5; 16]);
        let mut s2 = s1.clone();
        let mut m2 = m1.clone();
        let n1 = d
            .execute(&mut s1, &mut m1, &mut NullObserver, u64::MAX)
            .unwrap();
        let mut events = Vec::new();
        let n2 = d
            .execute(
                &mut s2,
                &mut m2,
                &mut |ev: &ExecEvent| events.push(*ev),
                u64::MAX,
            )
            .unwrap();
        assert_eq!(n1, n2);
        assert_eq!(events.len() as u64, n2);
        assert_eq!(s1.v_bytes(VReg::V3), s2.v_bytes(VReg::V3));
        // The event stream carries the memory op and program order.
        assert!(events[1].mem.unwrap().vector);
        assert_eq!(events[1].pc, 1);
    }

    #[test]
    fn sew_info_matches_the_derived_constants() {
        for sew in [Sew::E8, Sew::E16, Sew::E32] {
            let info = SEW_INFO[sew_index(sew)];
            assert_eq!(info.bytes, sew.bytes());
            assert_eq!(info.lane_mask as u64, (1u64 << sew.bits()) - 1);
            assert_eq!(info.widen, crate::exec::widen_factor(sew));
        }
    }

    // ------------------------------------------------------------------
    // Trace compiler
    // ------------------------------------------------------------------

    /// Emits the unrolled IndexMAC steady-state shape the trace compiler
    /// targets: `reps` blocks of one `vindexmac.vvi` per dst, a counter
    /// decrement and a fall-through loop branch — exactly what the
    /// kernel builders produce per dynamic iteration.
    fn fused_kernel(reps: usize, sew: Sew, dsts: &[VReg], mult: VReg, meta: VReg) -> Program {
        let vl = 512 / sew.bits();
        let mut b = ProgramBuilder::new();
        b.li(XReg::A0, vl as i64);
        b.push(Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew,
            lmul: Lmul::M1,
        });
        b.li(XReg::T2, 100);
        for r in 0..reps {
            for &vd in dsts {
                b.push(Instruction::VindexmacVvi {
                    vd,
                    vs2: mult,
                    vs1: meta,
                    slot: (r % vl) as u8,
                });
            }
            b.addi(XReg::T2, XReg::T2, -1);
            let next = b.new_label();
            b.bne(XReg::T2, XReg::ZERO, next);
            b.bind(next);
        }
        b.halt();
        b.build()
    }

    /// Seeds the VRF so every metadata slot selects a valid indirect
    /// source: metadata lanes alternate between v20 and v21, both filled
    /// with per-lane data, multipliers in `mult`.
    fn seed_vrf(s: &mut ArchState, sew: Sew, mult: VReg, meta: VReg, src_base: u32) {
        let vl = 512 / sew.bits();
        for i in 0..vl {
            let (m_bits, a_bits, b_bits) = match sew {
                Sew::E32 => (
                    (0.5f32 + 0.125 * i as f32).to_bits(),
                    (1.5f32 + i as f32).to_bits(),
                    (0.25f32 * i as f32 - 2.0).to_bits(),
                ),
                // Integer element widths: small signed values.
                _ => (
                    (i as i32 - 3) as u32,
                    (2 * i as i32 - 7) as u32,
                    (5 - i as i32) as u32,
                ),
            };
            s.set_v_lane(mult, i, sew, m_bits);
            s.set_v_lane(meta, i, sew, src_base + (i as u32 % 2));
            s.set_v_lane(VReg::new(src_base as u8), i, sew, a_bits);
            s.set_v_lane(VReg::new(src_base as u8 + 1), i, sew, b_bits);
        }
    }

    /// Runs `program` through the trace-compiled verified loop and the
    /// checked per-µop loop on identical initial state, asserting
    /// identical outcomes and bit-identical architectural state (the
    /// checked loop is itself oracle-verified by [`assert_parity`]).
    fn assert_fused_parity(
        program: &Program,
        setup: impl Fn(&mut ArchState, &mut MainMemory),
    ) -> ArchState {
        let decoded = DecodedProgram::decode(program);
        let mut s_fused = ArchState::new(512);
        let mut m_fused = MainMemory::new();
        setup(&mut s_fused, &mut m_fused);
        let mut s_checked = s_fused.clone();
        let mut m_checked = m_fused.clone();
        let got = decoded.execute_impl::<_, false, true>(
            &mut s_fused,
            &mut m_fused,
            &mut NullObserver,
            100_000,
        );
        let want = decoded.execute(&mut s_checked, &mut m_checked, &mut NullObserver, 100_000);
        assert_eq!(got, want, "run outcome diverged");
        assert_eq!(s_fused, s_checked, "architectural state diverged");
        s_fused
    }

    #[test]
    fn trace_compiler_finds_the_steady_state_shape() {
        let p = fused_kernel(6, Sew::E32, &[VReg::V0, VReg::V4], VReg::V8, VReg::new(10));
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.fused_runs(), 1);
        // u = 2 per block, block = u + 2, 6 blocks.
        assert_eq!(d.fused_uops(), 6 * 4);
        // Entry table: the run starts right after the 3 setup slots.
        assert_eq!(d.fused_at[3], 1);
        assert!(d.fused_at[4..].iter().all(|&e| e == 0));
        let run = &d.fused[0];
        assert_eq!((run.start, run.u, run.reps), (3, 2, 6));
        assert_eq!(run.ctr, XReg::T2);
        assert_eq!(run.ctr_imm, (-1i64) as u64);
    }

    #[test]
    fn trace_compiler_respects_the_rep_threshold() {
        let below = fused_kernel(
            MIN_FUSE_REPS - 1,
            Sew::E32,
            &[VReg::V0],
            VReg::V8,
            VReg::new(10),
        );
        assert_eq!(DecodedProgram::decode(&below).fused_runs(), 0);
        let at = fused_kernel(
            MIN_FUSE_REPS,
            Sew::E32,
            &[VReg::V0],
            VReg::V8,
            VReg::new(10),
        );
        let d = DecodedProgram::decode(&at);
        assert_eq!(d.fused_runs(), 1);
        assert_eq!(d.fused[0].reps, MIN_FUSE_REPS);
    }

    #[test]
    fn trace_compiler_ignores_non_matching_blocks() {
        // A counter bump whose rd != rs1 breaks the shape.
        let p = fixture(|b| {
            b.li(XReg::T2, 100);
            for _ in 0..8 {
                b.push(Instruction::VindexmacVvi {
                    vd: VReg::V0,
                    vs2: VReg::V8,
                    vs1: VReg::new(10),
                    slot: 0,
                });
                b.addi(XReg::T3, XReg::T2, -1);
                let next = b.new_label();
                b.bne(XReg::T2, XReg::ZERO, next);
                b.bind(next);
            }
            b.halt();
        });
        assert_eq!(DecodedProgram::decode(&p).fused_runs(), 0);
        // A taken branch target (real loop, not unrolled) breaks it too.
        let p = fixture(|b| {
            b.li(XReg::T2, 8);
            let top = b.bind_label();
            b.push(Instruction::VindexmacVvi {
                vd: VReg::V0,
                vs2: VReg::V8,
                vs1: VReg::new(10),
                slot: 0,
            });
            b.addi(XReg::T2, XReg::T2, -1);
            b.bne(XReg::T2, XReg::ZERO, top);
            b.halt();
        });
        assert_eq!(DecodedProgram::decode(&p).fused_runs(), 0);
    }

    #[test]
    fn fused_path_matches_checked_engine_at_each_sew() {
        for sew in [Sew::E8, Sew::E16, Sew::E32] {
            let p = fused_kernel(6, sew, &[VReg::V0, VReg::V4], VReg::V8, VReg::new(10));
            assert_eq!(DecodedProgram::decode(&p).fused_runs(), 1, "{sew:?}");
            let end = assert_fused_parity(&p, |s, _| seed_vrf(s, sew, VReg::V8, VReg::new(10), 20));
            // The counter folded to its final value: 100 - reps.
            assert_eq!(end.x(XReg::T2), 94, "{sew:?}");
        }
    }

    #[test]
    fn fused_path_falls_back_on_aliasing() {
        // Every variant here defeats a different precheck; all must
        // still match the checked engine bit-for-bit via the per-µop
        // fallback.
        let cases: &[(&str, &[VReg], VReg, VReg, u32)] = &[
            // Metadata lane selects a register inside a dst group.
            (
                "src aliases dst",
                &[VReg::V0, VReg::V4],
                VReg::V8,
                VReg::new(10),
                0,
            ),
            // The multiplier register is itself a destination.
            (
                "vs2 aliases dst",
                &[VReg::V8, VReg::V4],
                VReg::V8,
                VReg::new(10),
                20,
            ),
            // The metadata register is itself a destination.
            (
                "vs1 aliases dst",
                &[VReg::new(10), VReg::V4],
                VReg::V8,
                VReg::new(10),
                20,
            ),
        ];
        for &(what, dsts, mult, meta, src_base) in cases {
            let p = fused_kernel(6, Sew::E32, dsts, mult, meta);
            assert_eq!(DecodedProgram::decode(&p).fused_runs(), 1, "{what}");
            assert_fused_parity(&p, |s, _| {
                seed_vrf(s, Sew::E32, mult, meta, 20);
                if src_base != 20 {
                    for i in 0..16 {
                        s.set_v_lane(meta, i, Sew::E32, src_base);
                    }
                }
            });
        }
        // The same accumulator twice per block: the destination mask
        // is only meaningful for pairwise-disjoint groups, so the
        // static check must reject this shape and fall back.
        let p = fused_kernel(6, Sew::E32, &[VReg::V0, VReg::V0], VReg::V8, VReg::new(10));
        assert_eq!(DecodedProgram::decode(&p).fused_runs(), 1);
        assert_fused_parity(&p, |s, _| {
            seed_vrf(s, Sew::E32, VReg::V8, VReg::new(10), 20);
        });
    }

    #[test]
    fn traced_run_range_matches_checked_at_every_budget() {
        // Budgets that land mid-fused-run stop the batched path at a
        // block boundary and hand the tail to the per-µop loop; every
        // budget must retire the same count, exit the same way and
        // leave identical state as the checked loop — this is the
        // shard-boundary contract.
        let p = fused_kernel(6, Sew::E32, &[VReg::V0, VReg::V4], VReg::V8, VReg::new(10));
        let decoded = DecodedProgram::decode(&p);
        assert_eq!(decoded.fused_runs(), 1);
        let total = 3 + 6 * 4 + 1; // setup + blocks + halt
        for budget in 0..=(total + 2) as u64 {
            let mut s_t = ArchState::new(512);
            let mut m_t = MainMemory::new();
            seed_vrf(&mut s_t, Sew::E32, VReg::V8, VReg::new(10), 20);
            let mut s_c = s_t.clone();
            let mut m_c = m_t.clone();
            let got = decoded
                .run_range::<_, false, true>(&mut s_t, &mut m_t, &mut NullObserver, budget)
                .unwrap();
            let want = decoded
                .run_range::<_, true, false>(&mut s_c, &mut m_c, &mut NullObserver, budget)
                .unwrap();
            assert_eq!(got, want, "budget {budget}");
            assert_eq!(s_t, s_c, "budget {budget}");
            // Resuming from the boundary completes identically.
            if got.1 == RangeExit::Budget {
                let rest_t = decoded
                    .run_range::<_, false, true>(&mut s_t, &mut m_t, &mut NullObserver, u64::MAX)
                    .unwrap();
                let rest_c = decoded
                    .run_range::<_, true, false>(&mut s_c, &mut m_c, &mut NullObserver, u64::MAX)
                    .unwrap();
                assert_eq!(rest_t, rest_c, "budget {budget} resume");
                assert_eq!(s_t, s_c, "budget {budget} resume");
                assert_eq!(got.0 + rest_t.0, total as u64, "budget {budget} total");
            }
        }
    }

    /// The kernel idiom the burst planner targets: every operand
    /// address is materialised by a `li` (or arithmetic folded over
    /// one) right before its access.
    fn bursty_fixture() -> Program {
        fixture(|b| {
            b.push(Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::ZERO,
                sew: Sew::E32,
                lmul: Lmul::M1,
            });
            b.li(XReg::T1, 0x1000);
            b.push(Instruction::Vle32 {
                vd: VReg::new(1),
                rs1: XReg::T1,
            });
            b.li(XReg::T2, 0x2000);
            b.push(Instruction::Vle32 {
                vd: VReg::new(2),
                rs1: XReg::T2,
            });
            b.addi(XReg::T3, XReg::T1, 0x100);
            b.push(Instruction::Vse32 {
                vs3: VReg::new(1),
                rs1: XReg::T3,
            });
            // This load's address comes from an entry register the
            // planner cannot see: it must end the run, staying a
            // plain per-op dispatch.
            b.push(Instruction::Vle32 {
                vd: VReg::new(3),
                rs1: XReg::A0,
            });
            b.halt();
        })
    }

    #[test]
    fn trace_planner_coalesces_static_access_runs_into_bursts() {
        let d = DecodedProgram::decode(&bursty_fixture());
        assert_eq!(d.traces.len(), 1);
        let t = &d.traces[0];
        // vsetvli + 6-µop burst + the unresolved load; `halt` ends
        // the trace.
        assert_eq!(t.len, 8);
        assert!(matches!(
            &t.ops[..],
            [
                TraceOp::Vsetvli { .. },
                TraceOp::Burst { idx: 0 },
                TraceOp::VLoad { .. }
            ]
        ));
        assert_eq!(t.bursts.len(), 1);
        let burst = &t.bursts[0];
        assert_eq!(burst.uops, 6);
        // Constant propagation resolved all three scalar writes,
        // including the `addi` folded over the first `li`.
        assert_eq!(
            &burst.sets[..],
            &[(XReg::T1, 0x1000), (XReg::T2, 0x2000), (XReg::T3, 0x1100)]
        );
        let accs: Vec<(bool, u64)> = burst.accs.iter().map(|a| (a.store, a.addr)).collect();
        assert_eq!(accs, [(false, 0x1000), (false, 0x2000), (true, 0x1100)]);
        // Page-transition prefetch: first page, second page, and back.
        assert_eq!(&t.prefetch[..], &[0x1000, 0x2000, 0x1100]);
    }

    #[test]
    fn burst_budget_stops_are_uop_exact() {
        // A budget landing inside a burst must leave the whole burst
        // to the per-µop interpreter: state AND memory identical to
        // the checked loop at every boundary, and a resume completes
        // identically — the shard-boundary contract again, for the
        // store inside the burst.
        let p = bursty_fixture();
        let decoded = DecodedProgram::decode(&p);
        let total = 9u64; // 8 traced slots + halt
        for budget in 0..=total + 2 {
            let mut s_t = ArchState::new(512);
            let mut m_t = MainMemory::new();
            let pattern: Vec<u8> = (0..64u32).map(|i| (i * 7 + 3) as u8).collect();
            m_t.write_slice(0x1000, &pattern);
            m_t.write_slice(0x2000, &pattern[32..]);
            m_t.write_slice(0x2000 + 32, &pattern[..32]);
            let mut s_c = s_t.clone();
            let mut m_c = m_t.clone();
            let got = decoded
                .run_range::<_, false, true>(&mut s_t, &mut m_t, &mut NullObserver, budget)
                .unwrap();
            let want = decoded
                .run_range::<_, true, false>(&mut s_c, &mut m_c, &mut NullObserver, budget)
                .unwrap();
            assert_eq!(got, want, "budget {budget}");
            assert_eq!(s_t, s_c, "budget {budget}");
            let (mut seen_t, mut seen_c) = ([0u8; 64], [0u8; 64]);
            m_t.read_slice(0x1100, &mut seen_t);
            m_c.read_slice(0x1100, &mut seen_c);
            assert_eq!(seen_t, seen_c, "budget {budget} store bytes");
            if got.1 == RangeExit::Budget {
                let rest_t = decoded
                    .run_range::<_, false, true>(&mut s_t, &mut m_t, &mut NullObserver, u64::MAX)
                    .unwrap();
                let rest_c = decoded
                    .run_range::<_, true, false>(&mut s_c, &mut m_c, &mut NullObserver, u64::MAX)
                    .unwrap();
                assert_eq!(rest_t, rest_c, "budget {budget} resume");
                assert_eq!(s_t, s_c, "budget {budget} resume");
                assert_eq!(got.0 + rest_t.0, total, "budget {budget} total");
            }
        }
    }
}
