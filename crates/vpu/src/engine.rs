//! The decode-once execution engine.
//!
//! The legacy [`crate::exec::step`] interpreter re-derives everything
//! from the [`Instruction`] enum on **every dynamic instruction**:
//! operand fields are re-unpacked, grouping support and e32-only rules
//! are re-matched, branch offsets are re-added to the PC, and a full
//! [`ExecEvent`] is materialised even when nobody consumes it
//! (`run_functional`). With sweeps spanning (pattern × dims × SEW ×
//! LMUL × kernel × model) grids, that per-step overhead *is* the
//! repository's hot path.
//!
//! [`DecodedProgram`] moves all of it to decode time, once per program:
//!
//! * operand fields are unpacked into flat µops (immediates
//!   pre-extended to the datapath width, branch targets resolved to
//!   absolute slots);
//! * per-slot static checks are resolved: whether an opcode has
//!   register-grouping semantics and whether it is e32-only is decided
//!   by the µop variant itself, so the per-step `group_aware` /
//!   `require_e32` re-matching disappears;
//! * the per-SEW constants the vector µops need — lane masks, widening
//!   factors, element sizes — live in the const [`SEW_INFO`] table,
//!   indexed rather than recomputed;
//! * the hot vector µops (unit-stride loads/stores, `vfmacc.vf`, both
//!   IndexMAC generations) operate on whole register-group byte slices
//!   (one borrow per instruction) and page-chunked memory transfers
//!   instead of per-lane accessor calls.
//!
//! Execution is observed through the [`Observer`] trait. The engine is
//! generic over it, and [`NullObserver`] advertises at compile time
//! that events are unwanted, so the functional path monomorphizes to a
//! loop that never builds an [`ExecEvent`] at all. The legacy `step()`
//! interpreter is kept verbatim as the **oracle**: cold µops fall back
//! to it, and `crates/vpu/tests/prop_engine.rs` differentially tests
//! the two paths for identical architectural state, reports and faults.

use crate::analyze::Verified;
use crate::checks::{
    check_e32_only, check_element_width, check_group, check_grouping_supported,
    check_sew_supported, check_slot, check_vector_alignment, check_widening_dst, group_regs,
};
use crate::exec::{step, ExecEvent, MemOp};
use crate::sim::SimError;
use crate::state::{sign_extend, ArchState};
use indexmac_isa::instr::FReg;
use indexmac_isa::{Instruction, Lmul, Program, Sew, VReg, XReg};
use indexmac_mem::MainMemory;

/// Observes the dynamic instruction stream of an engine run.
///
/// The engine is generic over the observer, so each implementation gets
/// its own monomorphized loop: the timing path ([`crate::TimingObserver`])
/// compiles to exactly the old closure-based loop, while
/// [`NullObserver`] — with [`Observer::WANTS_EVENTS`] `false` — compiles
/// to a loop with no event construction whatsoever.
pub trait Observer {
    /// Whether the engine must materialise an [`ExecEvent`] per dynamic
    /// instruction. `false` lets the functional path skip all event
    /// bookkeeping (the compiler removes the dead branches).
    const WANTS_EVENTS: bool = true;

    /// Called once per retired dynamic instruction, in program order.
    fn observe(&mut self, ev: &ExecEvent);
}

/// Observer of the functional path: wants nothing, sees nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    const WANTS_EVENTS: bool = false;

    #[inline]
    fn observe(&mut self, _ev: &ExecEvent) {}
}

/// Every `FnMut(&ExecEvent)` closure is an observer, so ad-hoc
/// inspection (tests, one-off instrumentation) keeps the old shape.
impl<F: FnMut(&ExecEvent)> Observer for F {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        self(ev);
    }
}

/// Per-SEW constants used by the vector µops, precomputed once instead
/// of re-derived per dynamic instruction: element bytes, the modular
/// lane mask, and the widening accumulator factor (`32 / SEW`).
#[derive(Debug, Clone, Copy)]
pub struct SewInfo {
    /// Element size in bytes.
    pub bytes: usize,
    /// Mask selecting the low `SEW` bits of a lane value.
    pub lane_mask: u32,
    /// Widening factor of the integer IndexMAC accumulator.
    pub widen: usize,
}

/// [`SewInfo`] for e8/e16/e32, indexed by [`sew_index`].
pub const SEW_INFO: [SewInfo; 3] = [
    SewInfo {
        bytes: 1,
        lane_mask: 0xFF,
        widen: 4,
    },
    SewInfo {
        bytes: 2,
        lane_mask: 0xFFFF,
        widen: 2,
    },
    SewInfo {
        bytes: 4,
        lane_mask: 0xFFFF_FFFF,
        widen: 1,
    },
];

/// Index of an executable SEW in [`SEW_INFO`].
///
/// # Panics
///
/// Panics on [`Sew::E64`], which the datapath does not execute (the
/// `vsetvli` µop faults before any lane math can ask for it).
pub fn sew_index(sew: Sew) -> usize {
    match sew {
        Sew::E8 => 0,
        Sew::E16 => 1,
        Sew::E32 => 2,
        Sew::E64 => panic!("e64 lanes are outside the modelled subset"),
    }
}

/// Largest register-group byte footprint the stack scratch buffers must
/// hold: an `m4` group of 4096-bit registers.
const MAX_GROUP_BYTES: usize = 4 * 512;

/// One predecoded micro-operation. Operands are unpacked, immediates
/// pre-extended, branch targets absolute; the variant itself encodes
/// the static properties (`group_aware`, e32-only) that the legacy
/// interpreter re-derives per step. Cold opcodes decode to
/// [`Uop::Step`], which defers to the oracle interpreter — bit-for-bit
/// the legacy semantics, paid only on the cold path.
#[derive(Debug, Clone, Copy)]
enum Uop {
    // ---- scalar ----
    Li {
        rd: XReg,
        imm: u64,
    },
    Mv {
        rd: XReg,
        rs: XReg,
    },
    Addi {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Add {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Sub {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Mul {
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    Slli {
        rd: XReg,
        rs1: XReg,
        shamt: u32,
    },
    Srli {
        rd: XReg,
        rs1: XReg,
        shamt: u32,
    },
    Lw {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Lwu {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Ld {
        rd: XReg,
        rs1: XReg,
        imm: u64,
    },
    Sw {
        rs2: XReg,
        rs1: XReg,
        imm: u64,
    },
    Sd {
        rs2: XReg,
        rs1: XReg,
        imm: u64,
    },
    Flw {
        fd: FReg,
        rs1: XReg,
        imm: u64,
    },
    Beq {
        rs1: XReg,
        rs2: XReg,
        target: i64,
    },
    Bne {
        rs1: XReg,
        rs2: XReg,
        target: i64,
    },
    Blt {
        rs1: XReg,
        rs2: XReg,
        target: i64,
    },
    Bge {
        rs1: XReg,
        rs2: XReg,
        target: i64,
    },
    Jal {
        rd: XReg,
        target: i64,
    },
    Nop,
    Halt,

    // ---- hot vector ----
    Vsetvli {
        rd: XReg,
        rs1: XReg,
        sew: Sew,
        lmul: Lmul,
    },
    /// Unit-stride vector load of any element width (the width is a
    /// decode-time constant, not a per-step re-match).
    VLoad {
        vd: VReg,
        rs1: XReg,
        ew: Sew,
    },
    /// Unit-stride vector store of any element width.
    VStore {
        vs3: VReg,
        rs1: XReg,
        ew: Sew,
    },
    /// `vfmacc.vf` — the baselines' inner-loop MAC (e32-only, m1-only;
    /// both facts are this variant, not a runtime lookup).
    VfmaccVf {
        vd: VReg,
        fs1: FReg,
        vs2: VReg,
    },
    /// First-generation `vindexmac.vx`.
    VindexmacVx {
        vd: VReg,
        vs2: VReg,
        rs: XReg,
    },
    /// Second-generation `vindexmac.vvi`.
    VindexmacVvi {
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
        slot: u8,
    },

    // ---- cold tail ----
    /// Any other instruction: defer to the `step()` oracle.
    Step,
}

fn decode_one(pc: usize, instr: &Instruction) -> Uop {
    use Instruction as I;
    let abs = |offset: i32| pc as i64 + offset as i64;
    match *instr {
        I::Li { rd, imm } => Uop::Li {
            rd,
            imm: imm as u64,
        },
        I::Mv { rd, rs } => Uop::Mv { rd, rs },
        I::Addi { rd, rs1, imm } => Uop::Addi {
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Add { rd, rs1, rs2 } => Uop::Add { rd, rs1, rs2 },
        I::Sub { rd, rs1, rs2 } => Uop::Sub { rd, rs1, rs2 },
        I::Mul { rd, rs1, rs2 } => Uop::Mul { rd, rs1, rs2 },
        I::Slli { rd, rs1, shamt } => Uop::Slli {
            rd,
            rs1,
            shamt: (shamt & 63) as u32,
        },
        I::Srli { rd, rs1, shamt } => Uop::Srli {
            rd,
            rs1,
            shamt: (shamt & 63) as u32,
        },
        I::Lw { rd, rs1, imm } => Uop::Lw {
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Lwu { rd, rs1, imm } => Uop::Lwu {
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Ld { rd, rs1, imm } => Uop::Ld {
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Sw { rs2, rs1, imm } => Uop::Sw {
            rs2,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Sd { rs2, rs1, imm } => Uop::Sd {
            rs2,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Flw { fd, rs1, imm } => Uop::Flw {
            fd,
            rs1,
            imm: imm as i64 as u64,
        },
        I::Beq { rs1, rs2, offset } => Uop::Beq {
            rs1,
            rs2,
            target: abs(offset),
        },
        I::Bne { rs1, rs2, offset } => Uop::Bne {
            rs1,
            rs2,
            target: abs(offset),
        },
        I::Blt { rs1, rs2, offset } => Uop::Blt {
            rs1,
            rs2,
            target: abs(offset),
        },
        I::Bge { rs1, rs2, offset } => Uop::Bge {
            rs1,
            rs2,
            target: abs(offset),
        },
        I::Jal { rd, offset } => Uop::Jal {
            rd,
            target: abs(offset),
        },
        I::Nop => Uop::Nop,
        I::Halt => Uop::Halt,
        I::Vsetvli { rd, rs1, sew, lmul } => Uop::Vsetvli { rd, rs1, sew, lmul },
        I::Vle8 { vd, rs1 } => Uop::VLoad {
            vd,
            rs1,
            ew: Sew::E8,
        },
        I::Vle16 { vd, rs1 } => Uop::VLoad {
            vd,
            rs1,
            ew: Sew::E16,
        },
        I::Vle32 { vd, rs1 } => Uop::VLoad {
            vd,
            rs1,
            ew: Sew::E32,
        },
        I::Vse8 { vs3, rs1 } => Uop::VStore {
            vs3,
            rs1,
            ew: Sew::E8,
        },
        I::Vse16 { vs3, rs1 } => Uop::VStore {
            vs3,
            rs1,
            ew: Sew::E16,
        },
        I::Vse32 { vs3, rs1 } => Uop::VStore {
            vs3,
            rs1,
            ew: Sew::E32,
        },
        I::VfmaccVf { vd, fs1, vs2 } => Uop::VfmaccVf { vd, fs1, vs2 },
        I::VindexmacVx { vd, vs2, rs } => Uop::VindexmacVx { vd, vs2, rs },
        I::VindexmacVvi { vd, vs2, vs1, slot } => Uop::VindexmacVvi { vd, vs2, vs1, slot },
        _ => Uop::Step,
    }
}

/// A program predecoded into µops, ready to run many times.
///
/// Decoding is a single O(static-length) pass; the payoff is per
/// *dynamic* instruction, so a kernel decoded once and swept over many
/// seeds amortises to nothing (see `indexmac::experiment`'s
/// `ProgramCache`). The original instructions are kept alongside the
/// µops for event construction, tracing and the cold-path oracle.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    uops: Box<[Uop]>,
    instrs: Box<[Instruction]>,
}

impl DecodedProgram {
    /// Predecodes `program` into µops.
    pub fn decode(program: &Program) -> Self {
        let instrs: Box<[Instruction]> = program.instructions().into();
        let uops = instrs
            .iter()
            .enumerate()
            .map(|(pc, i)| decode_one(pc, i))
            .collect();
        Self { uops, instrs }
    }

    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The original instruction at `pc` (µops keep their source form
    /// for events and listings).
    pub fn instruction(&self, pc: usize) -> Option<&Instruction> {
        self.instrs.get(pc)
    }

    /// The full original instruction stream — the static analyzer's
    /// input ([`crate::analyze`] walks instructions, not µops, so cold
    /// opcodes are covered too).
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Runs the program from slot 0 until `ebreak`, mutating `state`
    /// and `mem` exactly like the `step()` oracle would, reporting
    /// every dynamic instruction to `obs`.
    ///
    /// # Errors
    ///
    /// The same conditions — and the same values — as the stepwise
    /// loop: [`SimError::Exec`] on functional faults,
    /// [`SimError::FellOffEnd`] on a missing `ebreak`, and
    /// [`SimError::InstructionLimit`] once `max_instructions` retire
    /// without halting (a program whose `ebreak` *is* the limit-th
    /// instruction succeeds).
    pub fn execute<O: Observer>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        max_instructions: u64,
    ) -> Result<u64, SimError> {
        self.execute_impl::<O, true>(state, mem, obs, max_instructions)
    }

    /// Runs the program with the statically-provable fault checks
    /// compiled out: element-width agreement, alignment, grouping
    /// support, widening-destination legality, slot ranges and branch
    /// ranges are elided, because the [`Verified`] token witnesses that
    /// [`crate::analyze`] proved them for every reachable slot. The
    /// *data-dependent* indirect-source group check of the IndexMAC
    /// µops is retained (its operand comes from memory), as are the
    /// fetch bound ([`SimError::FellOffEnd`]) and the instruction
    /// limit, so results stay bit-identical to [`DecodedProgram::execute`]
    /// on any program the analyzer accepts.
    ///
    /// `token` must come from analyzing **this** program at the same
    /// VLEN (debug builds assert both).
    ///
    /// # Errors
    ///
    /// The retained conditions above; see [`DecodedProgram::execute`].
    pub fn execute_verified<O: Observer>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        max_instructions: u64,
        token: Verified,
    ) -> Result<u64, SimError> {
        debug_assert_eq!(
            token.program_len(),
            self.len(),
            "Verified token minted for a different program"
        );
        debug_assert_eq!(
            token.vlen_bits(),
            state.vlen_bits(),
            "Verified token minted for a different VLEN"
        );
        self.execute_impl::<O, false>(state, mem, obs, max_instructions)
    }

    fn execute_impl<O: Observer, const CHECKED: bool>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        max_instructions: u64,
    ) -> Result<u64, SimError> {
        state.pc = 0;
        state.halted = false;
        let mut instret: u64 = 0;
        while !state.halted {
            let pc = state.pc;
            let Some(uop) = self.uops.get(pc) else {
                return Err(SimError::FellOffEnd { pc });
            };
            self.exec_uop::<O, CHECKED>(state, mem, obs, pc, uop)?;
            instret += 1;
            if instret >= max_instructions && !state.halted {
                return Err(SimError::InstructionLimit {
                    limit: max_instructions,
                });
            }
        }
        Ok(instret)
    }

    /// Executes one µop, advancing `state.pc`. Split out of the fetch
    /// loop so each observer's monomorphization stays readable in
    /// profiles. With `CHECKED = false` (the [`Verified`] path) the
    /// statically-proven fault branches compile out; each elision keeps
    /// a `debug_assert` so test builds still catch a mis-minted token.
    #[inline]
    fn exec_uop<O: Observer, const CHECKED: bool>(
        &self,
        state: &mut ArchState,
        mem: &mut MainMemory,
        obs: &mut O,
        pc: usize,
        uop: &Uop,
    ) -> Result<(), SimError> {
        // Event context, only composed when the observer wants events
        // (the stores below are dead — and removed — otherwise).
        let mut mem_op: Option<MemOp> = None;
        let mut indirect: Option<VReg> = None;
        let mut taken = false;
        let mut ev_vl = 0usize;
        let mut ev_sew = Sew::E32;
        if O::WANTS_EVENTS {
            ev_vl = state.vl();
            ev_sew = state.vtype().sew;
        }
        let mut next_pc = pc + 1;

        match *uop {
            Uop::Li { rd, imm } => state.set_x(rd, imm),
            Uop::Mv { rd, rs } => {
                let v = state.x(rs);
                state.set_x(rd, v);
            }
            Uop::Addi { rd, rs1, imm } => {
                let v = state.x(rs1).wrapping_add(imm);
                state.set_x(rd, v);
            }
            Uop::Add { rd, rs1, rs2 } => {
                let v = state.x(rs1).wrapping_add(state.x(rs2));
                state.set_x(rd, v);
            }
            Uop::Sub { rd, rs1, rs2 } => {
                let v = state.x(rs1).wrapping_sub(state.x(rs2));
                state.set_x(rd, v);
            }
            Uop::Mul { rd, rs1, rs2 } => {
                let v = state.x(rs1).wrapping_mul(state.x(rs2));
                state.set_x(rd, v);
            }
            Uop::Slli { rd, rs1, shamt } => {
                let v = state.x(rs1) << shamt;
                state.set_x(rd, v);
            }
            Uop::Srli { rd, rs1, shamt } => {
                let v = state.x(rs1) >> shamt;
                state.set_x(rd, v);
            }
            Uop::Lw { rd, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                let v = mem.read_u32(addr) as i32 as i64 as u64;
                state.set_x(rd, v);
                mem_op = Some(scalar_mem(addr, 4, false));
            }
            Uop::Lwu { rd, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                let v = mem.read_u32(addr) as u64;
                state.set_x(rd, v);
                mem_op = Some(scalar_mem(addr, 4, false));
            }
            Uop::Ld { rd, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                let v = mem.read_u64(addr);
                state.set_x(rd, v);
                mem_op = Some(scalar_mem(addr, 8, false));
            }
            Uop::Sw { rs2, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                mem.write_u32(addr, state.x(rs2) as u32);
                mem_op = Some(scalar_mem(addr, 4, true));
            }
            Uop::Sd { rs2, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                mem.write_u64(addr, state.x(rs2));
                mem_op = Some(scalar_mem(addr, 8, true));
            }
            Uop::Flw { fd, rs1, imm } => {
                let addr = state.x(rs1).wrapping_add(imm);
                state.set_f_bits(fd, mem.read_u32(addr));
                mem_op = Some(scalar_mem(addr, 4, false));
            }
            Uop::Beq { rs1, rs2, target } => {
                if state.x(rs1) == state.x(rs2) {
                    taken = true;
                    next_pc = checked_target::<CHECKED>(target)?;
                }
            }
            Uop::Bne { rs1, rs2, target } => {
                if state.x(rs1) != state.x(rs2) {
                    taken = true;
                    next_pc = checked_target::<CHECKED>(target)?;
                }
            }
            Uop::Blt { rs1, rs2, target } => {
                if (state.x(rs1) as i64) < (state.x(rs2) as i64) {
                    taken = true;
                    next_pc = checked_target::<CHECKED>(target)?;
                }
            }
            Uop::Bge { rs1, rs2, target } => {
                if (state.x(rs1) as i64) >= (state.x(rs2) as i64) {
                    taken = true;
                    next_pc = checked_target::<CHECKED>(target)?;
                }
            }
            Uop::Jal { rd, target } => {
                // The link write precedes the range check, like the
                // oracle (a faulting jal leaves rd written).
                state.set_x(rd, (pc + 1) as u64);
                taken = true;
                next_pc = checked_target::<CHECKED>(target)?;
            }
            Uop::Nop => {}
            Uop::Halt => state.halted = true,
            Uop::Vsetvli { rd, rs1, sew, lmul } => {
                if CHECKED {
                    check_sew_supported(pc, sew)?;
                } else {
                    debug_assert_ne!(sew, Sew::E64, "verified program selected e64");
                }
                state.set_vtype(indexmac_isa::VType { sew, lmul });
                let vlmax = state.vlmax_grouped();
                let avl = if rs1.is_zero() {
                    if rd.is_zero() {
                        state.vl()
                    } else {
                        vlmax
                    }
                } else {
                    state.x(rs1) as usize
                };
                let vl = avl.min(vlmax);
                state.set_vl(vl);
                state.set_x(rd, vl as u64);
                ev_vl = vl;
                ev_sew = sew;
            }
            Uop::VLoad { vd, rs1, ew } => {
                let sew = state.vtype().sew;
                let eb = SEW_INFO[sew_index(ew)].bytes;
                let addr = state.x(rs1);
                let vl = state.vl();
                let regs = group_regs(vl, state.vlmax());
                if CHECKED {
                    check_element_width(pc, sew, ew)?;
                    check_vector_alignment(pc, addr, eb as u64)?;
                    check_group(pc, vd, regs)?;
                } else {
                    debug_assert_eq!(sew, ew, "verified load width drifted");
                    debug_assert!(addr.is_multiple_of(eb as u64));
                    debug_assert!(vd.index() as usize + regs <= 32);
                }
                let dst = state.v_group_bytes_mut(vd, regs);
                mem.read_slice(addr, &mut dst[..vl * eb]);
                mem_op = Some(MemOp {
                    addr,
                    bytes: (vl * eb) as u64,
                    write: false,
                    vector: true,
                });
            }
            Uop::VStore { vs3, rs1, ew } => {
                let sew = state.vtype().sew;
                let eb = SEW_INFO[sew_index(ew)].bytes;
                let addr = state.x(rs1);
                let vl = state.vl();
                let regs = group_regs(vl, state.vlmax());
                if CHECKED {
                    check_element_width(pc, sew, ew)?;
                    check_vector_alignment(pc, addr, eb as u64)?;
                    check_group(pc, vs3, regs)?;
                } else {
                    debug_assert_eq!(sew, ew, "verified store width drifted");
                    debug_assert!(addr.is_multiple_of(eb as u64));
                    debug_assert!(vs3.index() as usize + regs <= 32);
                }
                let src = state.v_group_bytes(vs3, regs);
                mem.write_slice(addr, &src[..vl * eb]);
                mem_op = Some(MemOp {
                    addr,
                    bytes: (vl * eb) as u64,
                    write: true,
                    vector: true,
                });
            }
            Uop::VfmaccVf { vd, fs1, vs2 } => {
                let vl = state.vl();
                let sew = state.vtype().sew;
                if CHECKED {
                    // Not group-aware: the oracle faults on grouping
                    // before the element-width rule.
                    check_grouping_supported(pc, vl, state.vlmax())?;
                    check_e32_only(pc, sew)?;
                } else {
                    debug_assert!(vl <= state.vlmax());
                    debug_assert_eq!(sew, Sew::E32);
                }
                let s = state.f32(fs1);
                let mut buf = [0u8; MAX_GROUP_BYTES];
                buf[..vl * 4].copy_from_slice(&state.v_bytes(vs2)[..vl * 4]);
                let dst = state.v_bytes_mut(vd);
                for i in 0..vl {
                    let o = i * 4;
                    let a = f32::from_bits(le32(&buf, o));
                    let d = f32::from_bits(le32(dst, o));
                    dst[o..o + 4].copy_from_slice(&(d + s * a).to_bits().to_le_bytes());
                }
            }
            Uop::VindexmacVx { vd, vs2, rs } => {
                let sew = state.vtype().sew;
                if CHECKED {
                    // Unlike `.vvi`, the first-generation MAC has no
                    // register-grouping semantics (the oracle's
                    // `group_aware` list excludes it).
                    check_grouping_supported(pc, state.vl(), state.vlmax())?;
                } else {
                    debug_assert!(state.vl() <= state.vlmax());
                }
                let src = VReg::new((state.x(rs) & 0x1F) as u8);
                let multiplier_bits = state.v_lane(vs2, 0, sew);
                indexmac_body::<CHECKED>(state, pc, vd, src, multiplier_bits, sew)?;
                indirect = Some(src);
            }
            Uop::VindexmacVvi { vd, vs2, vs1, slot } => {
                let sew = state.vtype().sew;
                if CHECKED {
                    check_slot(pc, slot, state.vlmax())?;
                } else {
                    debug_assert!((slot as usize) < state.vlmax());
                }
                let slot = slot as usize;
                let src = VReg::new((state.v_lane(vs1, slot, sew) & 0x1F) as u8);
                let multiplier_bits = state.v_lane(vs2, slot, sew);
                indexmac_body::<CHECKED>(state, pc, vd, src, multiplier_bits, sew)?;
                indirect = Some(src);
            }
            Uop::Step => {
                // Cold path: run the oracle interpreter for this one
                // instruction (it advances state.pc itself).
                let ev = step(state, mem, &self.instrs[pc])?;
                if O::WANTS_EVENTS {
                    obs.observe(&ev);
                }
                return Ok(());
            }
        }

        state.pc = next_pc;
        if O::WANTS_EVENTS {
            obs.observe(&ExecEvent {
                pc,
                instr: self.instrs[pc],
                mem: mem_op,
                indirect_vreg: indirect,
                branch_taken: taken,
                vl: ev_vl,
                sew: ev_sew,
            });
        }
        Ok(())
    }
}

#[inline]
fn scalar_mem(addr: u64, bytes: u64, write: bool) -> MemOp {
    MemOp {
        addr,
        bytes,
        write,
        vector: false,
    }
}

/// Validates a precomputed absolute branch target, mirroring the
/// oracle's `next_pc < 0` rule (over-the-end targets surface later as
/// `FellOffEnd`, exactly like the oracle). The verified path
/// (`CHECKED = false`) compiles the branch out: the analyzer proved
/// every reachable target non-negative.
#[inline]
fn checked_target<const CHECKED: bool>(target: i64) -> Result<usize, SimError> {
    if CHECKED {
        crate::checks::check_branch_target(target)?;
    } else {
        debug_assert!(target >= 0, "verified program branched below slot 0");
    }
    Ok(target as usize)
}

#[inline]
fn le32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

/// The shared MAC body of both IndexMAC µops — bit-for-bit the oracle's
/// `exec_indexmac_body`, restructured to borrow each register group's
/// bytes once instead of per lane.
///
/// The indirect-source group check is retained even on the verified
/// path (`CHECKED = false`): the selected register comes from runtime
/// data (scalar register or metadata lane), so the analyzer can only
/// vouch for it through a layout contract — the one data-dependent rule
/// stays a real branch. The *destination* checks (widening alignment,
/// group ranges over a decode-time-constant base) do compile out.
fn indexmac_body<const CHECKED: bool>(
    state: &mut ArchState,
    pc: usize,
    vd: VReg,
    src: VReg,
    multiplier_bits: u32,
    sew: Sew,
) -> Result<(), SimError> {
    let vl = state.vl();
    let regs = group_regs(vl, state.vlmax());
    check_group(pc, src, regs)?;
    let info = SEW_INFO[sew_index(sew)];
    let mut buf = [0u8; MAX_GROUP_BYTES];
    buf[..vl * info.bytes].copy_from_slice(&state.v_group_bytes(src, regs)[..vl * info.bytes]);
    if sew == Sew::E32 {
        if CHECKED {
            check_group(pc, vd, regs)?;
        } else {
            debug_assert!(vd.index() as usize + regs <= 32);
        }
        let m = f32::from_bits(multiplier_bits);
        let dst = state.v_group_bytes_mut(vd, regs);
        for i in 0..vl {
            let o = i * 4;
            let a = f32::from_bits(le32(&buf, o));
            let d = f32::from_bits(le32(dst, o));
            dst[o..o + 4].copy_from_slice(&(d + m * a).to_bits().to_le_bytes());
        }
    } else {
        // Widening integer MAC: i8/i16 operands, i32 accumulation, the
        // destination group `widen`× the source EMUL.
        let dst_regs = if CHECKED {
            let dst_regs = check_widening_dst(pc, sew, vd, regs)?;
            check_group(pc, vd, dst_regs)?;
            dst_regs
        } else {
            let dst_regs = regs * info.widen;
            debug_assert!((vd.index() as usize).is_multiple_of(info.widen) && dst_regs <= 4);
            debug_assert!(vd.index() as usize + dst_regs <= 32);
            dst_regs
        };
        let m = sign_extend(multiplier_bits, sew);
        let dst = state.v_group_bytes_mut(vd, dst_regs);
        if sew == Sew::E8 {
            for (i, &raw) in buf.iter().enumerate().take(vl) {
                let a = raw as i8 as i32;
                let o = i * 4;
                let d = le32(dst, o) as i32;
                let v = d.wrapping_add(m.wrapping_mul(a));
                dst[o..o + 4].copy_from_slice(&v.to_le_bytes());
            }
        } else {
            for i in 0..vl {
                let a = i16::from_le_bytes([buf[i * 2], buf[i * 2 + 1]]) as i32;
                let o = i * 4;
                let d = le32(dst, o) as i32;
                let v = d.wrapping_add(m.wrapping_mul(a));
                dst[o..o + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_isa::{ProgramBuilder, VType};

    fn fixture(build: impl FnOnce(&mut ProgramBuilder)) -> Program {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.build()
    }

    /// Runs `program` through both the decoded engine and the stepwise
    /// oracle on identical initial state, asserting identical results
    /// and final architectural state.
    fn assert_parity(program: &Program, setup: impl Fn(&mut ArchState, &mut MainMemory)) {
        let mut s_engine = ArchState::new(512);
        let mut m_engine = MainMemory::new();
        setup(&mut s_engine, &mut m_engine);
        let mut s_oracle = s_engine.clone();
        let mut m_oracle = m_engine.clone();

        let decoded = DecodedProgram::decode(program);
        let got = decoded.execute(&mut s_engine, &mut m_engine, &mut NullObserver, 100_000);

        // Oracle loop: fetch + step until halt.
        let want = (|| -> Result<u64, SimError> {
            s_oracle.pc = 0;
            s_oracle.halted = false;
            let mut n = 0u64;
            while !s_oracle.halted {
                let pc = s_oracle.pc;
                let instr = *program.fetch(pc).ok_or(SimError::FellOffEnd { pc })?;
                step(&mut s_oracle, &mut m_oracle, &instr)?;
                n += 1;
                if n >= 100_000 && !s_oracle.halted {
                    return Err(SimError::InstructionLimit { limit: 100_000 });
                }
            }
            Ok(n)
        })();

        assert_eq!(got, want, "run outcome diverged");
        for r in 0..32 {
            assert_eq!(
                s_engine.x(XReg::new(r)),
                s_oracle.x(XReg::new(r)),
                "x{r} diverged"
            );
            let v = VReg::new(r);
            assert_eq!(s_engine.v_bytes(v), s_oracle.v_bytes(v), "v{r} diverged");
        }
        assert_eq!(s_engine.vl(), s_oracle.vl());
        assert_eq!(s_engine.vtype(), s_oracle.vtype());
        assert_eq!(s_engine.pc, s_oracle.pc);
    }

    #[test]
    fn decode_unpacks_and_preserves_length() {
        let p = fixture(|b| {
            b.li(XReg::T0, 5);
            let top = b.bind_label();
            b.addi(XReg::T0, XReg::T0, -1);
            b.bne(XReg::T0, XReg::ZERO, top);
            b.halt();
        });
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.instruction(3), Some(&Instruction::Halt));
        assert_eq!(d.instruction(4), None);
        // The backward branch's target is absolute after decode.
        assert!(matches!(d.uops[2], Uop::Bne { target: 1, .. }));
    }

    #[test]
    fn scalar_loop_parity() {
        let p = fixture(|b| {
            b.li(XReg::T0, 10);
            let top = b.bind_label();
            b.addi(XReg::T1, XReg::T1, 7);
            b.addi(XReg::T0, XReg::T0, -1);
            b.bne(XReg::T0, XReg::ZERO, top);
            b.halt();
        });
        assert_parity(&p, |_, _| {});
    }

    #[test]
    fn vector_roundtrip_parity_at_each_sew() {
        for (sew, lmul) in [
            (Sew::E8, Lmul::M1),
            (Sew::E16, Lmul::M2),
            (Sew::E32, Lmul::M1),
            (Sew::E32, Lmul::M2),
        ] {
            let p = fixture(|b| {
                b.push(Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::ZERO,
                    sew,
                    lmul,
                });
                b.li(XReg::A0, 0x1000);
                b.li(XReg::A1, 0x2000);
                b.push(match sew {
                    Sew::E8 => Instruction::Vle8 {
                        vd: VReg::V4,
                        rs1: XReg::A0,
                    },
                    Sew::E16 => Instruction::Vle16 {
                        vd: VReg::V4,
                        rs1: XReg::A0,
                    },
                    _ => Instruction::Vle32 {
                        vd: VReg::V4,
                        rs1: XReg::A0,
                    },
                });
                b.push(match sew {
                    Sew::E8 => Instruction::Vse8 {
                        vs3: VReg::V4,
                        rs1: XReg::A1,
                    },
                    Sew::E16 => Instruction::Vse16 {
                        vs3: VReg::V4,
                        rs1: XReg::A1,
                    },
                    _ => Instruction::Vse32 {
                        vs3: VReg::V4,
                        rs1: XReg::A1,
                    },
                });
                b.halt();
            });
            assert_parity(&p, |_, m| {
                for i in 0..256u64 {
                    m.write_u8(0x1000 + i, (i as u8).wrapping_mul(31).wrapping_add(7));
                }
            });
        }
    }

    #[test]
    fn indexmac_vvi_parity_including_widening() {
        for sew in [Sew::E8, Sew::E16, Sew::E32] {
            let p = fixture(|b| {
                b.push(Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::ZERO,
                    sew,
                    lmul: Lmul::M1,
                });
                b.push(Instruction::VindexmacVvi {
                    vd: VReg::V0,
                    vs2: VReg::V8,
                    vs1: VReg::new(9),
                    slot: 2,
                });
                b.halt();
            });
            assert_parity(&p, |s, _| {
                s.set_vtype(VType {
                    sew,
                    lmul: Lmul::M1,
                });
                for i in 0..s.lanes(sew) {
                    s.set_v_lane(VReg::new(20), i, sew, (i as u32).wrapping_mul(0x83));
                    s.set_v_lane(
                        VReg::V8,
                        i,
                        sew,
                        (i as u32).wrapping_mul(0x2B).wrapping_add(1),
                    );
                }
                s.set_v_lane(VReg::new(9), 2, sew, 20);
            });
        }
    }

    #[test]
    fn fault_parity_on_bad_programs() {
        // Missing halt.
        assert_parity(
            &fixture(|b| {
                b.li(XReg::T0, 1);
            }),
            |_, _| {},
        );
        // Unaligned vector load.
        assert_parity(
            &fixture(|b| {
                b.li(XReg::A0, 0x1001);
                b.push(Instruction::Vle32 {
                    vd: VReg::V1,
                    rs1: XReg::A0,
                });
                b.halt();
            }),
            |_, _| {},
        );
        // e64 vsetvli.
        assert_parity(
            &fixture(|b| {
                b.push(Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::ZERO,
                    sew: Sew::E64,
                    lmul: Lmul::M1,
                });
                b.halt();
            }),
            |_, _| {},
        );
        // Backward branch past slot 0.
        assert_parity(
            &fixture(|b| {
                b.push(Instruction::Beq {
                    rs1: XReg::ZERO,
                    rs2: XReg::ZERO,
                    offset: -5,
                });
                b.halt();
            }),
            |_, _| {},
        );
        // Widening destination misaligned at e8.
        assert_parity(
            &fixture(|b| {
                b.push(Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::ZERO,
                    sew: Sew::E8,
                    lmul: Lmul::M1,
                });
                b.li(XReg::T1, 20);
                b.push(Instruction::VindexmacVx {
                    vd: VReg::V1,
                    vs2: VReg::V8,
                    rs: XReg::T1,
                });
                b.halt();
            }),
            |_, _| {},
        );
    }

    #[test]
    fn cold_uops_fall_back_to_the_oracle() {
        // vadd.vv / slides / moves decode to Uop::Step and still execute.
        let p = fixture(|b| {
            b.li(XReg::T0, 3);
            b.push(Instruction::VmvVx {
                vd: VReg::V1,
                rs1: XReg::T0,
            });
            b.push(Instruction::VaddVv {
                vd: VReg::V2,
                vs2: VReg::V1,
                vs1: VReg::V1,
            });
            b.push(Instruction::Vslide1downVx {
                vd: VReg::V2,
                vs2: VReg::V2,
                rs1: XReg::ZERO,
            });
            b.push(Instruction::VmvXs {
                rd: XReg::T1,
                vs2: VReg::V2,
            });
            b.halt();
        });
        let d = DecodedProgram::decode(&p);
        assert!(matches!(d.uops[2], Uop::Step));
        assert_parity(&p, |_, _| {});
    }

    #[test]
    fn null_observer_and_event_observer_agree_on_state() {
        let p = fixture(|b| {
            b.li(XReg::A0, 0x3000);
            b.push(Instruction::Vle32 {
                vd: VReg::V2,
                rs1: XReg::A0,
            });
            b.push(Instruction::VfmaccVf {
                vd: VReg::V3,
                fs1: FReg::F0,
                vs2: VReg::V2,
            });
            b.halt();
        });
        let d = DecodedProgram::decode(&p);
        let mut s1 = ArchState::new(512);
        let mut m1 = MainMemory::new();
        m1.write_f32_slice(0x3000, &[1.5; 16]);
        let mut s2 = s1.clone();
        let mut m2 = m1.clone();
        let n1 = d
            .execute(&mut s1, &mut m1, &mut NullObserver, u64::MAX)
            .unwrap();
        let mut events = Vec::new();
        let n2 = d
            .execute(
                &mut s2,
                &mut m2,
                &mut |ev: &ExecEvent| events.push(*ev),
                u64::MAX,
            )
            .unwrap();
        assert_eq!(n1, n2);
        assert_eq!(events.len() as u64, n2);
        assert_eq!(s1.v_bytes(VReg::V3), s2.v_bytes(VReg::V3));
        // The event stream carries the memory op and program order.
        assert!(events[1].mem.unwrap().vector);
        assert_eq!(events[1].pc, 1);
    }

    #[test]
    fn sew_info_matches_the_derived_constants() {
        for sew in [Sew::E8, Sew::E16, Sew::E32] {
            let info = SEW_INFO[sew_index(sew)];
            assert_eq!(info.bytes, sew.bytes());
            assert_eq!(info.lane_mask as u64, (1u64 << sew.bits()) - 1);
            assert_eq!(info.widen, crate::exec::widen_factor(sew));
        }
    }
}
