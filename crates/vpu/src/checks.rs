//! The single source of truth for every dynamic fault rule.
//!
//! The same legality conditions are needed in three places: the
//! stepwise oracle interpreter ([`crate::exec::step`]), the decoded
//! engine's µop fast paths ([`crate::engine::DecodedProgram`]), and the
//! static analyzer's transfer functions ([`crate::analyze`]). Each rule
//! therefore lives here exactly once, as a pure function from operand
//! facts to `Result<(), ExecError>`; callers differ only in where the
//! facts come from (architectural state, decoded µop fields, or
//! abstract values).
//!
//! Rule order matters and is owned by the *call sites*: e.g. a vector
//! load checks element width before alignment before group range, and a
//! non-group-aware op faults on grouping before its width rule. The
//! analyzer mirrors those orders so its first diagnostic for a slot
//! names the same rule the interpreter would fault with.

use crate::exec::ExecError;
use indexmac_isa::{Instruction, Sew, VReg};

/// Registers a grouped operand spans for the active `vl` (`vlmax` is
/// the single-register element capacity at the active SEW).
pub fn group_regs(vl: usize, vlmax: usize) -> usize {
    vl.div_ceil(vlmax).max(1)
}

/// Whether `instr` has defined semantics when `vl` exceeds the
/// single-register VLMAX (register grouping): the grouped memory ops,
/// `vindexmac.vvi`, and the element-0 moves (which touch only lane 0 of
/// the group regardless of LMUL).
pub fn group_aware(instr: &Instruction) -> bool {
    matches!(
        instr,
        Instruction::Vsetvli { .. }
            | Instruction::Vle8 { .. }
            | Instruction::Vle16 { .. }
            | Instruction::Vle32 { .. }
            | Instruction::Vse8 { .. }
            | Instruction::Vse16 { .. }
            | Instruction::Vse32 { .. }
            | Instruction::VindexmacVvi { .. }
            | Instruction::VmvXs { .. }
            | Instruction::VmvSx { .. }
            | Instruction::VfmvFs { .. }
    )
}

/// The widening accumulator factor for the integer MACs (`32 / SEW`);
/// 1 at e32, where the MAC is the paper's fp32 semantics.
pub fn widen_factor(sew: Sew) -> usize {
    32 / sew.bits()
}

/// A register group `[r, r + regs)` must not run past `v31`.
///
/// # Errors
///
/// [`ExecError::GroupOutOfRange`] otherwise.
pub fn check_group(pc: usize, r: VReg, regs: usize) -> Result<(), ExecError> {
    if r.index() as usize + regs > 32 {
        return Err(ExecError::GroupOutOfRange {
            pc,
            base: r.index(),
            regs,
        });
    }
    Ok(())
}

/// A vector instruction without register-grouping semantics requires
/// `vl` within the single-register VLMAX.
///
/// # Errors
///
/// [`ExecError::GroupingUnsupported`] when `vl > vlmax`.
pub fn check_grouping_supported(pc: usize, vl: usize, vlmax: usize) -> Result<(), ExecError> {
    if vl > vlmax {
        return Err(ExecError::GroupingUnsupported { pc });
    }
    Ok(())
}

/// `vsetvli` may only select an element width the datapath executes
/// (e8/e16/e32).
///
/// # Errors
///
/// [`ExecError::UnsupportedSew`] on [`Sew::E64`].
pub fn check_sew_supported(pc: usize, sew: Sew) -> Result<(), ExecError> {
    if sew == Sew::E64 {
        return Err(ExecError::UnsupportedSew { pc });
    }
    Ok(())
}

/// Element-wise float semantics exist only at e32.
///
/// # Errors
///
/// [`ExecError::IllegalSewForOp`] at e8/e16.
pub fn check_e32_only(pc: usize, sew: Sew) -> Result<(), ExecError> {
    if sew != Sew::E32 {
        return Err(ExecError::IllegalSewForOp { pc, sew });
    }
    Ok(())
}

/// An element load/store's width must agree with the active `vtype.sew`.
///
/// # Errors
///
/// [`ExecError::IllegalSewForOp`] on disagreement.
pub fn check_element_width(pc: usize, sew: Sew, ew: Sew) -> Result<(), ExecError> {
    if sew != ew {
        return Err(ExecError::IllegalSewForOp { pc, sew });
    }
    Ok(())
}

/// A vector memory access must be element-aligned.
///
/// # Errors
///
/// [`ExecError::Unaligned`] otherwise.
pub fn check_vector_alignment(pc: usize, addr: u64, element_bytes: u64) -> Result<(), ExecError> {
    if !addr.is_multiple_of(element_bytes) {
        return Err(ExecError::Unaligned { pc, addr });
    }
    Ok(())
}

/// Legality of a widening-MAC destination at a narrow SEW (e8/e16): the
/// accumulator group spans `regs * widen_factor(sew)` registers, its
/// base must be a multiple of the widening factor, and the whole group
/// may not exceed the largest modelled grouping (`m4` — the same bound
/// the layout planner enforces as `lmul * 32/SEW <= 4`). Returns the
/// destination group width; the caller still range-checks it with
/// [`check_group`].
///
/// # Errors
///
/// [`ExecError::IllegalWidening`] on a misaligned base or an over-wide
/// group.
pub fn check_widening_dst(pc: usize, sew: Sew, vd: VReg, regs: usize) -> Result<usize, ExecError> {
    let widen = widen_factor(sew);
    let dst_regs = regs * widen;
    if !(vd.index() as usize).is_multiple_of(widen) || dst_regs > 4 {
        return Err(ExecError::IllegalWidening {
            pc,
            sew,
            vd: vd.index(),
        });
    }
    Ok(dst_regs)
}

/// A `vindexmac.vvi` slot immediate must address within the (single)
/// metadata register's lanes.
///
/// # Errors
///
/// [`ExecError::SlotOutOfRange`] when `slot >= vlmax`.
pub fn check_slot(pc: usize, slot: u8, vlmax: usize) -> Result<(), ExecError> {
    if slot as usize >= vlmax {
        return Err(ExecError::SlotOutOfRange { pc, slot, vlmax });
    }
    Ok(())
}

/// A control transfer may not leave the program backwards (over-the-end
/// targets surface later as `FellOffEnd`, exactly like a missing
/// `ebreak`).
///
/// # Errors
///
/// [`ExecError::PcOutOfRange`] when `target < 0`.
pub fn check_branch_target(target: i64) -> Result<(), ExecError> {
    if target < 0 {
        return Err(ExecError::PcOutOfRange { target });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_regs_rounds_up_and_floors_at_one() {
        assert_eq!(group_regs(0, 16), 1);
        assert_eq!(group_regs(16, 16), 1);
        assert_eq!(group_regs(17, 16), 2);
        assert_eq!(group_regs(64, 16), 4);
    }

    #[test]
    fn widening_rules_match_the_planner_bound() {
        // e8 widens 4x: only 4-aligned bases, and any grouping beyond
        // one source register overflows m4.
        assert_eq!(check_widening_dst(0, Sew::E8, VReg::new(4), 1), Ok(4));
        assert!(check_widening_dst(0, Sew::E8, VReg::new(2), 1).is_err());
        assert!(check_widening_dst(0, Sew::E8, VReg::new(4), 2).is_err());
        // e16 widens 2x: m2 sources are the limit.
        assert_eq!(check_widening_dst(0, Sew::E16, VReg::new(4), 2), Ok(4));
        assert!(check_widening_dst(0, Sew::E16, VReg::new(4), 4).is_err());
    }

    #[test]
    fn group_range_is_inclusive_of_v31() {
        assert!(check_group(0, VReg::new(28), 4).is_ok());
        assert!(check_group(0, VReg::new(29), 4).is_err());
    }

    #[test]
    fn slot_and_target_bounds() {
        assert!(check_slot(0, 15, 16).is_ok());
        assert!(check_slot(0, 16, 16).is_err());
        assert!(check_branch_target(0).is_ok());
        assert!(check_branch_target(-1).is_err());
    }
}
