//! Pipeline tracing: per-instruction issue/start/completion records.
//!
//! A trace makes the timing model inspectable — the pipeline view shows
//! exactly where the paper's two kernels spend their cycles (the
//! vector-to-scalar round trips, the per-nonzero load latency the
//! `vindexmac` kernel eliminates, the decoupling queue backing up).

use crate::config::SimConfig;
use crate::engine::Observer;
use crate::exec::ExecEvent;
use crate::timing::{AnyTimingModel, InstrTiming, TimingModel};
use indexmac_isa::{InstrClass, Instruction};
use std::fmt;

/// One traced dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Dynamic sequence number (0-based).
    pub seq: u64,
    /// Static program slot.
    pub pc: usize,
    /// The instruction.
    pub instr: Instruction,
    /// Timing record from the model.
    pub timing: InstrTiming,
}

impl TraceEntry {
    /// Cycles from issue to completion.
    pub fn latency(&self) -> u64 {
        self.timing.completion - self.timing.issue_at
    }

    /// Cycles spent waiting between issue and execution start (queueing,
    /// operand waits, structural hazards).
    pub fn wait(&self) -> u64 {
        self.timing.start - self.timing.issue_at
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>6} @{:<5} I{:<8} S{:<8} C{:<8} {}",
            self.seq,
            self.pc,
            self.timing.issue_at,
            self.timing.start,
            self.timing.completion,
            self.instr
        )
    }
}

/// A bounded recording of the first `capacity` dynamic instructions.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    /// Total dynamic instructions observed (may exceed `capacity`).
    observed: u64,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity.min(4096)),
            capacity,
            observed: 0,
        }
    }

    /// Records one instruction (dropped silently once full).
    pub fn record(&mut self, pc: usize, instr: Instruction, timing: InstrTiming) {
        if self.entries.len() < self.capacity {
            self.entries.push(TraceEntry {
                seq: self.observed,
                pc,
                instr,
                timing,
            });
        }
        self.observed += 1;
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Total dynamic instructions observed (recorded or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Whether the recording hit its capacity.
    pub fn truncated(&self) -> bool {
        self.observed > self.entries.len() as u64
    }

    /// The entry with the largest issue-to-completion latency — usually
    /// the bottleneck worth staring at.
    pub fn slowest(&self) -> Option<&TraceEntry> {
        self.entries.iter().max_by_key(|e| e.latency())
    }

    /// Mean latency of recorded instructions in `class`.
    pub fn mean_latency(&self, class: InstrClass) -> Option<f64> {
        let of_class: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| e.instr.class() == class)
            .map(TraceEntry::latency)
            .collect();
        if of_class.is_empty() {
            None
        } else {
            Some(of_class.iter().sum::<u64>() as f64 / of_class.len() as f64)
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  seq  pc    issue    start    complete instruction")?;
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        if self.truncated() {
            writeln!(
                f,
                "... ({} more instructions not recorded)",
                self.observed - self.entries.len() as u64
            )?;
        }
        Ok(())
    }
}

/// The tracing [`Observer`]: timing model plus a bounded pipeline
/// trace, in one pass — what `Simulator::run_traced` monomorphizes the
/// engine loop over.
#[derive(Debug, Clone)]
pub struct TraceObserver {
    timing: AnyTimingModel,
    trace: Trace,
}

impl TraceObserver {
    /// A fresh observer recording at most `trace_cap` instructions,
    /// timed under the backend `cfg.timing` selects.
    pub fn new(cfg: SimConfig, trace_cap: usize) -> Self {
        Self {
            timing: AnyTimingModel::new(cfg),
            trace: Trace::new(trace_cap),
        }
    }

    /// The accumulated timing model.
    pub fn timing(&self) -> &AnyTimingModel {
        &self.timing
    }

    /// Consumes the observer, yielding the model and the trace.
    pub fn into_parts(self) -> (AnyTimingModel, Trace) {
        (self.timing, self.trace)
    }
}

impl Observer for TraceObserver {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        let t = self.timing.observe(ev);
        self.trace.record(ev.pc, ev.instr, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::InstrTiming;
    use indexmac_isa::XReg;

    fn entry(seq: u64, issue: u64, start: u64, complete: u64) -> (usize, Instruction, InstrTiming) {
        let _ = seq;
        (
            seq as usize,
            Instruction::Addi {
                rd: XReg::T0,
                rs1: XReg::T0,
                imm: 1,
            },
            InstrTiming {
                issue_at: issue,
                start,
                completion: complete,
            },
        )
    }

    #[test]
    fn capacity_enforced() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            let (pc, instr, timing) = entry(i, i, i, i + 1);
            t.record(pc, instr, timing);
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.observed(), 5);
        assert!(t.truncated());
    }

    #[test]
    fn latency_and_wait() {
        let mut t = Trace::new(8);
        let (pc, instr, timing) = entry(0, 10, 14, 30);
        t.record(pc, instr, timing);
        let e = &t.entries()[0];
        assert_eq!(e.latency(), 20);
        assert_eq!(e.wait(), 4);
        assert_eq!(t.slowest().unwrap().seq, 0);
    }

    #[test]
    fn mean_latency_by_class() {
        let mut t = Trace::new(8);
        for (i, lat) in [(0, 3), (1, 5)] {
            let (pc, instr, timing) = entry(i, 0, 0, lat);
            t.record(pc, instr, timing);
        }
        assert_eq!(t.mean_latency(InstrClass::ScalarAlu), Some(4.0));
        assert_eq!(t.mean_latency(InstrClass::VLoad), None);
    }

    #[test]
    fn display_lists_entries() {
        let mut t = Trace::new(1);
        let (pc, instr, timing) = entry(0, 1, 2, 3);
        t.record(pc, instr, timing);
        t.record(pc, instr, timing);
        let s = t.to_string();
        assert!(s.contains("addi"));
        assert!(s.contains("more instructions not recorded"));
    }
}
