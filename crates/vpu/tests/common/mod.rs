//! Shared generators for the simulator property tests: random *valid*
//! straight-line programs exercising the scalar core and the decoupled
//! vector engine, used by both the single-model invariants
//! (`prop_timing`) and the cross-backend invariants (`prop_backends`).

use indexmac_isa::{Instruction, Lmul, Program, ProgramBuilder, Sew, VReg, XReg};
use proptest::prelude::*;

/// Random *valid* straight-line instructions: memory accesses use
/// 4-byte-aligned addresses in a small positive window, and `vsetvli`
/// keeps SEW = 32 (the modelled width).
pub fn instr_strategy() -> impl Strategy<Value = Instruction> {
    let xreg = (0u8..32).prop_map(XReg::new);
    let xreg2 = (0u8..32).prop_map(XReg::new);
    let xreg3 = (0u8..32).prop_map(XReg::new);
    let vreg = (0u8..32).prop_map(VReg::new);
    let vreg2 = (0u8..32).prop_map(VReg::new);
    prop_oneof![
        (xreg.clone(), -1000i64..1000).prop_map(|(rd, imm)| Instruction::Li { rd, imm }),
        (xreg.clone(), xreg2.clone(), -100i32..100).prop_map(|(rd, rs1, imm)| Instruction::Addi {
            rd,
            rs1,
            imm
        }),
        (xreg.clone(), xreg2.clone(), xreg3.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Add {
            rd,
            rs1,
            rs2
        }),
        (xreg.clone(), xreg2.clone(), xreg3.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Mul {
            rd,
            rs1,
            rs2
        }),
        // Aligned scalar store/load pair region: 0x8000 + k*8.
        (xreg.clone(), 0i64..64).prop_map(|(rd, k)| Instruction::Li {
            rd,
            imm: 0x8000 + k * 8
        }),
        (xreg.clone(), vreg.clone()).prop_map(|(rd, vs2)| Instruction::VmvXs { rd, vs2 }),
        (vreg.clone(), xreg.clone()).prop_map(|(vd, rs1)| Instruction::VmvVx { vd, rs1 }),
        (vreg.clone(), vreg2.clone(), xreg.clone())
            .prop_map(|(vd, vs2, rs1)| Instruction::VaddVx { vd, vs2, rs1 }),
        (vreg.clone(), vreg2.clone()).prop_map(|(vd, vs1)| Instruction::VmvVv { vd, vs1 }),
        (vreg.clone(), vreg2.clone(), xreg.clone())
            .prop_map(|(vd, vs2, rs1)| Instruction::Vslide1downVx { vd, vs2, rs1 }),
        (vreg, vreg2, xreg).prop_map(|(vd, vs2, rs)| Instruction::VindexmacVx { vd, vs2, rs }),
        (xreg2).prop_map(|rd| Instruction::Vsetvli {
            rd,
            rs1: XReg::ZERO,
            sew: Sew::E32,
            lmul: Lmul::M1,
        }),
        Just(Instruction::Nop),
    ]
}

/// Builds a halted program from a straight-line instruction body.
pub fn program_from(instrs: &[Instruction]) -> Program {
    let mut b = ProgramBuilder::new();
    for i in instrs {
        b.push(*i);
    }
    b.halt();
    b.build()
}
