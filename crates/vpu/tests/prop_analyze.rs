//! Differential property suite: the static analyzer vs the stepwise
//! oracle.
//!
//! Two implications pin the analyzer to the interpreter:
//!
//! * **Soundness** — if `analyze` reports zero error-class diagnostics
//!   (so a [`Verified`] token would be minted and the check-elided
//!   engine path taken), the stepwise oracle must never fault on the
//!   same program. A violation here would mean the fast path can skip
//!   a check that would actually have fired.
//! * **Precision tracking** — if the oracle faults, the analyzer must
//!   have flagged an error-class diagnostic, and that diagnostic must
//!   either name the rule corresponding to the concrete fault or be
//!   explicitly `Unprovable` / on the pinned imprecision allowlist
//!   (the analyzer lost the value and had to assume the worst).
//!
//! Both properties run over two program distributions: the hostile
//! generator from the engine differential suite (faults are common)
//! and a tame, mostly-legal generator (clean verdicts are common), so
//! neither implication is routinely vacuous. Run with
//! `PROPTEST_CASES=64` (or more) in CI; the shim's deterministic
//! per-test RNG makes failures reproducible.

use indexmac_isa::instr::FReg;
use indexmac_isa::{Instruction, Lmul, Program, ProgramBuilder, Sew, VReg, XReg};
use indexmac_vpu::{
    analyze, Confidence, DecodedProgram, ExecError, NullObserver, Rule, Severity, SimConfig,
    SimError, Simulator,
};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Dynamic-instruction guard: hitting it is *not* a fault for these
/// properties (the analyzer proves fault-freedom, not termination).
const MAX_DYN: u64 = 4_000;

/// Rules the precision property accepts for *any* concrete fault, even
/// at `Proven` confidence: once the abstract vtype is lost, every
/// SEW-dependent runtime fault is downstream of the same imprecision.
const IMPRECISION_ALLOWLIST: &[Rule] = &[Rule::UnknownVtype];

fn treg() -> impl Strategy<Value = XReg> {
    (0u8..10).prop_map(XReg::new)
}

fn areg() -> impl Strategy<Value = XReg> {
    (10u8..14).prop_map(XReg::new)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..32).prop_map(VReg::new)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..4).prop_map(FReg::new)
}

fn exec_sew() -> impl Strategy<Value = Sew> {
    prop_oneof![Just(Sew::E8), Just(Sew::E16), Just(Sew::E32)]
}

fn lmul() -> impl Strategy<Value = Lmul> {
    prop_oneof![Just(Lmul::M1), Just(Lmul::M2), Just(Lmul::M4)]
}

/// The hostile instruction mix from `prop_engine`: every SEW and LMUL,
/// odd addresses, e64 vsetvli, wild branch offsets — faults are common.
fn hostile_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        (treg(), -1000i64..1000).prop_map(|(rd, imm)| Instruction::Li { rd, imm }),
        (areg(), 0i64..0x4000).prop_map(|(rd, v)| Instruction::Li {
            rd,
            imm: 0x1000 + v
        }),
        (treg(), treg(), -64i32..64).prop_map(|(rd, rs1, imm)| Instruction::Addi { rd, rs1, imm }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Add { rd, rs1, rs2 }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Sub { rd, rs1, rs2 }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Mul { rd, rs1, rs2 }),
        (treg(), treg(), 0u8..8).prop_map(|(rd, rs1, shamt)| Instruction::Slli { rd, rs1, shamt }),
        (treg(), treg(), 0u8..8).prop_map(|(rd, rs1, shamt)| Instruction::Srli { rd, rs1, shamt }),
        (treg(), areg(), 0i32..256).prop_map(|(rd, rs1, imm)| Instruction::Lw { rd, rs1, imm }),
        (treg(), areg(), 0i32..256).prop_map(|(rs2, rs1, imm)| Instruction::Sw { rs2, rs1, imm }),
        (freg(), areg(), 0i32..256).prop_map(|(fd, rs1, imm)| Instruction::Flw { fd, rs1, imm }),
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Beq {
            rs1,
            rs2,
            offset
        }),
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Bne {
            rs1,
            rs2,
            offset
        }),
        (treg(), 1i32..6).prop_map(|(rd, offset)| Instruction::Jal { rd, offset }),
        (
            treg(),
            prop_oneof![Just(XReg::ZERO), treg()],
            exec_sew(),
            lmul()
        )
            .prop_map(|(rd, rs1, sew, lmul)| Instruction::Vsetvli { rd, rs1, sew, lmul }),
        (treg(), lmul()).prop_map(|(rd, lmul)| Instruction::Vsetvli {
            rd,
            rs1: XReg::ZERO,
            sew: Sew::E64,
            lmul
        }),
        (vreg(), areg()).prop_map(|(vd, rs1)| Instruction::Vle8 { vd, rs1 }),
        (vreg(), areg()).prop_map(|(vd, rs1)| Instruction::Vle16 { vd, rs1 }),
        (vreg(), areg()).prop_map(|(vd, rs1)| Instruction::Vle32 { vd, rs1 }),
        (vreg(), areg()).prop_map(|(vs3, rs1)| Instruction::Vse32 { vs3, rs1 }),
        (vreg(), vreg(), treg()).prop_map(|(vd, vs2, rs)| Instruction::VindexmacVx { vd, vs2, rs }),
        (vreg(), vreg(), vreg(), 0u8..20)
            .prop_map(|(vd, vs2, vs1, slot)| { Instruction::VindexmacVvi { vd, vs2, vs1, slot } }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VaddVv { vd, vs2, vs1 }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VfaddVv { vd, vs2, vs1 }),
        (vreg(), freg(), vreg()).prop_map(|(vd, fs1, vs2)| Instruction::VfmaccVf { vd, fs1, vs2 }),
        (vreg(), treg()).prop_map(|(vd, rs1)| Instruction::VmvVx { vd, rs1 }),
        (treg(), vreg()).prop_map(|(rd, vs2)| Instruction::VmvXs { rd, vs2 }),
        (vreg(), vreg(), 0u8..8).prop_map(|(vd, vs2, imm)| Instruction::VslidedownVi {
            vd,
            vs2,
            imm
        }),
    ]
    .boxed()
}

/// Hostile program: seeded address registers, a random initial
/// `vsetvli`, then a random body and a final `ebreak`.
fn hostile_program() -> impl Strategy<Value = Program> {
    (
        exec_sew(),
        lmul(),
        proptest::collection::vec(hostile_instr(), 0..40),
    )
        .prop_map(|(sew, lmul, body)| {
            let mut b = ProgramBuilder::new();
            b.li(XReg::new(10), 0x1000);
            b.li(XReg::new(11), 0x2000);
            b.li(XReg::new(12), 0x3004);
            b.li(XReg::new(13), 0x4000);
            b.push(Instruction::Vsetvli {
                rd: XReg::new(5),
                rs1: XReg::ZERO,
                sew,
                lmul,
            });
            for i in body {
                b.push(i);
            }
            b.halt();
            b.build()
        })
}

/// Mostly-legal instruction mix: aligned addresses, e32/m1 only,
/// in-range slots, short forward branches — clean verdicts are common,
/// which keeps the soundness implication non-vacuous.
fn tame_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        (treg(), -1000i64..1000).prop_map(|(rd, imm)| Instruction::Li { rd, imm }),
        // Addresses stay 64-byte aligned so every vector access at any
        // SEW is element-aligned by construction.
        (areg(), 0i64..0x40).prop_map(|(rd, v)| Instruction::Li {
            rd,
            imm: 0x1000 + v * 0x40
        }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Add { rd, rs1, rs2 }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Mul { rd, rs1, rs2 }),
        (treg(), treg()).prop_map(|(rd, rs)| Instruction::Mv { rd, rs }),
        (treg(), areg(), 0i32..64).prop_map(|(rd, rs1, imm)| Instruction::Lw {
            rd,
            rs1,
            imm: imm * 4
        }),
        (treg(), areg(), 0i32..64).prop_map(|(rs2, rs1, imm)| Instruction::Sw {
            rs2,
            rs1,
            imm: imm * 4
        }),
        (treg(), treg(), 1i32..4).prop_map(|(rs1, rs2, offset)| Instruction::Beq {
            rs1,
            rs2,
            offset
        }),
        // Single-register vector ops at the entry vtype (e32/m1).
        (0u8..32, areg()).prop_map(|(vd, rs1)| Instruction::Vle32 {
            vd: VReg::new(vd),
            rs1
        }),
        (0u8..32, areg()).prop_map(|(vs3, rs1)| Instruction::Vse32 {
            vs3: VReg::new(vs3),
            rs1
        }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VaddVv { vd, vs2, vs1 }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VfaddVv { vd, vs2, vs1 }),
        (vreg(), vreg(), vreg(), 0u8..4)
            .prop_map(|(vd, vs2, vs1, slot)| { Instruction::VindexmacVvi { vd, vs2, vs1, slot } }),
        (vreg(), treg()).prop_map(|(vd, rs1)| Instruction::VmvVx { vd, rs1 }),
        (treg(), vreg()).prop_map(|(rd, vs2)| Instruction::VmvXs { rd, vs2 }),
    ]
    .boxed()
}

/// Tame program: e32/m1 `vsetvli`, aligned operands, and a halt pad so
/// short forward branches always land on an `ebreak`.
fn tame_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(tame_instr(), 0..40).prop_map(|body| {
        let mut b = ProgramBuilder::new();
        b.li(XReg::new(10), 0x1000);
        b.li(XReg::new(11), 0x2000);
        b.li(XReg::new(12), 0x3000);
        b.li(XReg::new(13), 0x4000);
        b.push(Instruction::Vsetvli {
            rd: XReg::new(5),
            rs1: XReg::ZERO,
            sew: Sew::E32,
            lmul: Lmul::M1,
        });
        for i in body {
            b.push(i);
        }
        for _ in 0..4 {
            b.halt();
        }
        b.build()
    })
}

/// A simulator with patterned memory (the analyzer never models data,
/// so interesting loaded values stress the "loaded scalars are
/// unknown" abstraction).
fn warmed_sim() -> Simulator {
    let mut sim = Simulator::new(SimConfig::table_i());
    sim.set_max_instructions(MAX_DYN);
    for i in 0..0x4000u64 {
        sim.memory_mut()
            .write_u8(0x1000 + i, (i as u8).wrapping_mul(31).wrapping_add(11));
    }
    sim
}

/// The analyzer rule that corresponds 1:1 to a concrete fault.
fn direct_rule(fault: &SimError) -> Rule {
    match fault {
        SimError::Exec(e) => match e {
            ExecError::Unaligned { .. } => Rule::UnalignedAccess,
            ExecError::UnsupportedSew { .. } => Rule::UnsupportedSew,
            ExecError::IllegalSewForOp { .. } => Rule::IllegalSewForOp,
            ExecError::IllegalWidening { .. } => Rule::IllegalWidening,
            ExecError::PcOutOfRange { .. } => Rule::PcOutOfRange,
            ExecError::GroupingUnsupported { .. } => Rule::GroupingUnsupported,
            ExecError::GroupOutOfRange { .. } => Rule::GroupOutOfRange,
            ExecError::SlotOutOfRange { .. } => Rule::SlotOutOfRange,
        },
        SimError::FellOffEnd { .. } => Rule::FallsOffEnd,
        SimError::InstructionLimit { .. } => {
            unreachable!("instruction limit is not a fault for these properties")
        }
    }
}

/// Runs both properties (and the token invariant) on one program.
fn check_differential(p: &Program) -> Result<(), TestCaseError> {
    let cfg = SimConfig::table_i();
    let decoded = DecodedProgram::decode(p);
    let analysis = analyze(&decoded, cfg.vlen_bits);

    // Token invariant: minted exactly when no error-class diagnostic,
    // and bound to this program's identity.
    match analysis.verified() {
        Some(token) => {
            prop_assert_eq!(analysis.error_count(), 0);
            prop_assert_eq!(token.program_len(), p.len());
            prop_assert_eq!(token.vlen_bits(), cfg.vlen_bits);
        }
        None => prop_assert!(analysis.error_count() > 0),
    }

    let mut oracle = warmed_sim();
    let outcome = oracle.run_stepwise(p, &mut NullObserver);
    let fault = match &outcome {
        Ok(_) | Err(SimError::InstructionLimit { .. }) => None,
        Err(e) => Some(e),
    };

    if let Some(fault) = fault {
        // Precision: a concrete fault must have been flagged as an
        // error, by the matching rule unless the analyzer declared the
        // imprecision (Unprovable or the pinned allowlist).
        let errors: Vec<_> = analysis
            .diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        if errors.is_empty() {
            eprintln!("unflagged fault {fault:?} in:\n{p}");
        }
        prop_assert!(
            !errors.is_empty(),
            "oracle faulted ({:?}) but the analyzer found no error",
            fault
        );
        let direct = direct_rule(fault);
        let justified = errors.iter().any(|d| {
            d.rule == direct
                || d.confidence == Confidence::Unprovable
                || IMPRECISION_ALLOWLIST.contains(&d.rule)
        });
        if !justified {
            eprintln!("fault {fault:?} vs diagnostics {errors:?} in:\n{p}");
        }
        prop_assert!(
            justified,
            "fault {:?} not justified by any flagged rule (wanted {:?} or a declared imprecision)",
            fault,
            direct
        );
    } else if analysis.error_count() > 0 {
        // The reverse direction is intentionally one-sided: an
        // unprovable error on a program that happens not to fault is
        // the analyzer being conservative, which soundness permits.
    }

    // Soundness: a clean verdict (token minted) proves the oracle
    // cannot fault. This is the property the check-elided engine path
    // relies on.
    if analysis.error_count() == 0 {
        prop_assert!(
            fault.is_none(),
            "analyzer verdict was clean but the oracle faulted: {:?}",
            fault
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hostile distribution: faults are common, so this mostly
    /// exercises precision tracking (fault => flagged error).
    #[test]
    fn analyzer_matches_oracle_on_hostile_programs(p in hostile_program()) {
        check_differential(&p)?;
    }

    /// Tame distribution: clean verdicts are common, so this mostly
    /// exercises soundness (clean => the oracle never faults).
    #[test]
    fn analyzer_matches_oracle_on_tame_programs(p in tame_program()) {
        check_differential(&p)?;
    }
}

/// The tame generator must actually produce verified programs with
/// reasonable frequency — otherwise the soundness property is vacuous.
/// Deterministic spot check: straight-line aligned code verifies.
#[test]
fn straight_line_aligned_program_verifies() {
    let mut b = ProgramBuilder::new();
    b.li(XReg::new(10), 0x1000);
    b.push(Instruction::Vsetvli {
        rd: XReg::ZERO,
        rs1: XReg::ZERO,
        sew: Sew::E32,
        lmul: Lmul::M1,
    });
    b.push(Instruction::Vle32 {
        vd: VReg::new(1),
        rs1: XReg::new(10),
    });
    b.push(Instruction::VaddVv {
        vd: VReg::new(2),
        vs2: VReg::new(1),
        vs1: VReg::new(1),
    });
    b.push(Instruction::Vse32 {
        vs3: VReg::new(2),
        rs1: XReg::new(10),
    });
    b.halt();
    let p = b.build();
    let cfg = SimConfig::table_i();
    let analysis = analyze(&DecodedProgram::decode(&p), cfg.vlen_bits);
    assert!(
        analysis.verified().is_some(),
        "diagnostics: {:?}",
        analysis.diagnostics()
    );
    let mut sim = warmed_sim();
    sim.run_stepwise(&p, &mut NullObserver).expect("runs clean");
}
