//! Property tests for the byte-addressed vector register file: lane
//! round-trips at every SEW, grouped-register contiguity, and aliasing
//! across SEW reinterpretation.

use indexmac_isa::{Sew, VReg};
use indexmac_vpu::ArchState;
use proptest::prelude::*;

const SEWS: [Sew; 3] = [Sew::E8, Sew::E16, Sew::E32];

fn sew_strategy() -> impl Strategy<Value = Sew> {
    prop_oneof![Just(Sew::E8), Just(Sew::E16), Just(Sew::E32)]
}

fn vlen_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(128usize), Just(256), Just(512), Just(1024)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing a lane at any SEW reads back the truncated value, and
    /// only the addressed bytes change.
    #[test]
    fn lane_roundtrip_is_local(
        vlen in vlen_strategy(),
        sew in sew_strategy(),
        reg in 0u8..32,
        bits in any::<u32>(),
        lane_raw in 0usize..4096,
    ) {
        let mut s = ArchState::new(vlen);
        let lanes = s.lanes(sew);
        let lane = lane_raw % lanes;
        let before: Vec<u8> = s.v_bytes(VReg::new(reg)).to_vec();
        s.set_v_lane(VReg::new(reg), lane, sew, bits);
        let mask = (u64::MAX >> (64 - sew.bits())) as u32;
        prop_assert_eq!(s.v_lane(VReg::new(reg), lane, sew), bits & mask);
        // Every byte outside the written element is untouched.
        let after = s.v_bytes(VReg::new(reg));
        for (i, (b, a)) in before.iter().zip(after.iter()).enumerate() {
            let elem = lane * sew.bytes();
            if i < elem || i >= elem + sew.bytes() {
                prop_assert_eq!(b, a, "byte {} changed outside lane {}", i, lane);
            }
        }
        // Other registers never alias.
        let other = VReg::new((reg + 1) % 32);
        prop_assert!(s.v_bytes(other).iter().all(|b| *b == 0));
    }

    /// An e32 lane is exactly its little-endian e8/e16 sublanes — the
    /// SEW-reinterpretation aliasing the hardware's bit-typed VRF gives.
    #[test]
    fn sew_reinterpretation_composes(
        vlen in vlen_strategy(),
        reg in 0u8..32,
        word in any::<u32>(),
        lane_raw in 0usize..4096,
    ) {
        let mut s = ArchState::new(vlen);
        let r = VReg::new(reg);
        let lane = lane_raw % s.lanes(Sew::E32);
        s.set_v_lane(r, lane, Sew::E32, word);
        let from_bytes = (0..4)
            .map(|k| s.v_lane(r, lane * 4 + k, Sew::E8) << (8 * k))
            .fold(0u32, |acc, b| acc | b);
        prop_assert_eq!(from_bytes, word);
        let from_halves = s.v_lane(r, lane * 2, Sew::E16)
            | (s.v_lane(r, lane * 2 + 1, Sew::E16) << 16);
        prop_assert_eq!(from_halves, word);
        // Writing one e8 sublane changes exactly that byte of the word.
        s.set_v_lane(r, lane * 4 + 2, Sew::E8, 0xAB);
        let expect = (word & 0xFF00_FFFF) | (0xAB << 16);
        prop_assert_eq!(s.v_lane(r, lane, Sew::E32), expect);
    }

    /// A register group is the contiguous concatenation of its member
    /// registers at every SEW, for every legal group size.
    #[test]
    fn grouped_registers_are_contiguous(
        vlen in vlen_strategy(),
        base_raw in 0usize..4096,
        regs in prop_oneof![Just(1usize), Just(2), Just(4)],
        fill in any::<u8>(),
    ) {
        let mut s = ArchState::new(vlen);
        let base = (base_raw % (33 - regs)) as u8;
        let r = VReg::new(base);
        for sew in SEWS {
            let lanes = s.lanes(sew);
            for g in 0..regs {
                // Mark lane 0 of each member through the per-register view.
                s.set_v_lane(VReg::new(base + g as u8), 0, sew, fill as u32 ^ g as u32);
            }
            for g in 0..regs {
                prop_assert_eq!(
                    s.v_lane_group(r, regs, g * lanes, sew),
                    (fill as u32 ^ g as u32) & ((u64::MAX >> (64 - sew.bits())) as u32),
                    "group lane {} at {}", g * lanes, sew
                );
            }
            // And group writes land in the right member register.
            let last = regs * lanes - 1;
            s.set_v_lane_group(r, regs, last, sew, 0x5A);
            prop_assert_eq!(
                s.v_lane(VReg::new(base + regs as u8 - 1), lanes - 1, sew),
                0x5A
            );
        }
    }

    /// Sign-extended views agree with two's-complement arithmetic.
    #[test]
    fn signed_views_match_twos_complement(
        sew in sew_strategy(),
        bits in any::<u32>(),
    ) {
        let mut s = ArchState::new(512);
        s.set_v_lane(VReg::new(7), 0, sew, bits);
        let got = s.v_lane_i(VReg::new(7), 0, sew);
        let width = sew.bits();
        let mask = (u64::MAX >> (64 - width)) as u32;
        let raw = bits & mask;
        let expect = if width == 32 {
            raw as i32
        } else if raw >= 1 << (width - 1) {
            raw as i32 - (1i64 << width) as i32
        } else {
            raw as i32
        };
        prop_assert_eq!(got, expect);
    }
}
