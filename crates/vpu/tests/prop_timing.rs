//! Property tests of the simulator: timing-model invariants and
//! functional/timed equivalence over randomly generated straight-line
//! programs.

mod common;

use common::{instr_strategy, program_from};
use indexmac_isa::{VReg, XReg};
use indexmac_vpu::{SimConfig, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random valid programs execute without faulting, and cycles are
    /// bounded below by the issue-width limit.
    #[test]
    fn random_programs_run_and_respect_issue_width(
        instrs in prop::collection::vec(instr_strategy(), 1..200),
    ) {
        let p = program_from(&instrs);
        let mut sim = Simulator::new(SimConfig::table_i());
        let report = sim.run(&p).expect("generated programs are valid");
        prop_assert_eq!(report.instructions, instrs.len() as u64 + 1);
        let floor = report.instructions.div_ceil(SimConfig::table_i().issue_width as u64);
        prop_assert!(
            report.cycles >= floor,
            "{} cycles below issue floor {}",
            report.cycles,
            floor
        );
    }

    /// Appending instructions never makes a program finish earlier.
    #[test]
    fn timing_is_monotone_in_program_length(
        instrs in prop::collection::vec(instr_strategy(), 2..120),
        cut in 1usize..2,
    ) {
        let shorter = program_from(&instrs[..instrs.len() - cut.min(instrs.len() - 1)]);
        let longer = program_from(&instrs);
        let mut s1 = Simulator::new(SimConfig::table_i());
        let mut s2 = Simulator::new(SimConfig::table_i());
        let r1 = s1.run(&shorter).unwrap();
        let r2 = s2.run(&longer).unwrap();
        prop_assert!(r2.cycles >= r1.cycles, "longer {} < shorter {}", r2.cycles, r1.cycles);
    }

    /// Timed and functional execution agree on all architectural state.
    #[test]
    fn timed_and_functional_states_agree(
        instrs in prop::collection::vec(instr_strategy(), 1..150),
    ) {
        let p = program_from(&instrs);
        let mut timed = Simulator::new(SimConfig::table_i());
        let mut func = Simulator::new(SimConfig::table_i());
        timed.run(&p).unwrap();
        func.run_functional(&p).unwrap();
        for i in 0..32 {
            let r = XReg::new(i);
            prop_assert_eq!(timed.state().x(r), func.state().x(r), "x{} differs", i);
            let v = VReg::new(i);
            prop_assert_eq!(timed.state().v_bytes(v), func.state().v_bytes(v), "v{} differs", i);
        }
        prop_assert_eq!(timed.state().vl(), func.state().vl());
    }

    /// A slower memory system never speeds a program up.
    #[test]
    fn slower_dram_never_helps(
        instrs in prop::collection::vec(instr_strategy(), 1..100),
    ) {
        let p = program_from(&instrs);
        let fast_cfg = SimConfig::table_i();
        let mut slow_cfg = SimConfig::table_i();
        slow_cfg.hierarchy.dram.latency *= 4;
        slow_cfg.hierarchy.l2_latency *= 2;
        let mut fast = Simulator::new(fast_cfg);
        let mut slow = Simulator::new(slow_cfg);
        let rf = fast.run(&p).unwrap();
        let rs = slow.run(&p).unwrap();
        prop_assert!(rs.cycles >= rf.cycles, "slow {} < fast {}", rs.cycles, rf.cycles);
    }
}
