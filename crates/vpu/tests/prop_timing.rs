//! Property tests of the simulator: timing-model invariants and
//! functional/timed equivalence over randomly generated straight-line
//! programs.

use indexmac_isa::{Instruction, Lmul, Program, ProgramBuilder, Sew, VReg, XReg};
use indexmac_vpu::{SimConfig, Simulator};
use proptest::prelude::*;

/// Random *valid* straight-line instructions: memory accesses use
/// 4-byte-aligned addresses in a small positive window, and `vsetvli`
/// keeps SEW = 32 (the modelled width).
fn instr_strategy() -> impl Strategy<Value = Instruction> {
    let xreg = (0u8..32).prop_map(XReg::new);
    let xreg2 = (0u8..32).prop_map(XReg::new);
    let xreg3 = (0u8..32).prop_map(XReg::new);
    let vreg = (0u8..32).prop_map(VReg::new);
    let vreg2 = (0u8..32).prop_map(VReg::new);
    prop_oneof![
        (xreg.clone(), -1000i64..1000).prop_map(|(rd, imm)| Instruction::Li { rd, imm }),
        (xreg.clone(), xreg2.clone(), -100i32..100).prop_map(|(rd, rs1, imm)| Instruction::Addi {
            rd,
            rs1,
            imm
        }),
        (xreg.clone(), xreg2.clone(), xreg3.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Add {
            rd,
            rs1,
            rs2
        }),
        (xreg.clone(), xreg2.clone(), xreg3.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Mul {
            rd,
            rs1,
            rs2
        }),
        // Aligned scalar store/load pair region: 0x8000 + k*8.
        (xreg.clone(), 0i64..64).prop_map(|(rd, k)| Instruction::Li {
            rd,
            imm: 0x8000 + k * 8
        }),
        (xreg.clone(), vreg.clone()).prop_map(|(rd, vs2)| Instruction::VmvXs { rd, vs2 }),
        (vreg.clone(), xreg.clone()).prop_map(|(vd, rs1)| Instruction::VmvVx { vd, rs1 }),
        (vreg.clone(), vreg2.clone(), xreg.clone())
            .prop_map(|(vd, vs2, rs1)| Instruction::VaddVx { vd, vs2, rs1 }),
        (vreg.clone(), vreg2.clone()).prop_map(|(vd, vs1)| Instruction::VmvVv { vd, vs1 }),
        (vreg.clone(), vreg2.clone(), xreg.clone())
            .prop_map(|(vd, vs2, rs1)| Instruction::Vslide1downVx { vd, vs2, rs1 }),
        (vreg, vreg2, xreg).prop_map(|(vd, vs2, rs)| Instruction::VindexmacVx { vd, vs2, rs }),
        (xreg2).prop_map(|rd| Instruction::Vsetvli {
            rd,
            rs1: XReg::ZERO,
            sew: Sew::E32,
            lmul: Lmul::M1,
        }),
        Just(Instruction::Nop),
    ]
}

fn program_from(instrs: &[Instruction]) -> Program {
    let mut b = ProgramBuilder::new();
    for i in instrs {
        b.push(*i);
    }
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random valid programs execute without faulting, and cycles are
    /// bounded below by the issue-width limit.
    #[test]
    fn random_programs_run_and_respect_issue_width(
        instrs in prop::collection::vec(instr_strategy(), 1..200),
    ) {
        let p = program_from(&instrs);
        let mut sim = Simulator::new(SimConfig::table_i());
        let report = sim.run(&p).expect("generated programs are valid");
        prop_assert_eq!(report.instructions, instrs.len() as u64 + 1);
        let floor = report.instructions.div_ceil(SimConfig::table_i().issue_width as u64);
        prop_assert!(
            report.cycles >= floor,
            "{} cycles below issue floor {}",
            report.cycles,
            floor
        );
    }

    /// Appending instructions never makes a program finish earlier.
    #[test]
    fn timing_is_monotone_in_program_length(
        instrs in prop::collection::vec(instr_strategy(), 2..120),
        cut in 1usize..2,
    ) {
        let shorter = program_from(&instrs[..instrs.len() - cut.min(instrs.len() - 1)]);
        let longer = program_from(&instrs);
        let mut s1 = Simulator::new(SimConfig::table_i());
        let mut s2 = Simulator::new(SimConfig::table_i());
        let r1 = s1.run(&shorter).unwrap();
        let r2 = s2.run(&longer).unwrap();
        prop_assert!(r2.cycles >= r1.cycles, "longer {} < shorter {}", r2.cycles, r1.cycles);
    }

    /// Timed and functional execution agree on all architectural state.
    #[test]
    fn timed_and_functional_states_agree(
        instrs in prop::collection::vec(instr_strategy(), 1..150),
    ) {
        let p = program_from(&instrs);
        let mut timed = Simulator::new(SimConfig::table_i());
        let mut func = Simulator::new(SimConfig::table_i());
        timed.run(&p).unwrap();
        func.run_functional(&p).unwrap();
        for i in 0..32 {
            let r = XReg::new(i);
            prop_assert_eq!(timed.state().x(r), func.state().x(r), "x{} differs", i);
            let v = VReg::new(i);
            prop_assert_eq!(timed.state().v_bytes(v), func.state().v_bytes(v), "v{} differs", i);
        }
        prop_assert_eq!(timed.state().vl(), func.state().vl());
    }

    /// A slower memory system never speeds a program up.
    #[test]
    fn slower_dram_never_helps(
        instrs in prop::collection::vec(instr_strategy(), 1..100),
    ) {
        let p = program_from(&instrs);
        let fast_cfg = SimConfig::table_i();
        let mut slow_cfg = SimConfig::table_i();
        slow_cfg.hierarchy.dram.latency *= 4;
        slow_cfg.hierarchy.l2_latency *= 2;
        let mut fast = Simulator::new(fast_cfg);
        let mut slow = Simulator::new(slow_cfg);
        let rf = fast.run(&p).unwrap();
        let rs = slow.run(&p).unwrap();
        prop_assert!(rs.cycles >= rf.cycles, "slow {} < fast {}", rs.cycles, rf.cycles);
    }
}
