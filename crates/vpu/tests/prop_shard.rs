//! Differential property suite: sharded execution vs the unsharded
//! counting engine and the `step()` oracle.
//!
//! Random programs — branches, loops, faulting memory accesses, both
//! IndexMAC generations — are executed through
//! [`Simulator::run_sharded`] at random shard sizes and through the
//! unsharded counting run and the stepwise oracle. All paths must
//! produce identical architectural state, identical counting
//! [`RunReport`]s, identical memory, and identical faults, including
//! the instruction-limit boundary. A second generator synthesizes the
//! trace compiler's steady-state block shape (a run of
//! `vindexmac.vvi` + `addi` + fall-through `bne`) so shard boundaries
//! land inside fused runs.
//!
//! Run with `PROPTEST_CASES=64` in CI; the shim's per-test
//! deterministic RNG makes any failure reproducible.

use indexmac_isa::instr::FReg;
use indexmac_isa::{Instruction, Lmul, Program, ProgramBuilder, Sew, VReg, XReg};
use indexmac_vpu::{analyze, CountingObserver, DecodedProgram, SimConfig, Simulator};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Dynamic-instruction guard for random programs (tight enough that
/// accidental infinite loops finish fast, loose enough for real runs).
const MAX_DYN: u64 = 4_000;

fn treg() -> impl Strategy<Value = XReg> {
    (0u8..10).prop_map(XReg::new)
}

/// Address registers a0..a3: written only by positive `li`, so memory
/// accesses stay in a small window while odd values still exercise
/// alignment faults.
fn areg() -> impl Strategy<Value = XReg> {
    (10u8..14).prop_map(XReg::new)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..32).prop_map(VReg::new)
}

fn exec_sew() -> impl Strategy<Value = Sew> {
    prop_oneof![Just(Sew::E8), Just(Sew::E16), Just(Sew::E32)]
}

fn lmul() -> impl Strategy<Value = Lmul> {
    prop_oneof![Just(Lmul::M1), Just(Lmul::M2), Just(Lmul::M4)]
}

fn any_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        (treg(), -1000i64..1000).prop_map(|(rd, imm)| Instruction::Li { rd, imm }),
        (areg(), 0i64..0x4000).prop_map(|(rd, v)| Instruction::Li {
            rd,
            imm: 0x1000 + v
        }),
        (treg(), treg(), -64i32..64).prop_map(|(rd, rs1, imm)| Instruction::Addi { rd, rs1, imm }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Add { rd, rs1, rs2 }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Mul { rd, rs1, rs2 }),
        (treg(), areg(), 0i32..256).prop_map(|(rd, rs1, imm)| Instruction::Lw { rd, rs1, imm }),
        (treg(), areg(), 0i32..256).prop_map(|(rd, rs1, imm)| Instruction::Ld { rd, rs1, imm }),
        (treg(), areg(), 0i32..256).prop_map(|(rs2, rs1, imm)| Instruction::Sw { rs2, rs1, imm }),
        (treg(), areg(), 0i32..256).prop_map(|(rs2, rs1, imm)| Instruction::Sd { rs2, rs1, imm }),
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Beq {
            rs1,
            rs2,
            offset
        }),
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Bne {
            rs1,
            rs2,
            offset
        }),
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Blt {
            rs1,
            rs2,
            offset
        }),
        (
            treg(),
            prop_oneof![Just(XReg::ZERO), treg()],
            exec_sew(),
            lmul()
        )
            .prop_map(|(rd, rs1, sew, lmul)| Instruction::Vsetvli { rd, rs1, sew, lmul }),
        (vreg(), areg()).prop_map(|(vd, rs1)| Instruction::Vle32 { vd, rs1 }),
        (vreg(), areg()).prop_map(|(vs3, rs1)| Instruction::Vse32 { vs3, rs1 }),
        (vreg(), vreg(), treg()).prop_map(|(vd, vs2, rs)| Instruction::VindexmacVx { vd, vs2, rs }),
        (vreg(), vreg(), vreg(), 0u8..20)
            .prop_map(|(vd, vs2, vs1, slot)| { Instruction::VindexmacVvi { vd, vs2, vs1, slot } }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VaddVv { vd, vs2, vs1 }),
        (treg(), vreg()).prop_map(|(rd, vs2)| Instruction::VmvXs { rd, vs2 }),
        Just(Instruction::Nop),
    ]
    .boxed()
}

/// A random program: address registers seeded, a legal initial
/// `vsetvli`, then a random body and a final `ebreak`. Faulting bodies
/// are expected and compared fault-for-fault.
fn program() -> impl Strategy<Value = Program> {
    (
        exec_sew(),
        lmul(),
        proptest::collection::vec(any_instr(), 0..40),
    )
        .prop_map(|(sew, lmul, body)| {
            let mut b = ProgramBuilder::new();
            b.li(XReg::new(10), 0x1000);
            b.li(XReg::new(11), 0x2000);
            b.li(XReg::new(12), 0x3004);
            b.li(XReg::new(13), 0x4000);
            b.push(Instruction::Vsetvli {
                rd: XReg::new(5),
                rs1: XReg::ZERO,
                sew,
                lmul,
            });
            for i in body {
                b.push(i);
            }
            b.halt();
            b.build()
        })
}

/// The trace compiler's steady-state shape: `reps` identical blocks of
/// `u` consecutive `vindexmac.vvi` + a counter `addi` + a fall-through
/// `bne`. The warmed VRF supplies the metadata, so the indirection
/// targets (and potential aliasing with the destinations) vary freely;
/// the checked engine referees whatever the fused path does with them.
fn fused_program() -> impl Strategy<Value = Program> {
    (
        1usize..5,
        1u64..12,
        exec_sew(),
        0u8..3,
        (20u8..24, 24u8..28),
    )
        .prop_map(|(u, reps, sew, dst_sel, (vs2_idx, vs1_idx))| {
            // Destination group base, aligned to the widening factor so
            // the block is legal at every SEW.
            let vd = VReg::new(dst_sel * 4);
            let vs2 = VReg::new(vs2_idx);
            let vs1 = VReg::new(vs1_idx);
            let mut b = ProgramBuilder::new();
            b.li(XReg::A0, 4);
            b.push(Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                sew,
                lmul: Lmul::M1,
            });
            b.li(XReg::T2, 100);
            for r in 0..reps {
                for q in 0..u {
                    b.push(Instruction::VindexmacVvi {
                        vd: VReg::new(vd.index() + (q as u8 % 2) * 4),
                        vs2,
                        vs1,
                        slot: (r % 4) as u8,
                    });
                }
                b.push(Instruction::Addi {
                    rd: XReg::T2,
                    rs1: XReg::T2,
                    imm: -1,
                });
                let next = b.new_label();
                b.bne(XReg::T2, XReg::ZERO, next);
                b.bind(next);
            }
            b.halt();
            b.build()
        })
}

/// A simulator with deterministically patterned memory and VRF, so
/// loads, stores and indirect MACs touch interesting data.
fn warmed_sim() -> Simulator {
    let mut sim = Simulator::new(SimConfig::table_i());
    sim.set_max_instructions(MAX_DYN);
    for i in 0..0x4000u64 {
        sim.memory_mut()
            .write_u8(0x1000 + i, (i as u8).wrapping_mul(31).wrapping_add(11));
    }
    for r in 0..32u8 {
        let reg = VReg::new(r);
        for lane in 0..16 {
            sim.state_mut().set_v_lane(
                reg,
                lane,
                Sew::E32,
                (r as u32)
                    .wrapping_mul(0x0101_0013)
                    .wrapping_add(lane as u32 * 0x2F),
            );
        }
    }
    sim
}

/// Asserts every architectural-state component matches between the two
/// execution paths.
fn assert_states_match(sharded: &Simulator, flat: &Simulator) -> Result<(), TestCaseError> {
    for r in 0..32u8 {
        prop_assert_eq!(
            sharded.state().x(XReg::new(r)),
            flat.state().x(XReg::new(r)),
            "x{} diverged",
            r
        );
        prop_assert_eq!(
            sharded.state().f_bits(FReg::new(r)),
            flat.state().f_bits(FReg::new(r)),
            "f{} diverged",
            r
        );
        prop_assert_eq!(
            sharded.state().v_bytes(VReg::new(r)),
            flat.state().v_bytes(VReg::new(r)),
            "v{} diverged",
            r
        );
    }
    prop_assert_eq!(sharded.state().vl(), flat.state().vl());
    prop_assert_eq!(sharded.state().vtype(), flat.state().vtype());
    prop_assert_eq!(sharded.state().pc, flat.state().pc);
    prop_assert_eq!(sharded.state().halted, flat.state().halted);
    Ok(())
}

fn assert_memory_matches(sharded: &Simulator, flat: &Simulator) -> Result<(), TestCaseError> {
    for addr in (0x1000u64..0x5000).step_by(257) {
        prop_assert_eq!(
            sharded.memory().read_u8(addr),
            flat.memory().read_u8(addr),
            "memory diverged at {:#x}",
            addr
        );
    }
    Ok(())
}

/// Runs `p` sharded and unsharded (both through counting observers) and
/// asserts full parity: outcome/fault, report, state, memory.
fn check_shard_parity(p: &Program, shard_size: u64) -> Result<(), TestCaseError> {
    let decoded = DecodedProgram::decode(p);
    let mut sharded = warmed_sim();
    let mut flat = warmed_sim();
    let got = sharded.run_sharded(&decoded, None, shard_size);
    let want = flat.run_counted(&decoded);
    match (&got, &want) {
        (Ok(s), Ok(f)) => {
            prop_assert_eq!(
                &s.report,
                f,
                "reports diverged at shard size {}",
                shard_size
            );
            prop_assert!(s.shards >= 1);
        }
        (a, b) => {
            prop_assert_eq!(
                a.as_ref().err(),
                b.as_ref().err(),
                "faults diverged at shard size {}",
                shard_size
            );
            prop_assert!(a.is_err() && b.is_err(), "outcome kinds diverged");
        }
    }
    assert_states_match(&sharded, &flat)?;
    assert_memory_matches(&sharded, &flat)?;
    // The stepwise oracle referees the counting run itself.
    if let Ok(s) = &got {
        let mut oracle = warmed_sim();
        let mut obs = CountingObserver::default();
        let n = oracle
            .run_stepwise(p, &mut obs)
            .expect("flat run succeeded, the oracle must too");
        prop_assert_eq!(&s.report, &obs.into_report(n), "oracle counts diverged");
        assert_states_match(&sharded, &oracle)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs at random shard sizes: the sharded run matches
    /// the unsharded counting run and the stepwise oracle on outcome,
    /// report, state, and memory — faults included.
    #[test]
    fn sharded_matches_flat_and_oracle(p in program(), shard_size in 1u64..64) {
        check_shard_parity(&p, shard_size)?;
    }

    /// The trace compiler's fused-block shape with shard boundaries
    /// landing inside fused runs: per-µop replay under the counting
    /// observer must agree with whatever phase 1 executed — and when
    /// the program analyzes clean, the check-elided sharded run must
    /// be identical to the checked sharded run.
    #[test]
    fn sharded_fused_blocks_match_at_any_boundary(p in fused_program(), shard_size in 1u64..48) {
        check_shard_parity(&p, shard_size)?;
        let decoded = DecodedProgram::decode(&p);
        if let Some(token) = analyze(&decoded, SimConfig::table_i().vlen_bits).verified() {
            let mut verified = warmed_sim();
            let mut checked = warmed_sim();
            let fast = verified.run_sharded(&decoded, Some(token), shard_size);
            let slow = checked.run_sharded(&decoded, None, shard_size);
            match (&fast, &slow) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "token changed the sharded result"),
                (a, b) => prop_assert_eq!(a.as_ref().err(), b.as_ref().err()),
            }
            assert_states_match(&verified, &checked)?;
            assert_memory_matches(&verified, &checked)?;
        }
    }

    /// Sharded runs are deterministic and shard-size-invariant: any two
    /// shard sizes give byte-identical results (only `shards` differs).
    #[test]
    fn shard_size_does_not_change_results(p in program(), s1 in 1u64..64, s2 in 64u64..4096) {
        let decoded = DecodedProgram::decode(&p);
        let mut a = warmed_sim();
        let mut b = warmed_sim();
        let ra = a.run_sharded(&decoded, None, s1);
        let rb = b.run_sharded(&decoded, None, s2);
        match (&ra, &rb) {
            (Ok(x), Ok(y)) => prop_assert_eq!(&x.report, &y.report, "{} vs {}", s1, s2),
            (x, y) => prop_assert_eq!(x.as_ref().err(), y.as_ref().err()),
        }
        assert_states_match(&a, &b)?;
        assert_memory_matches(&a, &b)?;
    }

    /// The instruction-limit boundary is identical sharded and flat for
    /// arbitrary small limits — wherever it lands relative to the shard
    /// boundaries.
    #[test]
    fn instruction_limit_boundary_parity(p in program(), limit in 1u64..40, shard_size in 1u64..16) {
        let decoded = DecodedProgram::decode(&p);
        let mut sharded = warmed_sim();
        sharded.set_max_instructions(limit);
        let mut flat = warmed_sim();
        flat.set_max_instructions(limit);
        let got = sharded.run_sharded(&decoded, None, shard_size);
        let want = flat.run_counted(&decoded);
        match (&got, &want) {
            (Ok(s), Ok(f)) => prop_assert_eq!(&s.report, f, "limit {} shard {}", limit, shard_size),
            (a, b) => prop_assert_eq!(a.as_ref().err(), b.as_ref().err(), "limit {}", limit),
        }
        assert_states_match(&sharded, &flat)?;
        assert_memory_matches(&sharded, &flat)?;
    }
}
