//! Differential property suite: the decode-once engine vs the
//! `step()` oracle.
//!
//! Random programs — every SEW and LMUL, loads/stores of every width,
//! branches and loops, both IndexMAC generations, plus the cold ops
//! that fall back to the oracle µop — are executed through
//! [`DecodedProgram`] and through the legacy interpret-per-step loop.
//! Both paths must produce identical architectural state (scalar, FP
//! and vector files, `vl`/`vtype`, the PC), identical [`RunReport`]s,
//! and identical faults, including the instruction-limit boundary.
//!
//! Run with `PROPTEST_CASES=64` in CI (mirroring the cross-kernel
//! differential job); the shim's per-test deterministic RNG makes any
//! failure reproducible.

use indexmac_isa::instr::FReg;
use indexmac_isa::{Instruction, Lmul, Program, ProgramBuilder, Sew, VReg, XReg};
use indexmac_vpu::{DecodedProgram, NullObserver, SimConfig, Simulator};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Dynamic-instruction guard for random programs (tight enough that
/// accidental infinite loops finish fast, loose enough for real runs).
const MAX_DYN: u64 = 4_000;

/// Scratch/arithmetic scalar registers (x1..x9; x0 reads zero and
/// discards writes — included deliberately).
fn treg() -> impl Strategy<Value = XReg> {
    (0u8..10).prop_map(XReg::new)
}

/// Address registers a0..a3: written only by positive `li`, so memory
/// accesses stay far from the top of the address space (no wrap-around
/// panics), while odd values still exercise alignment faults.
fn areg() -> impl Strategy<Value = XReg> {
    (10u8..14).prop_map(XReg::new)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..32).prop_map(VReg::new)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..4).prop_map(FReg::new)
}

fn exec_sew() -> impl Strategy<Value = Sew> {
    prop_oneof![Just(Sew::E8), Just(Sew::E16), Just(Sew::E32)]
}

fn lmul() -> impl Strategy<Value = Lmul> {
    prop_oneof![Just(Lmul::M1), Just(Lmul::M2), Just(Lmul::M4)]
}

fn scalar_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        (treg(), -1000i64..1000).prop_map(|(rd, imm)| Instruction::Li { rd, imm }),
        (areg(), 0i64..0x4000).prop_map(|(rd, v)| Instruction::Li {
            rd,
            imm: 0x1000 + v
        }),
        (treg(), treg(), -64i32..64).prop_map(|(rd, rs1, imm)| Instruction::Addi { rd, rs1, imm }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Add { rd, rs1, rs2 }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Sub { rd, rs1, rs2 }),
        (treg(), treg(), treg()).prop_map(|(rd, rs1, rs2)| Instruction::Mul { rd, rs1, rs2 }),
        (treg(), treg(), 0u8..8).prop_map(|(rd, rs1, shamt)| Instruction::Slli { rd, rs1, shamt }),
        (treg(), treg(), 0u8..8).prop_map(|(rd, rs1, shamt)| Instruction::Srli { rd, rs1, shamt }),
        (treg(), treg()).prop_map(|(rd, rs)| Instruction::Mv { rd, rs }),
        Just(Instruction::Nop),
    ]
    .boxed()
}

fn memory_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        (treg(), areg(), 0i32..256).prop_map(|(rd, rs1, imm)| Instruction::Lw { rd, rs1, imm }),
        (treg(), areg(), 0i32..256).prop_map(|(rd, rs1, imm)| Instruction::Lwu { rd, rs1, imm }),
        (treg(), areg(), 0i32..256).prop_map(|(rd, rs1, imm)| Instruction::Ld { rd, rs1, imm }),
        (treg(), areg(), 0i32..256).prop_map(|(rs2, rs1, imm)| Instruction::Sw { rs2, rs1, imm }),
        (treg(), areg(), 0i32..256).prop_map(|(rs2, rs1, imm)| Instruction::Sd { rs2, rs1, imm }),
        (freg(), areg(), 0i32..256).prop_map(|(fd, rs1, imm)| Instruction::Flw { fd, rs1, imm }),
    ]
    .boxed()
}

fn control_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Beq {
            rs1,
            rs2,
            offset
        }),
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Bne {
            rs1,
            rs2,
            offset
        }),
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Blt {
            rs1,
            rs2,
            offset
        }),
        (treg(), treg(), -4i32..8).prop_map(|(rs1, rs2, offset)| Instruction::Bge {
            rs1,
            rs2,
            offset
        }),
        (treg(), 1i32..6).prop_map(|(rd, offset)| Instruction::Jal { rd, offset }),
    ]
    .boxed()
}

fn vector_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        // Mostly-legal vsetvli, with the occasional e64 for fault parity.
        (
            treg(),
            prop_oneof![Just(XReg::ZERO), treg()],
            exec_sew(),
            lmul()
        )
            .prop_map(|(rd, rs1, sew, lmul)| Instruction::Vsetvli { rd, rs1, sew, lmul }),
        (treg(), lmul()).prop_map(|(rd, lmul)| Instruction::Vsetvli {
            rd,
            rs1: XReg::ZERO,
            sew: Sew::E64,
            lmul
        }),
        (vreg(), areg()).prop_map(|(vd, rs1)| Instruction::Vle8 { vd, rs1 }),
        (vreg(), areg()).prop_map(|(vd, rs1)| Instruction::Vle16 { vd, rs1 }),
        (vreg(), areg()).prop_map(|(vd, rs1)| Instruction::Vle32 { vd, rs1 }),
        (vreg(), areg()).prop_map(|(vs3, rs1)| Instruction::Vse8 { vs3, rs1 }),
        (vreg(), areg()).prop_map(|(vs3, rs1)| Instruction::Vse16 { vs3, rs1 }),
        (vreg(), areg()).prop_map(|(vs3, rs1)| Instruction::Vse32 { vs3, rs1 }),
        (vreg(), vreg(), treg()).prop_map(|(vd, vs2, rs)| Instruction::VindexmacVx { vd, vs2, rs }),
        (vreg(), vreg(), vreg(), 0u8..20)
            .prop_map(|(vd, vs2, vs1, slot)| { Instruction::VindexmacVvi { vd, vs2, vs1, slot } }),
    ]
    .boxed()
}

/// Instructions whose µop is the oracle fallback — the cold tail must
/// interleave with the hot µops without divergence.
fn cold_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VaddVv { vd, vs2, vs1 }),
        (vreg(), vreg(), treg()).prop_map(|(vd, vs2, rs1)| Instruction::VmulVx { vd, vs2, rs1 }),
        (vreg(), treg(), vreg()).prop_map(|(vd, rs1, vs2)| Instruction::VmaccVx { vd, rs1, vs2 }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VfaddVv { vd, vs2, vs1 }),
        (vreg(), freg(), vreg()).prop_map(|(vd, fs1, vs2)| Instruction::VfmaccVf { vd, fs1, vs2 }),
        (vreg(), vreg()).prop_map(|(vd, vs1)| Instruction::VmvVv { vd, vs1 }),
        (vreg(), treg()).prop_map(|(vd, rs1)| Instruction::VmvVx { vd, rs1 }),
        (treg(), vreg()).prop_map(|(rd, vs2)| Instruction::VmvXs { rd, vs2 }),
        (vreg(), treg()).prop_map(|(vd, rs1)| Instruction::VmvSx { vd, rs1 }),
        (freg(), vreg()).prop_map(|(fd, vs2)| Instruction::VfmvFs { fd, vs2 }),
        (vreg(), vreg(), treg()).prop_map(|(vd, vs2, rs1)| Instruction::Vslide1downVx {
            vd,
            vs2,
            rs1
        }),
        (vreg(), vreg(), 0u8..8).prop_map(|(vd, vs2, imm)| Instruction::VslidedownVi {
            vd,
            vs2,
            imm
        }),
    ]
    .boxed()
}

fn any_instr() -> BoxedStrategy<Instruction> {
    prop_oneof![
        scalar_instr(),
        memory_instr(),
        control_instr(),
        vector_instr(),
        cold_instr(),
    ]
    .boxed()
}

/// A random program: address registers seeded, a legal initial
/// `vsetvli`, then a random body and a final `ebreak`. Faulting bodies
/// are expected and compared fault-for-fault.
fn program() -> impl Strategy<Value = Program> {
    (
        exec_sew(),
        lmul(),
        proptest::collection::vec(any_instr(), 0..40),
    )
        .prop_map(|(sew, lmul, body)| {
            let mut b = ProgramBuilder::new();
            b.li(XReg::new(10), 0x1000);
            b.li(XReg::new(11), 0x2000);
            b.li(XReg::new(12), 0x3004);
            b.li(XReg::new(13), 0x4000);
            b.push(Instruction::Vsetvli {
                rd: XReg::new(5),
                rs1: XReg::ZERO,
                sew,
                lmul,
            });
            for i in body {
                b.push(i);
            }
            b.halt();
            b.build()
        })
}

/// A simulator with deterministically patterned memory and VRF, so
/// loads, stores and indirect MACs touch interesting data.
fn warmed_sim() -> Simulator {
    let mut sim = Simulator::new(SimConfig::table_i());
    sim.set_max_instructions(MAX_DYN);
    for i in 0..0x4000u64 {
        sim.memory_mut()
            .write_u8(0x1000 + i, (i as u8).wrapping_mul(31).wrapping_add(11));
    }
    for r in 0..32u8 {
        let reg = VReg::new(r);
        for lane in 0..16 {
            sim.state_mut().set_v_lane(
                reg,
                lane,
                Sew::E32,
                (r as u32)
                    .wrapping_mul(0x0101_0013)
                    .wrapping_add(lane as u32 * 0x2F),
            );
        }
    }
    sim
}

/// Asserts every architectural-state component matches between the two
/// execution paths.
fn assert_states_match(engine: &Simulator, oracle: &Simulator) -> Result<(), TestCaseError> {
    for r in 0..32u8 {
        prop_assert_eq!(
            engine.state().x(XReg::new(r)),
            oracle.state().x(XReg::new(r)),
            "x{} diverged",
            r
        );
        prop_assert_eq!(
            engine.state().f_bits(FReg::new(r)),
            oracle.state().f_bits(FReg::new(r)),
            "f{} diverged",
            r
        );
        prop_assert_eq!(
            engine.state().v_bytes(VReg::new(r)),
            oracle.state().v_bytes(VReg::new(r)),
            "v{} diverged",
            r
        );
    }
    prop_assert_eq!(engine.state().vl(), oracle.state().vl());
    prop_assert_eq!(engine.state().vtype(), oracle.state().vtype());
    prop_assert_eq!(engine.state().pc, oracle.state().pc);
    prop_assert_eq!(engine.state().halted, oracle.state().halted);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Functional path: the decoded engine (NullObserver — no events)
    /// and the stepwise oracle agree on the outcome, the fault (if
    /// any), and every architectural-state component.
    #[test]
    fn decoded_engine_matches_step_oracle_functionally(p in program()) {
        let mut engine = warmed_sim();
        let mut oracle = warmed_sim();
        let decoded = DecodedProgram::decode(&p);
        let fast = engine.run_decoded_with(&decoded, &mut NullObserver);
        let slow = oracle.run_stepwise(&p, &mut NullObserver);
        if fast != slow {
            // The shim has no shrinking: print the full program so a
            // divergence is immediately reproducible by hand.
            eprintln!("diverging program:\n{p}\nengine: {fast:?}\noracle: {slow:?}");
        }
        prop_assert_eq!(&fast, &slow, "outcome diverged");
        assert_states_match(&engine, &oracle)?;
        // Memory writes agree wherever the program could have stored.
        for addr in (0x1000u64..0x5000).step_by(257) {
            prop_assert_eq!(
                engine.memory().read_u8(addr),
                oracle.memory().read_u8(addr),
                "memory diverged at {:#x}",
                addr
            );
        }
    }

    /// Timed path: identical `RunReport`s (cycles, counts, traffic,
    /// stalls) — the event streams the two paths feed the timing model
    /// must be indistinguishable.
    #[test]
    fn decoded_engine_matches_step_oracle_reports(p in program()) {
        let mut engine = warmed_sim();
        let mut oracle = warmed_sim();
        let fast = engine.run(&p);
        let slow = oracle.run_stepwise_timed(&p);
        match (fast, slow) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "reports diverged"),
            (a, b) => prop_assert_eq!(a, b, "faults diverged"),
        }
        assert_states_match(&engine, &oracle)?;
    }

    /// The instruction-limit boundary is identical in both paths for
    /// arbitrary (small) limits — including the ebreak-exactly-at-the-
    /// limit case the off-by-one fix pinned.
    #[test]
    fn instruction_limit_boundary_parity(p in program(), limit in 1u64..40) {
        let mut engine = warmed_sim();
        engine.set_max_instructions(limit);
        let mut oracle = warmed_sim();
        oracle.set_max_instructions(limit);
        let fast = engine.run_functional(&p);
        let slow = oracle.run_stepwise(&p, &mut NullObserver);
        prop_assert_eq!(fast, slow, "limit handling diverged at {}", limit);
        assert_states_match(&engine, &oracle)?;
    }
}
