//! Cross-backend timing invariants: for random valid programs, every
//! timing backend (in-order scoreboard, pipelined, out-of-order) must
//! satisfy the [`indexmac_vpu::TimingModel`] contract event-by-event,
//! and the backends must agree on everything that is *not* timing —
//! instret, per-class counts, memory traffic.
//!
//! These are the properties the `TimingModel` trait documents:
//!
//! * per event: `completion >= start >= issue_at`;
//! * `total_cycles()` is monotone non-decreasing across events;
//! * `engine_busy_cycles() <= total_cycles()`;
//! * instret and [`indexmac_vpu::ClassCounts`] are backend-invariant;
//! * `counts().total()` equals the number of events observed.

mod common;

use common::{instr_strategy, program_from};
use indexmac_vpu::{
    AnyTimingModel, DecodedProgram, ExecEvent, Observer, SimConfig, Simulator, TimingKind,
    TimingModel,
};
use proptest::prelude::*;

/// An [`Observer`] that checks the per-event trait invariants as the
/// stream flows through, then exposes the finished model.
struct InvariantObserver {
    model: AnyTimingModel,
    events: u64,
    last_total: u64,
}

impl InvariantObserver {
    fn new(cfg: SimConfig) -> Self {
        Self {
            model: AnyTimingModel::new(cfg),
            events: 0,
            last_total: 0,
        }
    }
}

impl Observer for InvariantObserver {
    fn observe(&mut self, ev: &ExecEvent) {
        let kind = self.model.kind();
        let t = self.model.observe(ev);
        assert!(
            t.start >= t.issue_at,
            "{kind}: event {}: start {} < issue_at {}",
            self.events,
            t.start,
            t.issue_at
        );
        assert!(
            t.completion >= t.start,
            "{kind}: event {}: completion {} < start {}",
            self.events,
            t.completion,
            t.start
        );
        let total = self.model.total_cycles();
        assert!(
            total >= self.last_total,
            "{kind}: event {}: total_cycles went backwards ({} -> {})",
            self.events,
            self.last_total,
            total
        );
        self.last_total = total;
        self.events += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every backend satisfies the per-event and whole-run trait
    /// invariants on random programs, and the backend-invariant
    /// quantities agree bit-for-bit across all three.
    #[test]
    fn backends_satisfy_timing_invariants(
        instrs in prop::collection::vec(instr_strategy(), 1..160),
    ) {
        let program = DecodedProgram::decode(&program_from(&instrs));
        let mut runs = Vec::new();
        for kind in TimingKind::ALL {
            let cfg = SimConfig::table_i().with_timing(kind);
            let mut sim = Simulator::new(cfg);
            let mut obs = InvariantObserver::new(cfg);
            let instret = sim
                .run_decoded_with(&program, &mut obs)
                .expect("generated programs are valid");
            let counts = obs.model.counts();
            prop_assert_eq!(
                counts.total(),
                obs.events,
                "{}: counts.total() != events observed",
                kind
            );
            prop_assert_eq!(counts.total(), instret, "{}: counts.total() != instret", kind);
            prop_assert!(
                obs.model.engine_busy_cycles() <= obs.model.total_cycles(),
                "{}: engine busy {} > total {}",
                kind,
                obs.model.engine_busy_cycles(),
                obs.model.total_cycles()
            );
            runs.push((kind, instret, obs));
        }
        let (_, base_instret, base) = &runs[0];
        for (kind, instret, obs) in &runs {
            prop_assert_eq!(instret, base_instret, "{}: instret differs", kind);
            prop_assert_eq!(
                obs.model.counts(),
                base.model.counts(),
                "{}: class counts differ",
                kind
            );
            prop_assert_eq!(
                obs.model.mem_stats(),
                base.model.mem_stats(),
                "{}: memory traffic differs",
                kind
            );
        }
    }
}
