//! Element-type abstraction for the multi-precision datapath.
//!
//! The paper evaluates fp32 GEMMs, but the structured-sparsity payoff is
//! largest for quantized inference: at 8-bit elements every vector
//! register holds 4× more elements, so the fixed-shape kernels cover a
//! column tile in 4× fewer instructions. [`ElemType`] names the three
//! precisions the datapath supports end to end:
//!
//! * [`ElemType::F32`] — the paper's configuration (32-bit IEEE floats,
//!   `vfmacc`-style accumulation, tolerance-based verification);
//! * [`ElemType::I16`] / [`ElemType::I8`] — quantized integer paths with
//!   **widening** MACs (i16×i16 and i8×i8 products accumulated into
//!   32-bit lanes) and a bit-exact i32 reference product.

use std::fmt;

/// The element precision of a GEMM's A and B operands.
///
/// The accumulator (C) is always 32 bits wide: `f32` for the float path
/// and `i32` for both integer paths (the widening-MAC destination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ElemType {
    /// 32-bit IEEE-754 floats (SEW = e32), the paper's configuration.
    #[default]
    F32,
    /// 16-bit signed integers (SEW = e16), widening i16×i16 → i32 MACs.
    I16,
    /// 8-bit signed integers (SEW = e8), widening i8×i8 → i32 MACs.
    I8,
}

impl ElemType {
    /// Every supported precision, widest first.
    pub const ALL: [ElemType; 3] = [ElemType::F32, ElemType::I16, ElemType::I8];

    /// Element width in bits (the RVV SEW the kernels select).
    pub fn bits(self) -> usize {
        match self {
            ElemType::F32 => 32,
            ElemType::I16 => 16,
            ElemType::I8 => 8,
        }
    }

    /// Element width in bytes (operand-array packing).
    pub fn bytes(self) -> usize {
        self.bits() / 8
    }

    /// Whether this is a quantized integer precision (exact i32
    /// verification applies instead of the float tolerance).
    pub fn is_int(self) -> bool {
        !matches!(self, ElemType::F32)
    }

    /// Lanes-per-register widening factor of the accumulator relative to
    /// the operand elements: 32 / bits (1 for f32, 2 for i16, 4 for i8).
    pub fn widen(self) -> usize {
        32 / self.bits()
    }

    /// Maps a SEW bit-width (8, 16 or 32) to its precision.
    pub fn from_sew_bits(bits: usize) -> Option<Self> {
        match bits {
            8 => Some(ElemType::I8),
            16 => Some(ElemType::I16),
            32 => Some(ElemType::F32),
            _ => None,
        }
    }

    /// The inclusive magnitude bound of representable operand values
    /// (`i8`/`i16` ranges; `f32` has none and reports `None`).
    pub fn int_range(self) -> Option<(i32, i32)> {
        match self {
            ElemType::F32 => None,
            ElemType::I16 => Some((i16::MIN as i32, i16::MAX as i32)),
            ElemType::I8 => Some((i8::MIN as i32, i8::MAX as i32)),
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemType::F32 => write!(f, "f32"),
            ElemType::I16 => write!(f, "i16"),
            ElemType::I8 => write!(f, "i8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_widening() {
        assert_eq!(ElemType::F32.bits(), 32);
        assert_eq!(ElemType::I16.bytes(), 2);
        assert_eq!(ElemType::I8.bytes(), 1);
        assert_eq!(ElemType::F32.widen(), 1);
        assert_eq!(ElemType::I16.widen(), 2);
        assert_eq!(ElemType::I8.widen(), 4);
    }

    #[test]
    fn sew_bits_roundtrip() {
        for e in ElemType::ALL {
            assert_eq!(ElemType::from_sew_bits(e.bits()), Some(e));
        }
        assert_eq!(ElemType::from_sew_bits(64), None);
        assert_eq!(ElemType::from_sew_bits(0), None);
    }

    #[test]
    fn int_classification() {
        assert!(!ElemType::F32.is_int());
        assert!(ElemType::I16.is_int());
        assert!(ElemType::I8.is_int());
        assert_eq!(ElemType::I8.int_range(), Some((-128, 127)));
        assert_eq!(ElemType::I16.int_range(), Some((-32768, 32767)));
        assert_eq!(ElemType::F32.int_range(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ElemType::F32.to_string(), "f32");
        assert_eq!(ElemType::I16.to_string(), "i16");
        assert_eq!(ElemType::I8.to_string(), "i8");
        assert_eq!(ElemType::default(), ElemType::F32);
    }
}
