//! `N:M` structured-sparsity templates.

use crate::error::SparseError;
use std::fmt;

/// An `N:M` structured-sparsity pattern: every aligned block of `M`
/// consecutive elements within a row contains at most `N` non-zeros.
///
/// The paper evaluates [`NmPattern::P1_4`] (1:4) and [`NmPattern::P2_4`]
/// (2:4) and mentions 1:2 as a commonly supported template.
///
/// # Example
///
/// ```
/// use indexmac_sparse::NmPattern;
///
/// let p = NmPattern::new(2, 4)?;
/// assert_eq!(p.density(), 0.5);
/// assert_eq!(p.blocks_for(10), 3); // ceil(10 / 4)
/// # Ok::<(), indexmac_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NmPattern {
    n: usize,
    m: usize,
}

impl NmPattern {
    /// The 1:2 pattern (50 % density, block size 2).
    pub const P1_2: NmPattern = NmPattern { n: 1, m: 2 };
    /// The 1:4 pattern (25 % density, block size 4) — paper Fig. 4(a).
    pub const P1_4: NmPattern = NmPattern { n: 1, m: 4 };
    /// The 2:4 pattern (50 % density, block size 4) — paper Fig. 4(b).
    pub const P2_4: NmPattern = NmPattern { n: 2, m: 4 };

    /// Every preset pattern, in the order the storage figure sweeps them
    /// (1:2, 1:4, 2:4). The canonical list for exhaustive tests and
    /// sweeps — update it when adding a preset.
    pub const ALL: [NmPattern; 3] = [NmPattern::P1_2, NmPattern::P1_4, NmPattern::P2_4];

    /// The two patterns the paper's evaluation sections sweep
    /// (Fig. 4–6 run 1:4 and 2:4). The default axis for benches, the
    /// CLI and the sweep runner.
    pub const EVALUATED: [NmPattern; 2] = [NmPattern::P1_4, NmPattern::P2_4];

    /// Creates a pattern allowing up to `n` non-zeros per `m`-element block.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPattern`] unless `0 < n <= m`.
    pub fn new(n: usize, m: usize) -> Result<Self, SparseError> {
        if n == 0 || m == 0 || n > m {
            return Err(SparseError::InvalidPattern { n, m });
        }
        Ok(Self { n, m })
    }

    /// Maximum non-zeros per block (`N`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block size (`M`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Maximum fraction of non-zero elements, `N / M`.
    pub fn density(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Minimum fraction of zero elements, `1 - N / M`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Number of blocks needed to cover a row of `cols` elements
    /// (`ceil(cols / M)`); the trailing block is implicitly zero-padded.
    pub fn blocks_for(&self, cols: usize) -> usize {
        cols.div_ceil(self.m)
    }

    /// Number of value slots stored for a row of `cols` elements in the
    /// fixed-shape hardware format: `blocks_for(cols) * N`.
    pub fn slots_for(&self, cols: usize) -> usize {
        self.blocks_for(cols) * self.n
    }

    /// The block index containing column `col`.
    pub fn block_of(&self, col: usize) -> usize {
        col / self.m
    }

    /// The in-block offset of column `col`, in `[0, M)`.
    pub fn offset_of(&self, col: usize) -> usize {
        col % self.m
    }

    /// The paper's bound on how many rows of B can usefully be pre-loaded
    /// per vector register file: `M * vl / N` (Section III). `vl` is the
    /// hardware vector length in elements.
    pub fn max_preload_rows(&self, vl: usize) -> usize {
        self.m * vl / self.n
    }
}

impl fmt::Display for NmPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(NmPattern::new(0, 4).is_err());
        assert!(NmPattern::new(4, 0).is_err());
        assert!(NmPattern::new(5, 4).is_err());
        assert!(NmPattern::new(4, 4).is_ok());
        assert!(NmPattern::new(1, 1).is_ok());
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(NmPattern::P1_4.density(), 0.25);
        assert_eq!(NmPattern::P2_4.density(), 0.5);
        assert_eq!(NmPattern::P1_2.density(), 0.5);
        assert_eq!(NmPattern::P1_4.to_string(), "1:4");
        assert_eq!(NmPattern::P2_4.to_string(), "2:4");
    }

    #[test]
    fn block_arithmetic() {
        let p = NmPattern::P2_4;
        assert_eq!(p.blocks_for(16), 4);
        assert_eq!(p.blocks_for(17), 5);
        assert_eq!(p.blocks_for(1), 1);
        assert_eq!(p.slots_for(16), 8);
        assert_eq!(p.block_of(7), 1);
        assert_eq!(p.offset_of(7), 3);
    }

    #[test]
    fn max_preload_rows_matches_paper_formula() {
        // VL = 16 elements (512-bit / 32-bit), 1:4 -> 4*16/1 = 64 rows;
        // 2:4 -> 4*16/2 = 32 rows.
        assert_eq!(NmPattern::P1_4.max_preload_rows(16), 64);
        assert_eq!(NmPattern::P2_4.max_preload_rows(16), 32);
        assert_eq!(NmPattern::P1_2.max_preload_rows(16), 32);
    }

    #[test]
    fn preset_lists_are_exhaustive_and_consistent() {
        assert_eq!(NmPattern::ALL.len(), 3);
        assert!(NmPattern::ALL.contains(&NmPattern::P1_2));
        assert!(NmPattern::ALL.contains(&NmPattern::P1_4));
        assert!(NmPattern::ALL.contains(&NmPattern::P2_4));
        // EVALUATED is a subset of ALL.
        assert!(NmPattern::EVALUATED
            .iter()
            .all(|p| NmPattern::ALL.contains(p)));
        // No duplicates.
        for (i, a) in NmPattern::ALL.iter().enumerate() {
            for b in NmPattern::ALL.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn all_presets_roundtrip_through_new_and_display() {
        for p in NmPattern::ALL {
            // `new` with the same (n, m) reconstructs the preset.
            assert_eq!(NmPattern::new(p.n(), p.m()).unwrap(), p);
            // Display renders exactly "N:M", which parses back.
            assert_eq!(p.to_string(), format!("{}:{}", p.n(), p.m()));
            let (n, m) = p
                .to_string()
                .split_once(':')
                .map(|(a, b)| (a.parse::<usize>().unwrap(), b.parse::<usize>().unwrap()))
                .unwrap();
            assert_eq!(NmPattern::new(n, m).unwrap(), p);
            // Derived quantities stay self-consistent.
            assert!(p.density() > 0.0 && p.density() <= 1.0);
            assert_eq!(p.slots_for(p.m()), p.n());
        }
    }

    #[test]
    fn ordering_and_hash_derives_work() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NmPattern::P1_4);
        set.insert(NmPattern::P1_4);
        set.insert(NmPattern::P2_4);
        assert_eq!(set.len(), 2);
    }
}
