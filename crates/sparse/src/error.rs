//! Error type shared by the sparse-format APIs.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or converting sparse formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An `N:M` pattern with `N == 0`, `M == 0` or `N > M` was requested.
    InvalidPattern {
        /// Requested maximum non-zeros per block.
        n: usize,
        /// Requested block size.
        m: usize,
    },
    /// A matrix dimension was zero.
    EmptyDimension {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
    },
    /// The flat data buffer does not match `rows * cols`.
    DataLengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Left operand shape.
        left: (usize, usize),
        /// Right operand shape.
        right: (usize, usize),
    },
    /// A dense matrix violates the N:M template it was claimed to obey.
    PatternViolation {
        /// Row of the offending block.
        row: usize,
        /// First column of the offending block.
        block_start: usize,
        /// Number of non-zeros found in the block.
        found: usize,
        /// Maximum non-zeros allowed by the pattern.
        allowed: usize,
    },
    /// An in-block column index was out of range for the block size.
    IndexOutOfBlock {
        /// The offending index.
        index: usize,
        /// The block size `M`.
        block: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SparseError::InvalidPattern { n, m } => {
                write!(f, "invalid N:M pattern {n}:{m} (need 0 < n <= m)")
            }
            SparseError::EmptyDimension { rows, cols } => {
                write!(f, "matrix dimensions must be non-zero, got {rows}x{cols}")
            }
            SparseError::DataLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match rows*cols = {expected}"
                )
            }
            SparseError::DimensionMismatch { left, right } => write!(
                f,
                "incompatible dimensions {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::PatternViolation {
                row,
                block_start,
                found,
                allowed,
            } => write!(
                f,
                "row {row} block starting at column {block_start} has {found} non-zeros, \
                 pattern allows {allowed}"
            ),
            SparseError::IndexOutOfBlock { index, block } => {
                write!(
                    f,
                    "in-block index {index} out of range for block size {block}"
                )
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let variants = [
            SparseError::InvalidPattern { n: 3, m: 2 },
            SparseError::EmptyDimension { rows: 0, cols: 4 },
            SparseError::DataLengthMismatch {
                expected: 12,
                actual: 10,
            },
            SparseError::DimensionMismatch {
                left: (2, 3),
                right: (4, 5),
            },
            SparseError::PatternViolation {
                row: 1,
                block_start: 4,
                found: 3,
                allowed: 2,
            },
            SparseError::IndexOutOfBlock { index: 9, block: 4 },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
