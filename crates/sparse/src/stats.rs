//! Sparsity statistics helpers used by reports and experiments.

use crate::matrix::DenseMatrix;
use crate::pattern::NmPattern;
use crate::structured::StructuredSparseMatrix;

/// Summary statistics of a matrix's sparsity structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityStats {
    /// Total elements of the logical dense matrix.
    pub elements: usize,
    /// Elements equal to exactly zero.
    pub zeros: usize,
    /// Stored non-zero values.
    pub nnz: usize,
    /// Fraction of zeros, `zeros / elements`.
    pub sparsity: f64,
    /// Slots in the fixed-shape format (structured matrices only; equals
    /// `nnz` for dense input).
    pub slots: usize,
    /// Fraction of format slots that are padding, `1 - nnz / slots`.
    pub padding_fraction: f64,
}

impl SparsityStats {
    /// Statistics of a dense matrix.
    pub fn of_dense(m: &DenseMatrix) -> Self {
        let elements = m.rows() * m.cols();
        let zeros = m.zero_count();
        let nnz = elements - zeros;
        Self {
            elements,
            zeros,
            nnz,
            sparsity: zeros as f64 / elements as f64,
            slots: nnz,
            padding_fraction: 0.0,
        }
    }

    /// Statistics of a structured-sparse matrix.
    pub fn of_structured(m: &StructuredSparseMatrix) -> Self {
        let elements = m.rows() * m.cols();
        let nnz = m.nnz();
        let zeros = elements - nnz;
        let slots = m.total_slots();
        Self {
            elements,
            zeros,
            nnz,
            sparsity: zeros as f64 / elements as f64,
            slots,
            padding_fraction: if slots == 0 {
                0.0
            } else {
                1.0 - nnz as f64 / slots as f64
            },
        }
    }
}

impl std::fmt::Display for SparsityStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} elements, {} nnz ({:.1}% sparse), {} slots ({:.1}% padding)",
            self.elements,
            self.nnz,
            self.sparsity * 100.0,
            self.slots,
            self.padding_fraction * 100.0
        )
    }
}

/// Effective MACs per output element for a structured matrix: the number
/// of multiply-accumulates the fixed-shape kernels execute per column of
/// the product, `slots_per_row` summed over rows.
pub fn macs_per_output_column(m: &StructuredSparseMatrix) -> usize {
    m.rows() * m.slots_per_row()
}

/// The dense-equivalent MAC count for the same product shape.
pub fn dense_macs_per_output_column(rows: usize, inner: usize) -> usize {
    rows * inner
}

/// MAC reduction factor of `pattern` relative to dense execution
/// (`M / N`), the paper's headline motivation for structured pruning.
pub fn mac_reduction(pattern: NmPattern) -> f64 {
    pattern.m() as f64 / pattern.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune;

    #[test]
    fn dense_stats() {
        let mut d = DenseMatrix::zeros(4, 4);
        d.set(0, 0, 1.0);
        d.set(1, 1, 2.0);
        let s = SparsityStats::of_dense(&d);
        assert_eq!(s.elements, 16);
        assert_eq!(s.nnz, 2);
        assert_eq!(s.sparsity, 14.0 / 16.0);
        assert_eq!(s.padding_fraction, 0.0);
    }

    #[test]
    fn structured_stats_count_padding() {
        // Full 2:4 blocks: no padding.
        let full = prune::random_structured(4, 16, NmPattern::P2_4, 1);
        let s = SparsityStats::of_structured(&full);
        assert_eq!(s.padding_fraction, 0.0);
        assert_eq!(s.slots, 4 * 8);

        // A matrix with an empty block: padding shows up.
        let d = DenseMatrix::try_new(1, 8, vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let sp = StructuredSparseMatrix::from_dense(&d, NmPattern::P2_4).unwrap();
        let s = SparsityStats::of_structured(&sp);
        assert_eq!(s.nnz, 1);
        assert_eq!(s.slots, 4);
        assert_eq!(s.padding_fraction, 0.75);
    }

    #[test]
    fn mac_accounting() {
        assert_eq!(mac_reduction(NmPattern::P1_4), 4.0);
        assert_eq!(mac_reduction(NmPattern::P2_4), 2.0);
        let m = prune::random_structured(8, 32, NmPattern::P1_4, 2);
        assert_eq!(macs_per_output_column(&m), 8 * 8);
        assert_eq!(dense_macs_per_output_column(8, 32), 256);
    }

    #[test]
    fn display_contains_percentages() {
        let d = DenseMatrix::zeros(2, 2);
        let s = SparsityStats::of_dense(&d);
        assert!(s.to_string().contains('%'));
    }
}
