//! Seeded random data generators.
//!
//! All randomness in the repository flows through these helpers so that
//! every experiment is reproducible from a single `u64` seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A vector of `len` uniform samples in `[-1, 1)`.
pub fn uniform_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(-1.0_f32..1.0)).collect()
}

/// A vector of `len` uniform samples in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_vec_in(len: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(lo..hi)).collect()
}

/// A vector where each element is zero with probability `p_zero` and a
/// non-zero uniform sample in `[-1, 1)` otherwise.
///
/// Non-zero draws are re-sampled away from exact zero so the resulting
/// sparsity is exactly driven by `p_zero`.
///
/// # Panics
///
/// Panics if `p_zero` is outside `[0, 1]`.
pub fn sparse_uniform_vec(len: usize, p_zero: f64, seed: u64) -> Vec<f32> {
    assert!(
        (0.0..=1.0).contains(&p_zero),
        "p_zero must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.random_range(0.0..1.0) < p_zero {
                0.0
            } else {
                loop {
                    let v: f32 = rng.random_range(-1.0..1.0);
                    if v != 0.0 {
                        break v;
                    }
                }
            }
        })
        .collect()
}

/// `count` distinct indices drawn from `0..bound`, sorted ascending.
///
/// # Panics
///
/// Panics if `count > bound`.
pub fn distinct_indices(count: usize, bound: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(
        count <= bound,
        "cannot draw {count} distinct values from 0..{bound}"
    );
    // Partial Fisher-Yates over a scratch identity permutation.
    let mut pool: Vec<usize> = (0..bound).collect();
    for i in 0..count {
        let j = rng.random_range(i..bound);
        pool.swap(i, j);
    }
    let mut picked: Vec<usize> = pool[..count].to_vec();
    picked.sort_unstable();
    picked
}

/// Creates a seeded RNG; single place to choose the generator family.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_vec_deterministic_and_in_range() {
        let a = uniform_vec(1000, 7);
        let b = uniform_vec(1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn sparse_vec_hits_target_sparsity() {
        let v = sparse_uniform_vec(10_000, 0.75, 3);
        let zeros = v.iter().filter(|x| **x == 0.0).count();
        let frac = zeros as f64 / v.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "got sparsity {frac}");
    }

    #[test]
    fn sparse_vec_extremes() {
        assert!(sparse_uniform_vec(100, 1.0, 1).iter().all(|v| *v == 0.0));
        assert!(sparse_uniform_vec(100, 0.0, 1).iter().all(|v| *v != 0.0));
    }

    #[test]
    fn distinct_indices_are_distinct_and_sorted() {
        let mut r = rng(11);
        for _ in 0..50 {
            let v = distinct_indices(3, 8, &mut r);
            assert_eq!(v.len(), 3);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert!(v.iter().all(|i| *i < 8));
        }
    }

    #[test]
    fn distinct_indices_full_range() {
        let mut r = rng(13);
        let v = distinct_indices(4, 4, &mut r);
        assert_eq!(v, vec![0, 1, 2, 3]);
    }
}
