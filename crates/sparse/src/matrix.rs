//! Row-major dense `f32` matrix used as the golden model and the dense
//! operand `B` of the sparse x dense product.

use crate::error::SparseError;
use crate::gen;

/// A row-major dense matrix of `f32` elements.
///
/// This is deliberately a small, concrete type rather than a generic
/// n-dimensional array: the simulator operates on 32-bit elements
/// (Table I of the paper) and everything in the evaluation is 2-D.
///
/// # Example
///
/// ```
/// use indexmac_sparse::DenseMatrix;
///
/// let a = DenseMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(a.get(1, 2), 5.0);
/// assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; use [`DenseMatrix::try_new`]
    /// for a fallible constructor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::try_new(rows, cols, vec![0.0; rows * cols]).expect("non-zero dimensions required")
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::EmptyDimension`] if a dimension is zero and
    /// [`SparseError::DataLengthMismatch`] if `data.len() != rows * cols`.
    pub fn try_new(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, SparseError> {
        if rows == 0 || cols == 0 {
            return Err(SparseError::EmptyDimension { rows, cols });
        }
        if data.len() != rows * cols {
            return Err(SparseError::DataLengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix whose element `(r, c)` is `f(r, c)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::try_new(rows, cols, data).expect("non-zero dimensions required")
    }

    /// Creates a matrix with seeded uniform random elements in `[-1, 1)`.
    ///
    /// Deterministic for a given `(rows, cols, seed)` triple, which keeps
    /// every experiment in the repository reproducible.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let data = gen::uniform_vec(rows * cols, seed);
        Self::try_new(rows, cols, data).expect("non-zero dimensions required")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Number of elements equal to exactly `0.0`.
    pub fn zero_count(&self) -> usize {
        self.data.iter().filter(|v| **v == 0.0).count()
    }

    /// Fraction of elements equal to exactly `0.0`, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        self.zero_count() as f64 / self.data.len() as f64
    }

    /// Reference (triple-loop, `f32` accumulation) matrix product
    /// `self * rhs`, in the same row-wise order as the simulated kernels
    /// so floating-point rounding matches bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
        if self.cols != rhs.rows {
            return Err(SparseError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = out.get(i, j) + a * rhs.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute element-wise difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max)
    }

    /// Whether every element differs from `other` by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }

    /// Returns a copy padded with zero rows/columns up to
    /// `(new_rows, new_cols)`.
    ///
    /// # Panics
    ///
    /// Panics if a new dimension is smaller than the current one.
    pub fn zero_pad(&self, new_rows: usize, new_cols: usize) -> Self {
        assert!(
            new_rows >= self.rows && new_cols >= self.cols,
            "zero_pad cannot shrink a matrix"
        );
        Self::from_fn(new_rows, new_cols, |r, c| {
            if r < self.rows && c < self.cols {
                self.get(r, c)
            } else {
                0.0
            }
        })
    }
}

impl std::fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            for c in 0..show_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:8.4}", self.get(r, c))?;
            }
            if show_cols < self.cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.zero_count(), 15);
        assert_eq!(m.sparsity(), 1.0);
    }

    #[test]
    fn try_new_rejects_bad_inputs() {
        assert!(matches!(
            DenseMatrix::try_new(0, 3, vec![]),
            Err(SparseError::EmptyDimension { .. })
        ));
        assert!(matches!(
            DenseMatrix::try_new(2, 2, vec![1.0; 3]),
            Err(SparseError::DataLengthMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.set(2, 3, 7.5);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.get(3, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = DenseMatrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::random(5, 9, 1);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::random(4, 4, 2);
        let eye = DenseMatrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let prod = a.matmul(&eye).unwrap();
        assert!(prod.approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_known_values() {
        let a = DenseMatrix::try_new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = DenseMatrix::try_new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(DenseMatrix::random(6, 6, 99), DenseMatrix::random(6, 6, 99));
        assert_ne!(
            DenseMatrix::random(6, 6, 99),
            DenseMatrix::random(6, 6, 100)
        );
    }

    #[test]
    fn zero_pad_preserves_content() {
        let m = DenseMatrix::random(3, 3, 5);
        let p = m.zero_pad(5, 7);
        assert_eq!(p.shape(), (5, 7));
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(p.get(r, c), m.get(r, c));
            }
        }
        assert_eq!(p.get(4, 6), 0.0);
    }

    #[test]
    fn display_truncates_large() {
        let m = DenseMatrix::zeros(20, 20);
        let s = m.to_string();
        assert!(s.contains("..."));
        assert!(s.contains("20x20"));
    }
}
