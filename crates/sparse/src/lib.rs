//! Dense matrices, N:M structured-sparsity formats and pruning utilities.
//!
//! This crate provides the data substrate of the IndexMAC reproduction:
//!
//! * [`DenseMatrix`] — a row-major `f32` matrix with a reference matmul,
//!   used both as the dense operand `B` and as the golden model every
//!   simulated kernel is checked against.
//! * [`NmPattern`] — an `N:M` structured-sparsity template (at most `N`
//!   non-zero elements in every aligned block of `M` consecutive elements
//!   of a row), e.g. the 1:4 and 2:4 patterns evaluated in the paper.
//! * [`StructuredSparseMatrix`] — the block-compressed `values` /
//!   `col_idx` representation of Fig. 1(b) of the paper: every block
//!   stores exactly `N` (value, in-block-index) slots, zero-padded, so
//!   the hardware format has a fixed shape.
//! * [`prune`] — magnitude-based pruning of a dense matrix onto an `N:M`
//!   template (the software stand-in for the paper's TensorFlow pruning).
//! * [`CsrMatrix`] — a conventional CSR format used for comparisons with
//!   unstructured sparsity.
//! * [`ElemType`] / [`quant`] — the multi-precision element abstraction:
//!   the f32 golden path plus quantized i8/i16 operands with an exact
//!   (bit-comparable) i32 reference product.
//!
//! # Example
//!
//! ```
//! use indexmac_sparse::{DenseMatrix, NmPattern, prune};
//!
//! let dense = DenseMatrix::random(8, 16, 42);
//! let pattern = NmPattern::new(2, 4).unwrap();
//! let sparse = prune::magnitude_prune(&dense, pattern);
//! assert!(sparse.obeys_pattern());
//! let back = sparse.to_dense();
//! assert_eq!(back.rows(), 8);
//! ```

#![warn(missing_docs)]

pub mod csr;
pub mod elem;
pub mod error;
pub mod gen;
pub mod matrix;
pub mod pattern;
pub mod prune;
pub mod quant;
pub mod stats;
pub mod structured;

pub use csr::CsrMatrix;
pub use elem::ElemType;
pub use error::SparseError;
pub use matrix::DenseMatrix;
pub use pattern::NmPattern;
pub use quant::IntMatrix;
pub use stats::SparsityStats;
pub use structured::{Block, StructuredSparseMatrix};
