//! Quantized (integer) operands and the **exact** i32 reference product.
//!
//! The quantized datapath stores A and B elements as `i8`/`i16` and
//! accumulates into `i32` lanes. Integer arithmetic is exact, so the
//! reference product is compared with `==` — no tolerance, and a ±1 LSB
//! kernel error is a hard failure.
//!
//! Operand values live in the same [`DenseMatrix`] /
//! [`StructuredSparseMatrix`] types as the float path, holding *exact
//! small integers* in their `f32` slots (every `i8`/`i16` is exactly
//! representable in `f32`); the memory-layout planner packs them down to
//! their element width when writing simulated memory. [`IntMatrix`] is
//! the i32 accumulator-domain result type.

use crate::elem::ElemType;
use crate::error::SparseError;
use crate::gen;
use crate::matrix::DenseMatrix;
use crate::pattern::NmPattern;
use crate::structured::StructuredSparseMatrix;

/// A row-major dense `i32` matrix: the accumulator domain of the
/// quantized kernels and their exact reference product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
}

impl IntMatrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "IntMatrix dimensions must be non-zero"
        );
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a matrix whose element `(r, c)` is `f(r, c)`.
    pub fn from_fn<F: FnMut(usize, usize) -> i32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut out = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                out.data[r * cols + c] = f(r, c);
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> i32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: i32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// The first element position where `self` and `other` differ, with
    /// both values — `None` when the matrices are identical.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn first_mismatch(&self, other: &IntMatrix) -> Option<(usize, usize, i32, i32)> {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in first_mismatch"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                let (a, b) = (self.get(r, c), other.get(r, c));
                if a != b {
                    return Some((r, c, a, b));
                }
            }
        }
        None
    }
}

/// Reads an exact-integer `f32` slot back as `i32`.
///
/// # Panics
///
/// Panics (debug) when the value is not an exact integer — that means a
/// float-path matrix leaked into the quantized pipeline.
#[inline]
pub fn slot_to_i32(v: f32) -> i32 {
    debug_assert!(
        v.fract() == 0.0,
        "non-integer value {v} in a quantized operand"
    );
    v as i32
}

/// Generates a random structured-sparse A with integer values drawn from
/// the full `elem` range (excluding 0, like the float generator).
/// Every full block holds exactly `N` non-zeros at distinct positions.
///
/// Deterministic for a given `(rows, cols, pattern, seed, elem)`.
///
/// # Panics
///
/// Panics if `elem` is [`ElemType::F32`] — use
/// [`crate::prune::random_structured`] for the float path.
pub fn random_structured_int(
    rows: usize,
    cols: usize,
    pattern: NmPattern,
    seed: u64,
    elem: ElemType,
) -> StructuredSparseMatrix {
    let (lo, hi) = elem
        .int_range()
        .expect("quantized generator needs an integer precision");
    let mut rng = gen::rng(seed);
    let m = pattern.m();
    let n = pattern.n();
    let mut dense = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        let mut block_start = 0;
        while block_start < cols {
            let width = (cols - block_start).min(m);
            let take = n.min(width);
            for off in gen::distinct_indices(take, width, &mut rng) {
                let v = loop {
                    let v = rand::RngExt::random_range(&mut rng, lo..hi + 1);
                    if v != 0 {
                        break v;
                    }
                };
                dense.set(r, block_start + off, v as f32);
            }
            block_start += m;
        }
    }
    StructuredSparseMatrix::from_dense(&dense, pattern)
        .expect("construction satisfies the pattern by design")
}

/// Generates a random dense B with integer values in the full `elem`
/// range. Deterministic for a given `(rows, cols, seed, elem)`.
///
/// # Panics
///
/// Panics if `elem` is [`ElemType::F32`].
pub fn random_dense_int(rows: usize, cols: usize, seed: u64, elem: ElemType) -> DenseMatrix {
    let (lo, hi) = elem
        .int_range()
        .expect("quantized generator needs an integer precision");
    let mut rng = gen::rng(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| {
        rand::RngExt::random_range(&mut rng, lo..hi + 1) as f32
    })
}

/// Quantizes a float matrix onto the `elem` integer grid by rounding and
/// clamping — the offline step that turns trained fp32 weights into the
/// exact-integer operands the quantized kernels consume.
///
/// # Panics
///
/// Panics if `elem` is [`ElemType::F32`] (nothing to quantize to).
pub fn quantize_dense(m: &DenseMatrix, scale: f32, elem: ElemType) -> DenseMatrix {
    let (lo, hi) = elem
        .int_range()
        .expect("quantization needs an integer precision");
    DenseMatrix::from_fn(m.rows(), m.cols(), |r, c| {
        ((m.get(r, c) * scale).round().clamp(lo as f32, hi as f32)) as i32 as f32
    })
}

/// Exact reference sparse × dense product in the i32 accumulator
/// domain, walking A's slots in hardware order (block-major, fixed `N`
/// per block) with **wrapping** i32 accumulation — bit-for-bit the
/// arithmetic of the widening `vindexmac` MACs.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when
/// `a.cols() != b.rows()`.
pub fn spmm_reference_i32(
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
) -> Result<IntMatrix, SparseError> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut out = IntMatrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for slot in a.row_slots(r) {
            if slot.col >= b.rows() {
                continue; // padding slot aliasing past a ragged block
            }
            let av = slot_to_i32(slot.value);
            for j in 0..b.cols() {
                let prod = av.wrapping_mul(slot_to_i32(b.get(slot.col, j)));
                out.set(r, j, out.get(r, j).wrapping_add(prod));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_matrix_basics() {
        let mut m = IntMatrix::zeros(2, 3);
        m.set(1, 2, -7);
        assert_eq!(m.get(1, 2), -7);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice().len(), 6);
        let same = m.clone();
        assert_eq!(m.first_mismatch(&same), None);
        let mut other = m.clone();
        other.set(0, 1, 9);
        assert_eq!(m.first_mismatch(&other), Some((0, 1, 0, 9)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn int_matrix_rejects_empty() {
        let _ = IntMatrix::zeros(0, 3);
    }

    #[test]
    fn generators_stay_in_range_and_are_deterministic() {
        for elem in [ElemType::I8, ElemType::I16] {
            let (lo, hi) = elem.int_range().unwrap();
            let a = random_structured_int(5, 16, NmPattern::P2_4, 3, elem);
            assert!(a.obeys_pattern());
            assert!(a.values().iter().all(|v| {
                let i = *v as i32;
                v.fract() == 0.0 && i >= lo && i <= hi
            }));
            assert_eq!(a, random_structured_int(5, 16, NmPattern::P2_4, 3, elem));
            let b = random_dense_int(4, 6, 9, elem);
            assert!(b.as_slice().iter().all(|v| {
                let i = *v as i32;
                v.fract() == 0.0 && i >= lo && i <= hi
            }));
            assert_eq!(b, random_dense_int(4, 6, 9, elem));
        }
    }

    #[test]
    fn i8_generator_uses_negative_values() {
        let b = random_dense_int(8, 8, 1, ElemType::I8);
        assert!(b.as_slice().iter().any(|v| *v < 0.0));
        assert!(b.as_slice().iter().any(|v| *v > 0.0));
    }

    #[test]
    fn reference_matches_float_reference_on_small_values() {
        // With tiny integers the float product is exact, so the two
        // references must agree value-for-value.
        let a = random_structured_int(4, 16, NmPattern::P1_4, 7, ElemType::I8);
        let b = random_dense_int(16, 6, 8, ElemType::I8);
        let int = spmm_reference_i32(&a, &b).unwrap();
        let float = a.spmm_reference(&b).unwrap();
        for r in 0..4 {
            for c in 0..6 {
                assert_eq!(int.get(r, c) as f64, float.get(r, c) as f64, "({r},{c})");
            }
        }
    }

    #[test]
    fn reference_known_values() {
        // 1 row, 4 cols, 1:4: single nonzero 3 at column 1.
        let dense = DenseMatrix::try_new(1, 4, vec![0.0, 3.0, 0.0, 0.0]).unwrap();
        let a = StructuredSparseMatrix::from_dense(&dense, NmPattern::P1_4).unwrap();
        let b = DenseMatrix::try_new(4, 2, vec![1.0, 2.0, -5.0, 6.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let c = spmm_reference_i32(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[-15, 18]);
    }

    #[test]
    fn reference_dimension_check() {
        let a = random_structured_int(2, 8, NmPattern::P1_4, 1, ElemType::I8);
        let b = DenseMatrix::zeros(9, 2);
        assert!(spmm_reference_i32(&a, &b).is_err());
    }

    #[test]
    fn quantize_rounds_and_clamps() {
        let m = DenseMatrix::try_new(1, 4, vec![0.4, -0.6, 100.0, -100.0]).unwrap();
        let q = quantize_dense(&m, 2.0, ElemType::I8);
        assert_eq!(q.as_slice(), &[1.0, -1.0, 127.0, -128.0]);
        let q16 = quantize_dense(&m, 2.0, ElemType::I16);
        assert_eq!(q16.as_slice(), &[1.0, -1.0, 200.0, -200.0]);
    }

    #[test]
    fn wrapping_accumulation_is_exercised() {
        // Force i32 overflow: values at the i16 extremes over a long
        // reduction wrap rather than saturate, matching the hardware.
        let cols = 4096;
        let dense = DenseMatrix::from_fn(
            1,
            cols,
            |_, c| {
                if c % 4 == 0 {
                    i16::MIN as f32
                } else {
                    0.0
                }
            },
        );
        let a = StructuredSparseMatrix::from_dense(&dense, NmPattern::P1_4).unwrap();
        let b = DenseMatrix::from_fn(cols, 1, |_, _| i16::MIN as f32);
        let c = spmm_reference_i32(&a, &b).unwrap();
        let expected = (0..cols / 4).fold(0i32, |acc, _| {
            acc.wrapping_add((i16::MIN as i32).wrapping_mul(i16::MIN as i32))
        });
        assert_eq!(c.get(0, 0), expected);
    }
}
