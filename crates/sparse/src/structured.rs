//! Block-compressed `values` / `col_idx` representation of an N:M
//! structured-sparse matrix (paper Fig. 1(b)).
//!
//! The format has a *fixed shape*: every `M`-element block of a row owns
//! exactly `N` slots, each holding a value and an in-block column index.
//! Blocks with fewer than `N` non-zeros are padded with `(0.0, 0)` slots.
//! The fixed shape is what lets the hardware kernels of the paper load the
//! per-row metadata with plain unit-stride vector loads and walk it with
//! `vslide1down` without any per-row control flow.

use crate::error::SparseError;
use crate::matrix::DenseMatrix;
use crate::pattern::NmPattern;

/// One slot of the block-compressed format: a value plus the column index
/// of that value *within its block* (`0..M`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    /// Row of the owning matrix.
    pub row: usize,
    /// Block index within the row.
    pub block: usize,
    /// Slot position within the block (`0..N`).
    pub slot: usize,
    /// Column index within the block (`0..M`).
    pub in_block_idx: usize,
    /// Global column index (`block * M + in_block_idx`).
    pub col: usize,
    /// Element value (0.0 for padding slots).
    pub value: f32,
}

impl Slot {
    /// Whether this slot is format padding rather than a stored non-zero.
    pub fn is_padding(&self) -> bool {
        self.value == 0.0
    }
}

/// A borrowed view of one block: `N` values and their in-block indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block<'a> {
    /// Values of the block's slots (length `N`).
    pub values: &'a [f32],
    /// In-block column indices of the slots (length `N`).
    pub indices: &'a [u8],
}

/// An N:M structured-sparse matrix in block-compressed form.
///
/// # Example
///
/// ```
/// use indexmac_sparse::{DenseMatrix, NmPattern, StructuredSparseMatrix};
///
/// // 1:4 pattern: at most one non-zero per 4 consecutive elements.
/// let dense = DenseMatrix::try_new(
///     1,
///     8,
///     vec![0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, -2.0],
/// )?;
/// let s = StructuredSparseMatrix::from_dense(&dense, NmPattern::P1_4)?;
/// assert_eq!(s.nnz(), 2);
/// assert!(s.to_dense().approx_eq(&dense, 0.0));
/// # Ok::<(), indexmac_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StructuredSparseMatrix {
    rows: usize,
    cols: usize,
    pattern: NmPattern,
    /// `rows * blocks_per_row * N` values, row-major then block-major.
    values: Vec<f32>,
    /// Matching in-block indices, each in `[0, M)`.
    indices: Vec<u8>,
}

impl StructuredSparseMatrix {
    /// Converts a dense matrix that already obeys the N:M template.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::PatternViolation`] if any block of `dense`
    /// holds more than `N` non-zeros (use
    /// [`crate::prune::magnitude_prune`] to force conformance first), and
    /// [`SparseError::InvalidPattern`] never (the pattern is pre-validated).
    pub fn from_dense(dense: &DenseMatrix, pattern: NmPattern) -> Result<Self, SparseError> {
        let (rows, cols) = dense.shape();
        let blocks = pattern.blocks_for(cols);
        let n = pattern.n();
        let m = pattern.m();
        let mut values = vec![0.0_f32; rows * blocks * n];
        let mut indices = vec![0_u8; rows * blocks * n];
        for r in 0..rows {
            for b in 0..blocks {
                let base = (r * blocks + b) * n;
                let mut filled = 0;
                for off in 0..m {
                    let c = b * m + off;
                    if c >= cols {
                        break;
                    }
                    let v = dense.get(r, c);
                    if v != 0.0 {
                        if filled == n {
                            return Err(SparseError::PatternViolation {
                                row: r,
                                block_start: b * m,
                                found: filled + 1,
                                allowed: n,
                            });
                        }
                        values[base + filled] = v;
                        indices[base + filled] = off as u8;
                        filled += 1;
                    }
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            pattern,
            values,
            indices,
        })
    }

    /// Builds the format directly from per-slot arrays.
    ///
    /// `values` and `indices` must have length
    /// `rows * pattern.blocks_for(cols) * pattern.n()`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DataLengthMismatch`] on wrong lengths and
    /// [`SparseError::IndexOutOfBlock`] if any index is `>= M` or refers
    /// to a column beyond `cols`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        pattern: NmPattern,
        values: Vec<f32>,
        indices: Vec<u8>,
    ) -> Result<Self, SparseError> {
        if rows == 0 || cols == 0 {
            return Err(SparseError::EmptyDimension { rows, cols });
        }
        let expected = rows * pattern.slots_for(cols);
        if values.len() != expected {
            return Err(SparseError::DataLengthMismatch {
                expected,
                actual: values.len(),
            });
        }
        if indices.len() != expected {
            return Err(SparseError::DataLengthMismatch {
                expected,
                actual: indices.len(),
            });
        }
        let blocks = pattern.blocks_for(cols);
        for r in 0..rows {
            for b in 0..blocks {
                for s in 0..pattern.n() {
                    let i = (r * blocks + b) * pattern.n() + s;
                    let off = indices[i] as usize;
                    if off >= pattern.m() {
                        return Err(SparseError::IndexOutOfBlock {
                            index: off,
                            block: pattern.m(),
                        });
                    }
                    let col = b * pattern.m() + off;
                    if values[i] != 0.0 && col >= cols {
                        return Err(SparseError::IndexOutOfBlock {
                            index: col,
                            block: cols,
                        });
                    }
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            pattern,
            values,
            indices,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of (logical, dense) columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The N:M template of this matrix.
    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    /// Blocks per row (`ceil(cols / M)`).
    pub fn blocks_per_row(&self) -> usize {
        self.pattern.blocks_for(self.cols)
    }

    /// Value slots per row (`blocks_per_row * N`).
    pub fn slots_per_row(&self) -> usize {
        self.pattern.slots_for(self.cols)
    }

    /// All value slots, row-major (including padding zeros).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// All in-block indices, row-major, aligned with [`Self::values`].
    pub fn indices(&self) -> &[u8] {
        &self.indices
    }

    /// The value slots of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_values(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        let spr = self.slots_per_row();
        &self.values[r * spr..(r + 1) * spr]
    }

    /// The in-block indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_indices(&self, r: usize) -> &[u8] {
        assert!(r < self.rows, "row {r} out of bounds");
        let spr = self.slots_per_row();
        &self.indices[r * spr..(r + 1) * spr]
    }

    /// A view of block `b` of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `b` is out of bounds.
    pub fn block(&self, r: usize, b: usize) -> Block<'_> {
        assert!(b < self.blocks_per_row(), "block {b} out of bounds");
        let n = self.pattern.n();
        let base = (r * self.blocks_per_row() + b) * n;
        Block {
            values: &self.values[base..base + n],
            indices: &self.indices[base..base + n],
        }
    }

    /// Iterates over every slot of row `r` (including padding slots), in
    /// block order — exactly the order the hardware kernels walk.
    pub fn row_slots(&self, r: usize) -> impl Iterator<Item = Slot> + '_ {
        let n = self.pattern.n();
        let m = self.pattern.m();
        let blocks = self.blocks_per_row();
        let vals = self.row_values(r);
        let idxs = self.row_indices(r);
        (0..blocks).flat_map(move |b| {
            (0..n).map(move |s| {
                let i = b * n + s;
                let in_block_idx = idxs[i] as usize;
                Slot {
                    row: r,
                    block: b,
                    slot: s,
                    in_block_idx,
                    col: b * m + in_block_idx,
                    value: vals[i],
                }
            })
        })
    }

    /// Number of stored non-zero values (padding slots excluded).
    pub fn nnz(&self) -> usize {
        self.values.iter().filter(|v| **v != 0.0).count()
    }

    /// Total slots in the format (`rows * blocks * N`), i.e. the MAC count
    /// the fixed-shape hardware kernels execute regardless of padding.
    pub fn total_slots(&self) -> usize {
        self.values.len()
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for slot in self.row_slots(r) {
                if slot.value != 0.0 {
                    // Padding slots may alias column 0 of their block; only
                    // real values are written back.
                    out.set(r, slot.col, slot.value);
                }
            }
        }
        out
    }

    /// Checks the structural invariants: indices in `[0, M)`, real values
    /// referring to in-bounds columns, and at most one real value per
    /// (row, column).
    pub fn obeys_pattern(&self) -> bool {
        for r in 0..self.rows {
            let mut seen = vec![false; self.cols];
            for slot in self.row_slots(r) {
                if slot.in_block_idx >= self.pattern.m() {
                    return false;
                }
                if slot.value != 0.0 {
                    if slot.col >= self.cols {
                        return false;
                    }
                    if seen[slot.col] {
                        return false;
                    }
                    seen[slot.col] = true;
                }
            }
        }
        true
    }

    /// Storage footprint in bytes of the compressed representation,
    /// assuming 32-bit values and `ceil(log2(M))`-bit indices packed into
    /// bytes — the metric behind the paper's Fig. 1 storage comparison.
    pub fn storage_bytes(&self) -> usize {
        let value_bytes = self.values.len() * 4;
        let bits_per_idx = usize::BITS as usize - (self.pattern.m() - 1).leading_zeros() as usize;
        let bits_per_idx = bits_per_idx.max(1);
        let index_bytes = (self.indices.len() * bits_per_idx).div_ceil(8);
        value_bytes + index_bytes
    }

    /// Reference sparse x dense product against a dense `rhs`, walking
    /// slots in hardware order (block-major, fixed N per block) so the
    /// floating-point rounding matches the simulated kernels exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn spmm_reference(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
        if self.cols != rhs.rows() {
            return Err(SparseError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols());
        for r in 0..self.rows {
            for slot in self.row_slots(r) {
                // Padding slots multiply by 0.0 — harmless but kept to
                // mirror the fixed-shape kernel arithmetic order.
                if slot.col >= rhs.rows() {
                    continue;
                }
                for j in 0..rhs.cols() {
                    let v = out.get(r, j) + slot.value * rhs.get(slot.col, j);
                    out.set(r, j, v);
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for StructuredSparseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StructuredSparseMatrix {}x{} pattern {} ({} nnz / {} slots)",
            self.rows,
            self.cols,
            self.pattern,
            self.nnz(),
            self.total_slots()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune;

    fn sample_dense() -> DenseMatrix {
        // 2 rows x 8 cols, 2:4-conformant.
        DenseMatrix::try_new(
            2,
            8,
            vec![
                1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, 4.0, 5.0, 0.0, 0.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = sample_dense();
        let s = StructuredSparseMatrix::from_dense(&d, NmPattern::P2_4).unwrap();
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.total_slots(), 2 * 2 * 2);
        assert!(s.obeys_pattern());
        assert!(s.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn from_dense_rejects_violations() {
        let d = DenseMatrix::try_new(1, 4, vec![1.0, 2.0, 3.0, 0.0]).unwrap();
        let err = StructuredSparseMatrix::from_dense(&d, NmPattern::P2_4).unwrap_err();
        assert!(matches!(
            err,
            SparseError::PatternViolation {
                found: 3,
                allowed: 2,
                ..
            }
        ));
    }

    #[test]
    fn blocks_and_slots_views() {
        let d = sample_dense();
        let s = StructuredSparseMatrix::from_dense(&d, NmPattern::P2_4).unwrap();
        let b0 = s.block(0, 0);
        assert_eq!(b0.values, &[1.0, 2.0]);
        assert_eq!(b0.indices, &[0, 2]);
        let b1 = s.block(0, 1);
        assert_eq!(b1.values, &[3.0, 0.0]); // one nnz + one padding slot
        let slots: Vec<Slot> = s.row_slots(1).collect();
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[2].col, 4);
        assert_eq!(slots[2].value, 4.0);
        assert!(slots[0].is_padding());
    }

    #[test]
    fn ragged_last_block_is_padded() {
        // 6 columns with M=4 -> 2 blocks, second covers cols 4..6 only.
        let d = DenseMatrix::try_new(1, 6, vec![0.0, 7.0, 0.0, 0.0, 0.0, 9.0]).unwrap();
        let s = StructuredSparseMatrix::from_dense(&d, NmPattern::P1_4).unwrap();
        assert_eq!(s.blocks_per_row(), 2);
        assert_eq!(s.nnz(), 2);
        assert!(s.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn from_parts_validation() {
        let p = NmPattern::P1_4;
        // 1 row x 8 cols -> 2 slots.
        assert!(StructuredSparseMatrix::from_parts(1, 8, p, vec![1.0], vec![0]).is_err());
        let err =
            StructuredSparseMatrix::from_parts(1, 8, p, vec![1.0, 1.0], vec![0, 4]).unwrap_err();
        assert!(matches!(
            err,
            SparseError::IndexOutOfBlock { index: 4, block: 4 }
        ));
        // Real value pointing past the logical column count.
        let err =
            StructuredSparseMatrix::from_parts(1, 6, p, vec![1.0, 1.0], vec![0, 3]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBlock { .. }));
        assert!(StructuredSparseMatrix::from_parts(1, 8, p, vec![1.0, 1.0], vec![0, 3]).is_ok());
    }

    #[test]
    fn spmm_reference_matches_dense_matmul() {
        let d = DenseMatrix::random(6, 12, 3);
        let s = prune::magnitude_prune(&d, NmPattern::P2_4);
        let b = DenseMatrix::random(12, 10, 4);
        let via_sparse = s.spmm_reference(&b).unwrap();
        let via_dense = s.to_dense().matmul(&b).unwrap();
        assert!(via_sparse.approx_eq(&via_dense, 1e-4));
    }

    #[test]
    fn spmm_dimension_check() {
        let d = sample_dense();
        let s = StructuredSparseMatrix::from_dense(&d, NmPattern::P2_4).unwrap();
        let b = DenseMatrix::zeros(9, 3);
        assert!(s.spmm_reference(&b).is_err());
    }

    #[test]
    fn storage_accounting() {
        let d = sample_dense();
        let s = StructuredSparseMatrix::from_dense(&d, NmPattern::P2_4).unwrap();
        // 8 slots * 4 bytes + 8 indices * 2 bits = 32 + 2 bytes.
        assert_eq!(s.storage_bytes(), 34);
    }

    #[test]
    fn display_mentions_pattern() {
        let d = sample_dense();
        let s = StructuredSparseMatrix::from_dense(&d, NmPattern::P2_4).unwrap();
        assert!(s.to_string().contains("2:4"));
    }
}
