//! Pruning dense matrices onto N:M structured-sparsity templates.
//!
//! The paper prunes its CNNs with TensorFlow (magnitude pruning plus
//! fine-tuning on ImageNet). Kernel execution time depends only on the
//! *structure* — the N:M template — never on the trained values, so this
//! module reproduces the structural part: per-block top-N magnitude
//! selection, plus a generator of random pattern-conformant matrices.

use crate::gen;
use crate::matrix::DenseMatrix;
use crate::pattern::NmPattern;
use crate::structured::StructuredSparseMatrix;

/// Prunes `dense` to the `pattern` by keeping, in every aligned block of
/// `M` elements, the `N` entries of largest magnitude (ties broken toward
/// the lower column, matching common framework behaviour).
///
/// The result always satisfies the template, so conversion cannot fail.
///
/// # Example
///
/// ```
/// use indexmac_sparse::{DenseMatrix, NmPattern, prune};
///
/// let d = DenseMatrix::try_new(1, 4, vec![0.1, -0.9, 0.5, 0.2])?;
/// let s = prune::magnitude_prune(&d, NmPattern::new(2, 4)?);
/// // Keeps -0.9 and 0.5, zeros the rest.
/// assert_eq!(s.to_dense().as_slice(), &[0.0, -0.9, 0.5, 0.0]);
/// # Ok::<(), indexmac_sparse::SparseError>(())
/// ```
pub fn magnitude_prune(dense: &DenseMatrix, pattern: NmPattern) -> StructuredSparseMatrix {
    let pruned = magnitude_prune_dense(dense, pattern);
    StructuredSparseMatrix::from_dense(&pruned, pattern)
        .expect("magnitude pruning always satisfies the pattern")
}

/// Same as [`magnitude_prune`] but returns the pruned matrix in dense form.
pub fn magnitude_prune_dense(dense: &DenseMatrix, pattern: NmPattern) -> DenseMatrix {
    let (rows, cols) = dense.shape();
    let m = pattern.m();
    let n = pattern.n();
    let mut out = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        let mut block_start = 0;
        while block_start < cols {
            let block_end = (block_start + m).min(cols);
            // Rank in-block offsets by |value| descending, column ascending.
            let mut order: Vec<usize> = (block_start..block_end).collect();
            order.sort_by(|&a, &b| {
                dense
                    .get(r, b)
                    .abs()
                    .partial_cmp(&dense.get(r, a).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for &c in order.iter().take(n) {
                let v = dense.get(r, c);
                if v != 0.0 {
                    out.set(r, c, v);
                }
            }
            block_start = block_end;
        }
    }
    out
}

/// Generates a random structured-sparse matrix where every full block has
/// *exactly* `N` non-zeros at random distinct positions — the worst case
/// for the fixed-shape kernels, and the shape the paper's pruned CNN
/// weights take after fine-tuning.
///
/// Deterministic for a given `(rows, cols, pattern, seed)`.
pub fn random_structured(
    rows: usize,
    cols: usize,
    pattern: NmPattern,
    seed: u64,
) -> StructuredSparseMatrix {
    let mut rng = gen::rng(seed);
    let m = pattern.m();
    let n = pattern.n();
    let mut dense = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        let mut block_start = 0;
        while block_start < cols {
            let width = (cols - block_start).min(m);
            let take = n.min(width);
            let offsets = gen::distinct_indices(take, width, &mut rng);
            for off in offsets {
                let v = loop {
                    let v: f32 = rand::RngExt::random_range(&mut rng, -1.0..1.0);
                    if v != 0.0 {
                        break v;
                    }
                };
                dense.set(r, block_start + off, v);
            }
            block_start += m;
        }
    }
    StructuredSparseMatrix::from_dense(&dense, pattern)
        .expect("construction satisfies the pattern by design")
}

/// Fraction of kept weights after pruning `dense` to `pattern`
/// (`kept / original non-zeros`); a cheap proxy for the "information
/// retained" trade-off discussed in the paper's introduction.
pub fn retention(dense: &DenseMatrix, pattern: NmPattern) -> f64 {
    let orig = dense.as_slice().iter().filter(|v| **v != 0.0).count();
    if orig == 0 {
        return 1.0;
    }
    let kept = magnitude_prune(dense, pattern).nnz();
    kept as f64 / orig as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_keeps_largest_magnitudes() {
        let d =
            DenseMatrix::try_new(1, 8, vec![0.1, 0.9, -0.5, 0.2, 0.0, -0.3, 0.25, 0.0]).unwrap();
        let s = magnitude_prune(&d, NmPattern::P1_4);
        assert_eq!(
            s.to_dense().as_slice(),
            &[0.0, 0.9, 0.0, 0.0, 0.0, -0.3, 0.0, 0.0]
        );
    }

    #[test]
    fn prune_idempotent_on_conformant_input() {
        let s0 = random_structured(6, 16, NmPattern::P2_4, 8);
        let d = s0.to_dense();
        let s1 = magnitude_prune(&d, NmPattern::P2_4);
        assert!(s1.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn prune_result_always_conformant() {
        for seed in 0..5 {
            let d = DenseMatrix::random(7, 19, seed);
            let s = magnitude_prune(&d, NmPattern::P1_4);
            assert!(s.obeys_pattern());
            // Each 4-block keeps at most 1 nnz; 19 cols -> 5 blocks.
            assert!(s.nnz() <= 7 * 5);
        }
    }

    #[test]
    fn prune_tie_break_prefers_lower_column() {
        let d = DenseMatrix::try_new(1, 4, vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        let s = magnitude_prune(&d, NmPattern::P1_4);
        assert_eq!(s.to_dense().as_slice(), &[0.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn random_structured_full_blocks() {
        let s = random_structured(10, 32, NmPattern::P2_4, 3);
        // 32 cols -> 8 blocks per row, each with exactly 2 nnz.
        assert_eq!(s.nnz(), 10 * 8 * 2);
        assert!(s.obeys_pattern());
    }

    #[test]
    fn random_structured_ragged_tail() {
        // 10 cols with M=4: blocks [0,4), [4,8), [8,10) — tail width 2.
        let s = random_structured(4, 10, NmPattern::P2_4, 5);
        assert!(s.obeys_pattern());
        assert_eq!(s.nnz(), 4 * (2 + 2 + 2));
    }

    #[test]
    fn random_structured_deterministic() {
        let a = random_structured(5, 12, NmPattern::P1_4, 42);
        let b = random_structured(5, 12, NmPattern::P1_4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn retention_bounds() {
        let d = DenseMatrix::random(8, 32, 9);
        let r14 = retention(&d, NmPattern::P1_4);
        let r24 = retention(&d, NmPattern::P2_4);
        assert!(r14 > 0.0 && r14 <= 0.26);
        assert!(r24 > r14 && r24 <= 0.51);
        assert_eq!(retention(&DenseMatrix::zeros(2, 2), NmPattern::P1_2), 1.0);
    }
}
