//! Compressed Sparse Row (CSR) format for *unstructured* sparsity.
//!
//! The paper contrasts structured sparsity against unstructured formats
//! (Fig. 1(a)): CSR needs a full column index per non-zero and gives no
//! bound on where indices point, which is precisely why B-rows cannot be
//! pinned in the vector register file for unstructured matrices. This
//! module exists for that comparison (storage and indexing cost), and for
//! tests that quantify the difference.

use crate::error::SparseError;
use crate::matrix::DenseMatrix;

/// A CSR matrix with `f32` values and `u32` column indices.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `rows + 1` prefix offsets into `values` / `col_idx`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Converts a dense matrix, keeping every non-zero element.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.get(r, c);
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(column, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.col_idx[lo..hi]
            .iter()
            .zip(self.values[lo..hi].iter())
            .map(|(c, v)| (*c as usize, *v))
    }

    /// Expands back to dense form.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Storage footprint in bytes: 4-byte values + 4-byte column indices +
    /// 4-byte row pointers. Compare with
    /// [`crate::StructuredSparseMatrix::storage_bytes`], where indices cost
    /// only `log2(M)` bits.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }

    /// Reference CSR x dense product (Gustavson row-wise order).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn spmm_reference(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
        if self.cols != rhs.rows() {
            return Err(SparseError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols());
        for r in 0..self.rows {
            for (k, v) in self.row(r) {
                for j in 0..rhs.cols() {
                    let acc = out.get(r, j) + v * rhs.get(k, j);
                    out.set(r, j, acc);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sparse_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        DenseMatrix::try_new(rows, cols, gen::sparse_uniform_vec(rows * cols, 0.8, seed)).unwrap()
    }

    #[test]
    fn roundtrip() {
        let d = sparse_dense(9, 13, 1);
        let csr = CsrMatrix::from_dense(&d);
        assert!(csr.to_dense().approx_eq(&d, 0.0));
        assert_eq!(
            csr.nnz(),
            d.as_slice().iter().filter(|v| **v != 0.0).count()
        );
    }

    #[test]
    fn empty_rows_are_fine() {
        let d = DenseMatrix::zeros(4, 4);
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row(2).count(), 0);
        assert!(csr.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn spmm_matches_dense() {
        let d = sparse_dense(7, 11, 2);
        let b = DenseMatrix::random(11, 6, 3);
        let csr = CsrMatrix::from_dense(&d);
        let got = csr.spmm_reference(&b).unwrap();
        let want = d.matmul(&b).unwrap();
        assert!(got.approx_eq(&want, 1e-4));
    }

    #[test]
    fn spmm_rejects_mismatch() {
        let csr = CsrMatrix::from_dense(&DenseMatrix::zeros(3, 5));
        assert!(csr.spmm_reference(&DenseMatrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn csr_storage_exceeds_structured_for_same_data() {
        use crate::{prune, NmPattern};
        let s = prune::random_structured(16, 64, NmPattern::P1_4, 7);
        let d = s.to_dense();
        let csr = CsrMatrix::from_dense(&d);
        // CSR: 4B col index per nnz. Structured: 2 bits per slot.
        assert!(csr.storage_bytes() > s.storage_bytes());
    }
}
