//! Property-based tests for the sparse-format invariants.

use indexmac_sparse::{prune, CsrMatrix, DenseMatrix, NmPattern, StructuredSparseMatrix};
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = NmPattern> {
    prop_oneof![
        Just(NmPattern::P1_2),
        Just(NmPattern::P1_4),
        Just(NmPattern::P2_4),
        (1usize..=4, 4usize..=8).prop_map(|(n, m)| NmPattern::new(n, m).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structured_roundtrip_preserves_dense(
        rows in 1usize..12,
        cols in 1usize..40,
        pattern in pattern_strategy(),
        seed in 0u64..1000,
    ) {
        let s = prune::random_structured(rows, cols, pattern, seed);
        let d = s.to_dense();
        let s2 = StructuredSparseMatrix::from_dense(&d, pattern).unwrap();
        prop_assert!(s2.to_dense().approx_eq(&d, 0.0));
        prop_assert!(s2.obeys_pattern());
    }

    #[test]
    fn pruning_always_conforms(
        rows in 1usize..10,
        cols in 1usize..48,
        pattern in pattern_strategy(),
        seed in 0u64..1000,
    ) {
        let d = DenseMatrix::random(rows, cols, seed);
        let s = prune::magnitude_prune(&d, pattern);
        prop_assert!(s.obeys_pattern());
        // Every kept value exists at the same position in the original.
        let pd = s.to_dense();
        for r in 0..rows {
            for c in 0..cols {
                let v = pd.get(r, c);
                if v != 0.0 {
                    prop_assert_eq!(v, d.get(r, c));
                }
            }
        }
    }

    #[test]
    fn pruning_never_exceeds_density(
        rows in 1usize..8,
        cols in 1usize..64,
        pattern in pattern_strategy(),
        seed in 0u64..1000,
    ) {
        let d = DenseMatrix::random(rows, cols, seed);
        let s = prune::magnitude_prune(&d, pattern);
        let max_nnz = rows * pattern.blocks_for(cols) * pattern.n();
        prop_assert!(s.nnz() <= max_nnz);
    }

    #[test]
    fn structured_spmm_matches_dense_matmul(
        rows in 1usize..8,
        inner in 1usize..24,
        cols in 1usize..12,
        pattern in pattern_strategy(),
        seed in 0u64..500,
    ) {
        let a = prune::random_structured(rows, inner, pattern, seed);
        let b = DenseMatrix::random(inner, cols, seed.wrapping_add(1));
        let got = a.spmm_reference(&b).unwrap();
        let want = a.to_dense().matmul(&b).unwrap();
        prop_assert!(got.approx_eq(&want, 1e-3),
            "max diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn csr_roundtrip(
        rows in 1usize..10,
        cols in 1usize..20,
        seed in 0u64..500,
    ) {
        let d = DenseMatrix::random(rows, cols, seed);
        let pruned = prune::magnitude_prune_dense(&d, NmPattern::P1_4);
        let csr = CsrMatrix::from_dense(&pruned);
        prop_assert!(csr.to_dense().approx_eq(&pruned, 0.0));
    }

    #[test]
    fn transpose_preserves_matmul(
        n in 1usize..8,
        seed in 0u64..200,
    ) {
        // (A * B)^T == B^T * A^T
        let a = DenseMatrix::random(n, n, seed);
        let b = DenseMatrix::random(n, n, seed.wrapping_add(7));
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-3));
    }
}
