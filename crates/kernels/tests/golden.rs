//! Golden tests: the generated assembly of small kernels is pinned, so
//! any unintended change to the emission logic (instruction selection,
//! ordering, loop structure) is caught immediately. Every kernel
//! builder has its first ~40 instructions locked below; regenerate a
//! snapshot only when an emission change is *intentional*.

use indexmac_isa::Program;
use indexmac_kernels::{dense, indexmac, indexmac2, rowwise, scalar_idx, GemmLayout, KernelParams};
use indexmac_sparse::{quant, DenseMatrix, ElemType, NmPattern, StructuredSparseMatrix};
use indexmac_vpu::SimConfig;

/// A 1x8 1:4 matrix with nonzeros at columns 1 and 6 — one k-tile, one
/// column tile, two slots.
fn tiny_layout() -> GemmLayout {
    let dense = DenseMatrix::try_new(1, 8, vec![0.0, 2.0, 0.0, 0.0, 0.0, 0.0, -3.0, 0.0]).unwrap();
    let a = StructuredSparseMatrix::from_dense(&dense, NmPattern::P1_4).unwrap();
    GemmLayout::plan(&a, 4, &SimConfig::table_i(), 8).unwrap()
}

/// The same matrix planned under m2 register grouping.
fn tiny_grouped_layout() -> GemmLayout {
    let dense = DenseMatrix::try_new(1, 8, vec![0.0, 2.0, 0.0, 0.0, 0.0, 0.0, -3.0, 0.0]).unwrap();
    let a = StructuredSparseMatrix::from_dense(&dense, NmPattern::P1_4).unwrap();
    GemmLayout::plan_grouped(&a, 4, &SimConfig::table_i(), 8, 2).unwrap()
}

/// The same matrix planned at a quantized element width (values are
/// exact small integers, as the quantized pipeline requires).
fn tiny_int_layout(elem: ElemType) -> GemmLayout {
    let dense = DenseMatrix::try_new(1, 8, vec![0.0, 2.0, 0.0, 0.0, 0.0, 0.0, -3.0, 0.0]).unwrap();
    let a = StructuredSparseMatrix::from_dense(&dense, NmPattern::P1_4).unwrap();
    GemmLayout::plan_elem(&a, 4, &SimConfig::table_i(), 8, 1, elem).unwrap()
}

/// The first `n` disassembled instructions of a program.
fn prefix(p: &Program, n: usize) -> Vec<String> {
    p.instructions()
        .iter()
        .take(n)
        .map(std::string::ToString::to_string)
        .collect()
}

fn assert_prefix(name: &str, p: &Program, expected: &[&str]) {
    let got = prefix(p, expected.len());
    assert_eq!(
        got,
        expected
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>(),
        "{name} listing prefix changed:\n{}",
        got.join("\n")
    );
}

#[test]
fn indexmac_kernel_listing_is_stable() {
    let layout = tiny_layout();
    let p = indexmac::build(
        &layout,
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let listing: Vec<String> = p
        .instructions()
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    // Prologue, one tile preload (L=8), one row group, two slots, store.
    let expected = vec![
        // prologue
        "li a0, 16",
        "vsetvli zero, a0, e32,m1",
        "li s9, 64",
        // k-tile / col-tile counters
        "li s6, 1",
        "li t6, 1",
        // preload 8 rows of B into v24..v31
        "li a0, 1064960",
        "vle32.v v24, (a0)",
        "add a0, a0, s9",
        "vle32.v v25, (a0)",
        "add a0, a0, s9",
        "vle32.v v26, (a0)",
        "add a0, a0, s9",
        "vle32.v v27, (a0)",
        "add a0, a0, s9",
        "vle32.v v28, (a0)",
        "add a0, a0, s9",
        "vle32.v v29, (a0)",
        "add a0, a0, s9",
        "vle32.v v30, (a0)",
        "add a0, a0, s9",
        "vle32.v v31, (a0)",
        // row loop (1 group)
        "li t5, 1",
        // C address + metadata/C loads
        "li a1, 1069056",
        "li a0, 1048576",
        "vle32.v v4, (a0)",
        "li a0, 1056768",
        "vle32.v v8, (a0)",
        "vle32.v v0, (a1)",
        // inner loop, slot 0
        "li t4, 2",
        "vmv.x.s t0, v8",
        "vindexmac.vx v0, v4, t0",
        "vslide1down.vx v4, v4, zero",
        "vslide1down.vx v8, v8, zero",
        "addi t4, t4, -1",
        "bne t4, zero, 1",
        // slot 1
        "vmv.x.s t0, v8",
        "vindexmac.vx v0, v4, t0",
        "vslide1down.vx v4, v4, zero",
        "vslide1down.vx v8, v8, zero",
        "addi t4, t4, -1",
        "bne t4, zero, 1",
        // store + loop epilogues
        "vse32.v v0, (a1)",
        "addi t5, t5, -1",
        "bne t5, zero, 1",
        "addi t6, t6, -1",
        "bne t6, zero, 1",
        "addi s6, s6, -1",
        "bne s6, zero, 1",
        "ebreak",
    ];
    assert_eq!(
        listing,
        expected,
        "generated listing changed:\n{}",
        listing.join("\n")
    );
}

#[test]
fn rowwise_inner_loop_shape_is_stable() {
    let layout = tiny_layout();
    let p = rowwise::build(
        &layout,
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let listing: Vec<String> = p
        .instructions()
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    // The six-instruction inner sequence of Algorithm 2, slot 0: move
    // address, load B slice, move value, MAC, two slides.
    let idx = listing
        .iter()
        .position(|l| l == "vmv.x.s t0, v8")
        .expect("inner loop present");
    assert_eq!(
        &listing[idx..idx + 6],
        &[
            "vmv.x.s t0, v8".to_string(),
            "vle32.v v12, (t0)".to_string(),
            "vfmv.f.s f0, v4".to_string(),
            "vfmacc.vf v0, f0, v12".to_string(),
            "vslide1down.vx v4, v4, zero".to_string(),
            "vslide1down.vx v8, v8, zero".to_string(),
        ]
    );
    // And the per-row address adjust of line 5 precedes it.
    assert!(listing[..idx]
        .iter()
        .any(|l| l.starts_with("vadd.vx v8, v8, s5")));
}

#[test]
fn dense_kernel_prefix_is_stable() {
    let p = dense::build(
        &tiny_layout(),
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_prefix(
        "dense",
        &p,
        &[
            "li a0, 16",
            "vsetvli zero, a0, e32,m1",
            "li s9, 64",
            "li s6, 1",
            "li t6, 1",
            "li t5, 1",
            "li a1, 1069056",
            "li a0, 1060864",
            "vle32.v v4, (a0)",
            "vle32.v v0, (a1)",
            "li t4, 8",
            "li a0, 1064960",
            "vle32.v v12, (a0)",
            "vfmv.f.s f0, v4",
            "vfmacc.vf v0, f0, v12",
            "vslide1down.vx v4, v4, zero",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "li a0, 1065024",
            "vle32.v v12, (a0)",
            "vfmv.f.s f0, v4",
            "vfmacc.vf v0, f0, v12",
            "vslide1down.vx v4, v4, zero",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "li a0, 1065088",
            "vle32.v v12, (a0)",
            "vfmv.f.s f0, v4",
            "vfmacc.vf v0, f0, v12",
            "vslide1down.vx v4, v4, zero",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "li a0, 1065152",
            "vle32.v v12, (a0)",
            "vfmv.f.s f0, v4",
            "vfmacc.vf v0, f0, v12",
            "vslide1down.vx v4, v4, zero",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "li a0, 1065216",
        ],
    );
}

#[test]
fn rowwise_kernel_prefix_is_stable() {
    let p = rowwise::build(
        &tiny_layout(),
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_prefix(
        "rowwise",
        &p,
        &[
            "li a0, 16",
            "vsetvli zero, a0, e32,m1",
            "li s9, 64",
            "li s6, 1",
            "li t6, 1",
            "li s5, 1064960",
            "li t5, 1",
            "li a1, 1069056",
            "li a0, 1048576",
            "vle32.v v4, (a0)",
            "li a0, 1052672",
            "vle32.v v8, (a0)",
            "vadd.vx v8, v8, s5",
            "vle32.v v0, (a1)",
            "li t4, 2",
            "vmv.x.s t0, v8",
            "vle32.v v12, (t0)",
            "vfmv.f.s f0, v4",
            "vfmacc.vf v0, f0, v12",
            "vslide1down.vx v4, v4, zero",
            "vslide1down.vx v8, v8, zero",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "vmv.x.s t0, v8",
            "vle32.v v12, (t0)",
            "vfmv.f.s f0, v4",
            "vfmacc.vf v0, f0, v12",
            "vslide1down.vx v4, v4, zero",
            "vslide1down.vx v8, v8, zero",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "vse32.v v0, (a1)",
            "addi t5, t5, -1",
            "bne t5, zero, 1",
            "addi t6, t6, -1",
            "bne t6, zero, 1",
            "addi s6, s6, -1",
            "bne s6, zero, 1",
            "ebreak",
        ],
    );
}

#[test]
fn scalar_idx_kernel_prefix_is_stable() {
    let p = scalar_idx::build(
        &tiny_layout(),
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_prefix(
        "scalar_idx",
        &p,
        &[
            "li a0, 16",
            "vsetvli zero, a0, e32,m1",
            "li s9, 64",
            "li s6, 1",
            "li t6, 1",
            "li a0, 1064960",
            "vle32.v v24, (a0)",
            "add a0, a0, s9",
            "vle32.v v25, (a0)",
            "add a0, a0, s9",
            "vle32.v v26, (a0)",
            "add a0, a0, s9",
            "vle32.v v27, (a0)",
            "add a0, a0, s9",
            "vle32.v v28, (a0)",
            "add a0, a0, s9",
            "vle32.v v29, (a0)",
            "add a0, a0, s9",
            "vle32.v v30, (a0)",
            "add a0, a0, s9",
            "vle32.v v31, (a0)",
            "li t5, 1",
            "li a1, 1069056",
            "vle32.v v0, (a1)",
            "li t4, 2",
            "li a0, 1056768",
            "lw t0, 0(a0)",
            "li a0, 1048576",
            "lw a5, 0(a0)",
            "vmv.s.x v4, a5",
            "vindexmac.vx v0, v4, t0",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "li a0, 1056772",
            "lw t0, 0(a0)",
            "li a0, 1048580",
            "lw a5, 0(a0)",
            "vmv.s.x v4, a5",
            "vindexmac.vx v0, v4, t0",
            "addi t4, t4, -1",
        ],
    );
}

#[test]
fn indexmac2_kernel_listing_is_stable() {
    // The second-generation kernel at unroll 1: the whole program fits
    // in the snapshot. Note the one-instruction steady state — no
    // vmv.x.s, no slides, metadata read in place by slot immediate.
    let p = indexmac2::build(
        &tiny_layout(),
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_prefix(
        "indexmac2",
        &p,
        &[
            "li a0, 16",
            "vsetvli zero, a0, e32,m1",
            "li s9, 64",
            "li s6, 1",
            "li t6, 1",
            "li a0, 1064960",
            "vle32.v v24, (a0)",
            "add a0, a0, s9",
            "vle32.v v25, (a0)",
            "add a0, a0, s9",
            "vle32.v v26, (a0)",
            "add a0, a0, s9",
            "vle32.v v27, (a0)",
            "add a0, a0, s9",
            "vle32.v v28, (a0)",
            "add a0, a0, s9",
            "vle32.v v29, (a0)",
            "add a0, a0, s9",
            "vle32.v v30, (a0)",
            "add a0, a0, s9",
            "vle32.v v31, (a0)",
            "li t5, 1",
            "li a1, 1069056",
            "li a0, 1048576",
            "vle32.v v1, (a0)",
            "li a0, 1056768",
            "vle32.v v2, (a0)",
            "vle32.v v0, (a1)",
            "li t4, 2",
            "vindexmac.vvi v0, v1, v2, 0",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "vindexmac.vvi v0, v1, v2, 1",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "vse32.v v0, (a1)",
            "addi t5, t5, -1",
            "bne t5, zero, 1",
            "addi t6, t6, -1",
            "bne t6, zero, 1",
        ],
    );
}

#[test]
fn indexmac2_grouped_kernel_prefix_is_stable() {
    // m2 grouping: 128-byte row stride (32-element column tile), tile
    // rows land on even registers (v16, v18, ...), metadata loads drop
    // to m1 and the data side returns to m2 before the C load.
    let p = indexmac2::build(
        &tiny_grouped_layout(),
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_prefix(
        "indexmac2-m2",
        &p,
        &[
            "li a0, 32",
            "vsetvli zero, a0, e32,m2",
            "li s9, 128",
            "li s6, 1",
            "li t6, 1",
            "li a0, 1064960",
            "vle32.v v16, (a0)",
            "add a0, a0, s9",
            "vle32.v v18, (a0)",
            "add a0, a0, s9",
            "vle32.v v20, (a0)",
            "add a0, a0, s9",
            "vle32.v v22, (a0)",
            "add a0, a0, s9",
            "vle32.v v24, (a0)",
            "add a0, a0, s9",
            "vle32.v v26, (a0)",
            "add a0, a0, s9",
            "vle32.v v28, (a0)",
            "add a0, a0, s9",
            "vle32.v v30, (a0)",
            "li t5, 1",
            "li a0, 16",
            "vsetvli zero, a0, e32,m1",
            "li a1, 1069056",
            "li a0, 1048576",
            "vle32.v v2, (a0)",
            "li a0, 1056768",
            "vle32.v v3, (a0)",
            "li a0, 32",
            "vsetvli zero, a0, e32,m2",
            "vle32.v v0, (a1)",
            "li t4, 2",
            "vindexmac.vvi v0, v2, v3, 0",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "vindexmac.vvi v0, v2, v3, 1",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "vse32.v v0, (a1)",
        ],
    );
}

#[test]
fn indexmac2_e8_kernel_prefix_is_stable() {
    // The widening int8 second-generation kernel: 64-element column
    // tiles (vl = VLEN/8), one-byte B/metadata loads (`vle8`), and the
    // i32 accumulator as the v0..v3 group loaded/stored under e32,m4.
    // The steady state stays ONE vindexmac.vvi per non-zero slot.
    let p = indexmac2::build(
        &tiny_int_layout(ElemType::I8),
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_prefix(
        "indexmac2-e8",
        &p,
        &[
            "li a0, 64",
            "vsetvli zero, a0, e8,m1",
            "li s9, 64",
            "li s6, 1",
            "li t6, 1",
            "li a0, 1064960",
            "vle8.v v24, (a0)",
            "add a0, a0, s9",
            "vle8.v v25, (a0)",
            "add a0, a0, s9",
            "vle8.v v26, (a0)",
            "add a0, a0, s9",
            "vle8.v v27, (a0)",
            "add a0, a0, s9",
            "vle8.v v28, (a0)",
            "add a0, a0, s9",
            "vle8.v v29, (a0)",
            "add a0, a0, s9",
            "vle8.v v30, (a0)",
            "add a0, a0, s9",
            "vle8.v v31, (a0)",
            "li t5, 1",
            "li a1, 1069056",
            "li a0, 1048576",
            "vle8.v v4, (a0)",
            "li a0, 1056768",
            "vle8.v v5, (a0)",
            "li a0, 64",
            "vsetvli zero, a0, e32,m4",
            "vle32.v v0, (a1)",
            "li a0, 64",
            "vsetvli zero, a0, e8,m1",
            "li t4, 2",
            "vindexmac.vvi v0, v4, v5, 0",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "vindexmac.vvi v0, v4, v5, 1",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "li a0, 64",
            "vsetvli zero, a0, e32,m4",
            "vse32.v v0, (a1)",
            "li a0, 64",
            "vsetvli zero, a0, e8,m1",
            "addi t5, t5, -1",
        ],
    );
}

#[test]
fn indexmac2_e8_transformer_ffn_prefix_is_stable() {
    // A transformer-shaped layout through the grouped kernel family at
    // its e8 operating point (the widening i32 accumulator caps the
    // grouping at m1 there): 2 rows of a BERT-style FFN weight matrix
    // (`d_model = 768` inputs), 128 sequence-batched columns. Unlike
    // the tiny CNN-era snapshots, the inner dimension spans 48 k-tiles
    // and the 128 columns need two 64-element e8 column tiles — the
    // prologue pins the full L=16 tile preload and the loop bounds, so
    // transformer-shaped codegen is diff-locked like the CNN shapes.
    let a = quant::random_structured_int(2, 768, NmPattern::P2_4, 7, ElemType::I8);
    let layout =
        GemmLayout::plan_elem(&a, 128, &SimConfig::table_i(), 16, 1, ElemType::I8).unwrap();
    assert_eq!(layout.num_ktiles, 48);
    assert_eq!(layout.num_coltiles, 2);
    let p = indexmac2::build(
        &layout,
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_prefix(
        "indexmac2-e8-ffn",
        &p,
        &[
            "li a0, 64",
            "vsetvli zero, a0, e8,m1",
            "li s9, 128",
            "li s6, 48",
            "li t6, 2",
            "li a0, 1069056",
            "vle8.v v16, (a0)",
            "add a0, a0, s9",
            "vle8.v v17, (a0)",
            "add a0, a0, s9",
            "vle8.v v18, (a0)",
            "add a0, a0, s9",
            "vle8.v v19, (a0)",
            "add a0, a0, s9",
            "vle8.v v20, (a0)",
            "add a0, a0, s9",
            "vle8.v v21, (a0)",
            "add a0, a0, s9",
            "vle8.v v22, (a0)",
            "add a0, a0, s9",
            "vle8.v v23, (a0)",
            "add a0, a0, s9",
            "vle8.v v24, (a0)",
            "add a0, a0, s9",
            "vle8.v v25, (a0)",
            "add a0, a0, s9",
            "vle8.v v26, (a0)",
            "add a0, a0, s9",
            "vle8.v v27, (a0)",
            "add a0, a0, s9",
            "vle8.v v28, (a0)",
            "add a0, a0, s9",
            "vle8.v v29, (a0)",
            "add a0, a0, s9",
            "vle8.v v30, (a0)",
            "add a0, a0, s9",
            "vle8.v v31, (a0)",
            "li t5, 2",
            "li a1, 1167360",
            "li a0, 1048576",
        ],
    );
}

#[test]
fn indexmac_e16_kernel_prefix_is_stable() {
    // Algorithm 3 at e16: 32-element tiles, `vle16` B/metadata loads,
    // the slide walk shifting 16-bit lanes, and the i32 accumulator as
    // the v0v1 pair under e32,m2.
    let p = indexmac::build(
        &tiny_int_layout(ElemType::I16),
        &KernelParams {
            unroll: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_prefix(
        "indexmac-e16",
        &p,
        &[
            "li a0, 32",
            "vsetvli zero, a0, e16,m1",
            "li s9, 64",
            "li s6, 1",
            "li t6, 1",
            "li a0, 1064960",
            "vle16.v v24, (a0)",
            "add a0, a0, s9",
            "vle16.v v25, (a0)",
            "add a0, a0, s9",
            "vle16.v v26, (a0)",
            "add a0, a0, s9",
            "vle16.v v27, (a0)",
            "add a0, a0, s9",
            "vle16.v v28, (a0)",
            "add a0, a0, s9",
            "vle16.v v29, (a0)",
            "add a0, a0, s9",
            "vle16.v v30, (a0)",
            "add a0, a0, s9",
            "vle16.v v31, (a0)",
            "li t5, 1",
            "li a1, 1069056",
            "li a0, 1048576",
            "vle16.v v2, (a0)",
            "li a0, 1056768",
            "vle16.v v3, (a0)",
            "li a0, 32",
            "vsetvli zero, a0, e32,m2",
            "vle32.v v0, (a1)",
            "li a0, 32",
            "vsetvli zero, a0, e16,m1",
            "li t4, 2",
            "vmv.x.s t0, v3",
            "vindexmac.vx v0, v2, t0",
            "vslide1down.vx v2, v2, zero",
            "vslide1down.vx v3, v3, zero",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "vmv.x.s t0, v3",
            "vindexmac.vx v0, v2, t0",
            "vslide1down.vx v2, v2, zero",
            "vslide1down.vx v3, v3, zero",
            "addi t4, t4, -1",
            "bne t4, zero, 1",
            "li a0, 32",
            "vsetvli zero, a0, e32,m2",
            "vse32.v v0, (a1)",
        ],
    );
}

#[test]
fn comments_describe_tile_preloads() {
    let layout = tiny_layout();
    let p = indexmac::build(&layout, &KernelParams::default()).unwrap();
    let text = p.to_string();
    assert!(text.contains("preload B tile kt=0 ct=0"));
}
