//! Cross-kernel differential property suite.
//!
//! Every kernel builder compiles the *same* mathematical product to a
//! different instruction stream (dense broadcast, per-nonzero loads,
//! `vindexmac.vx` + slides, scalar-indexed, `vindexmac.vvi`, grouped
//! `vindexmac.vvi`). Over random `(pattern, dims, unroll, dataflow)`
//! draws, all of them must:
//!
//! * produce a product agreeing with the host-side reference within the
//!   `k`-scaled tolerance, and
//! * satisfy the per-run [`RunReport`] invariants: non-zero cycles and
//!   instructions, and a vector-MAC count exactly matching the
//!   slot-derived expectation of the layout.
//!
//! The kernel family additionally runs at **every supported SEW**: the
//! `vindexmac` kernels are re-drawn at e8/e16, where the product must
//! match the exact i32 reference **bit-for-bit** (no tolerance) and the
//! narrow datapath must never issue more vector instructions than the
//! same shape at e32.
//!
//! The random case count honours `PROPTEST_CASES` like the rest of the
//! workspace's property suites (CI pins it for a deterministic budget).

use indexmac_isa::{InstrClass, Program};
use indexmac_kernels::{
    dense, indexmac, indexmac2, rowwise, scalar_idx, verify, Dataflow, ElemType, GemmLayout,
    KernelParams,
};
use indexmac_sparse::{prune, quant, DenseMatrix, NmPattern, StructuredSparseMatrix};
use indexmac_vpu::{RunReport, SimConfig};
use proptest::prelude::*;

const TILE_ROWS: usize = 16;

fn cfg() -> SimConfig {
    SimConfig::table_i()
}

fn pattern_strategy() -> impl Strategy<Value = NmPattern> {
    prop_oneof![
        Just(NmPattern::ALL[0]),
        Just(NmPattern::ALL[1]),
        Just(NmPattern::ALL[2]),
    ]
}

fn dataflow_strategy() -> impl Strategy<Value = Dataflow> {
    prop_oneof![
        Just(Dataflow::AStationary),
        Just(Dataflow::BStationary),
        Just(Dataflow::CStationary),
    ]
}

/// Deliberately awkward shapes: none of rows/inner/cols need divide the
/// unroll factor, tile rows or vector length.
fn dims_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=9, 1usize..=48, 1usize..=36)
}

fn operands(
    rows: usize,
    inner: usize,
    cols: usize,
    pattern: NmPattern,
    seed: u64,
) -> (StructuredSparseMatrix, DenseMatrix) {
    let a = prune::random_structured(rows, inner, pattern, seed);
    let b = DenseMatrix::random(inner, cols, seed.wrapping_add(1));
    (a, b)
}

fn int_operands(
    rows: usize,
    inner: usize,
    cols: usize,
    pattern: NmPattern,
    seed: u64,
    elem: ElemType,
) -> (StructuredSparseMatrix, DenseMatrix) {
    let a = quant::random_structured_int(rows, inner, pattern, seed, elem);
    let b = quant::random_dense_int(inner, cols, seed.wrapping_add(1), elem);
    (a, b)
}

fn elem_strategy() -> impl Strategy<Value = ElemType> {
    prop_oneof![Just(ElemType::I8), Just(ElemType::I16)]
}

/// Runs one built program and enforces the shared report invariants.
fn run_checked(
    name: &str,
    program: &Program,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    layout: &GemmLayout,
) -> Result<RunReport, TestCaseError> {
    let run = verify::run_kernel(program, a, b, layout, &cfg())
        .map_err(|e| TestCaseError::fail(format!("{name}: simulation failed: {e}")))?;
    verify::check_against_reference(&run, a, b, verify::default_tolerance(layout.dims.inner))
        .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
    prop_assert!(run.report.cycles > 0, "{}: zero cycles", name);
    prop_assert!(run.report.instructions > 0, "{}: zero instret", name);
    prop_assert!(
        run.report.cycles >= run.report.instructions / cfg().issue_width as u64,
        "{}: cycles below the issue-width floor",
        name
    );
    Ok(run.report)
}

/// The fixed-format slot count every sparse kernel iterates, padding
/// included: one vector MAC per (row, slot, k-tile, column tile).
fn expected_sparse_macs(layout: &GemmLayout) -> u64 {
    (layout.dims.rows * layout.slots_per_tile * layout.num_ktiles * layout.num_coltiles) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All five kernels agree with the reference product and report
    /// exactly the slot-derived vector-MAC counts.
    #[test]
    fn all_kernels_agree_with_reference(
        dims in dims_strategy(),
        pattern in pattern_strategy(),
        unroll in 1usize..=4,
        dataflow in dataflow_strategy(),
        seed in 0u64..1000,
    ) {
        let (rows, inner, cols) = dims;
        let (a, b) = operands(rows, inner, cols, pattern, seed);
        let layout = GemmLayout::plan(&a, cols, &cfg(), TILE_ROWS).unwrap();
        let params = KernelParams { unroll, dataflow };
        let sparse_macs = expected_sparse_macs(&layout);

        // Algorithm 1 (dense) multiplies every inner element.
        let p = dense::build(&layout, &params).unwrap();
        let r = run_checked("dense", &p, &a, &b, &layout)?;
        prop_assert_eq!(
            r.counts.get(InstrClass::VMac),
            (rows * inner * layout.num_coltiles) as u64,
            "dense MAC count"
        );
        prop_assert_eq!(r.counts.get(InstrClass::VIndexMac), 0);

        // Algorithm 2 (Row-Wise-SpMM) under the drawn dataflow.
        let p = rowwise::build(&layout, &params).unwrap();
        let r = run_checked("rowwise", &p, &a, &b, &layout)?;
        prop_assert_eq!(r.counts.get(InstrClass::VMac), sparse_macs, "rowwise MAC count");
        prop_assert_eq!(r.counts.get(InstrClass::VIndexMac), 0);

        // Algorithm 3 (vindexmac.vx).
        let p = indexmac::build(&layout, &params).unwrap();
        let r = run_checked("indexmac", &p, &a, &b, &layout)?;
        prop_assert_eq!(r.counts.get(InstrClass::VIndexMac), sparse_macs, "vx MAC count");
        prop_assert!(r.v2s_syncs >= sparse_macs, "vx pays a vmv.x.s per nonzero slot");

        // Scalar-indexed ablation.
        let p = scalar_idx::build(&layout, &params).unwrap();
        let r = run_checked("scalar_idx", &p, &a, &b, &layout)?;
        prop_assert_eq!(r.counts.get(InstrClass::VIndexMac), sparse_macs, "scalar MAC count");
        prop_assert_eq!(r.v2s_syncs, 0, "scalar_idx avoids cross-domain moves");

        // Second generation (vindexmac.vvi).
        let p = indexmac2::build(&layout, &params).unwrap();
        let r = run_checked("indexmac2", &p, &a, &b, &layout)?;
        prop_assert_eq!(r.counts.get(InstrClass::VIndexMac), sparse_macs, "vvi MAC count");
        prop_assert_eq!(r.v2s_syncs, 0, "vvi keeps the index inside the VRF");
        prop_assert_eq!(r.counts.get(InstrClass::VSlide), 0, "vvi has no slide walk");
    }

    /// The second-generation kernel beats Algorithm 3 on dynamic
    /// instructions on every draw, and on cycles whenever the problem
    /// has enough non-zeros for the steady state to dominate.
    #[test]
    fn indexmac2_never_loses_to_indexmac(
        dims in dims_strategy(),
        pattern in pattern_strategy(),
        unroll in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let (rows, inner, cols) = dims;
        let (a, b) = operands(rows, inner, cols, pattern, seed);
        let layout = GemmLayout::plan(&a, cols, &cfg(), TILE_ROWS).unwrap();
        let params = KernelParams { unroll, ..Default::default() };
        let r1 = run_checked("vx", &indexmac::build(&layout, &params).unwrap(), &a, &b, &layout)?;
        let r2 = run_checked("vvi", &indexmac2::build(&layout, &params).unwrap(), &a, &b, &layout)?;
        prop_assert!(
            r2.instructions < r1.instructions,
            "vvi {} instret vs vx {}",
            r2.instructions,
            r1.instructions
        );
        prop_assert!(
            r2.cycles <= r1.cycles,
            "vvi {} cycles vs vx {}",
            r2.cycles,
            r1.cycles
        );
    }

    /// Register-grouped layouts compute the same product; the MAC-count
    /// invariant holds against *their own* (coarser) tiling.
    #[test]
    fn grouped_indexmac2_agrees_with_reference(
        dims in dims_strategy(),
        pattern in prop_oneof![Just(NmPattern::P1_4), Just(NmPattern::P2_4)],
        lmul in prop_oneof![Just(2usize), Just(4usize)],
        unroll in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let (rows, inner, cols) = dims;
        let (a, b) = operands(rows, inner, cols, pattern, seed);
        let tile_rows = GemmLayout::fit_tile_rows(TILE_ROWS, lmul, pattern);
        let layout = GemmLayout::plan_grouped(&a, cols, &cfg(), tile_rows, lmul).unwrap();
        let params = KernelParams {
            unroll: unroll.min(indexmac2::max_unroll(&layout)).max(1),
            ..Default::default()
        };
        let p = indexmac2::build(&layout, &params).unwrap();
        let r = run_checked(&format!("vvi-m{lmul}"), &p, &a, &b, &layout)?;
        prop_assert_eq!(r.counts.get(InstrClass::VIndexMac), expected_sparse_macs(&layout));
        prop_assert_eq!(r.v2s_syncs, 0);
    }

    /// The kernel family at every supported SEW: both `vindexmac`
    /// kernels compute the **bit-exact** i32 product at e8/e16 over
    /// random draws, with the same slot-derived MAC-count invariant —
    /// and the e8 run never issues more vector instructions than the
    /// same shape at e32.
    #[test]
    fn quantized_kernels_agree_with_exact_reference(
        dims in dims_strategy(),
        pattern in pattern_strategy(),
        elem in elem_strategy(),
        unroll in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let (rows, inner, cols) = dims;
        let (a, b) = int_operands(rows, inner, cols, pattern, seed, elem);
        let layout = GemmLayout::plan_elem(&a, cols, &cfg(), TILE_ROWS, 1, elem).unwrap();
        let sparse_macs = expected_sparse_macs(&layout);

        let v1_params = KernelParams {
            unroll: unroll.min(indexmac::max_unroll(&layout)).max(1),
            ..Default::default()
        };
        let p1 = indexmac::build(&layout, &v1_params).unwrap();
        let run1 = verify::run_kernel(&p1, &a, &b, &layout, &cfg())
            .map_err(|e| TestCaseError::fail(format!("{elem} vx: {e}")))?;
        verify::check_int_exact(&run1, &a, &b)
            .map_err(|e| TestCaseError::fail(format!("{elem} vx: {e}")))?;
        prop_assert_eq!(run1.report.counts.get(InstrClass::VIndexMac), sparse_macs);
        prop_assert!(run1.report.v2s_syncs >= sparse_macs);

        let v2_params = KernelParams {
            unroll: unroll.min(indexmac2::max_unroll(&layout)).max(1),
            ..Default::default()
        };
        let p2 = indexmac2::build(&layout, &v2_params).unwrap();
        let run2 = verify::run_kernel(&p2, &a, &b, &layout, &cfg())
            .map_err(|e| TestCaseError::fail(format!("{elem} vvi: {e}")))?;
        verify::check_int_exact(&run2, &a, &b)
            .map_err(|e| TestCaseError::fail(format!("{elem} vvi: {e}")))?;
        prop_assert_eq!(run2.report.counts.get(InstrClass::VIndexMac), sparse_macs);
        prop_assert_eq!(run2.report.v2s_syncs, 0, "vvi keeps the index inside the VRF");

        // SEW scaling: the narrow datapath never needs more vector
        // instructions than the same GEMM at e32.
        let (fa, fb) = operands(rows, inner, cols, pattern, seed);
        let flayout = GemmLayout::plan(&fa, cols, &cfg(), TILE_ROWS).unwrap();
        let fp = indexmac2::build(&flayout, &v2_params).unwrap();
        let frun = run_checked("vvi-e32", &fp, &fa, &fb, &flayout)?;
        prop_assert!(
            run2.report.counts.vector_total() <= frun.counts.vector_total(),
            "{}: e-narrow {} vector ops vs e32 {}",
            elem,
            run2.report.counts.vector_total(),
            frun.counts.vector_total()
        );
    }
}
