//! Dataflow (loop-order) choices for the Row-Wise-SpMM baseline.
//!
//! Section IV-A of the paper: "we tested all three dataflow types for
//! 'Row-Wise-SpMM', i.e., A-, B-, and C-stationary. The experimental
//! results show that the B-stationary dataflow (used by 'Proposed') also
//! yields the best total execution times for 'Row-Wise-SpMM'." The
//! `ablate_dataflow` bench reproduces that comparison.

use std::fmt;

/// Which operand stays resident across the innermost loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Rows of A (and their metadata) are walked in the outer loop;
    /// loop order `i -> k-tile -> col-tile`.
    AStationary,
    /// A tile of B stays resident while all rows of A stream past it;
    /// loop order `k-tile -> col-tile -> i`. The paper's choice for both
    /// kernels (and the only order that lets Algorithm 3 pin the tile in
    /// the vector register file).
    #[default]
    BStationary,
    /// A row of partial sums of C stays resident while the k-tiles
    /// stream; loop order `i -> col-tile -> k-tile`. Minimises stores
    /// (the paper notes this "does not improve the total execution
    /// time").
    CStationary,
}

impl Dataflow {
    /// All three dataflows, for sweeps.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::AStationary,
        Dataflow::BStationary,
        Dataflow::CStationary,
    ];
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dataflow::AStationary => write!(f, "A-stationary"),
            Dataflow::BStationary => write!(f, "B-stationary"),
            Dataflow::CStationary => write!(f, "C-stationary"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_b_stationary() {
        assert_eq!(Dataflow::default(), Dataflow::BStationary);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataflow::BStationary.to_string(), "B-stationary");
        assert_eq!(Dataflow::ALL.len(), 3);
    }
}
