//! **Algorithm 3** — the proposed kernel: B-tile resident in the vector
//! register file plus `vindexmac.vx`.
//!
//! Per k-tile and column tile, `L` rows of B are pre-loaded into
//! `v(32-L)..v31` (paper lines 2–4). Per non-zero slot the inner loop is
//! then just (paper lines 10–13):
//!
//! ```text
//! vmv.x.s      t, v_colidx            # index to scalar reg   (line 10)
//! vindexmac.vx v_c, v_values, t       #                       (line 11)
//! vslide1down  v_values               #                       (line 12)
//! vslide1down  v_colidx               #                       (line 13)
//! ```
//!
//! Compared with Algorithm 2 this removes the per-nonzero vector load
//! *and* one of the two cross-domain moves — the `vindexmac` instruction
//! reads the value directly from `v_values[0]` and the B row directly
//! from the register file. The kernel is B-stationary by construction
//! (that is what makes the tile pinnable at all).

use crate::emit::{
    c_addr_xreg, c_vreg_w, colidx_vreg_w, emit_loop_step, emit_vload_abs_sew, emit_vsetvli_sew,
    finish, require_ungrouped, scratch_xreg, values_vreg_w, vload_instr, ADDR_SCRATCH,
    CTR_COLTILES, CTR_KTILES, CTR_NNZ, CTR_ROWS, MAX_UNROLL, ROW_STRIDE,
};
use crate::error::KernelError;
use crate::layout::GemmLayout;
use crate::KernelParams;
use indexmac_isa::{Instruction, Lmul, Program, ProgramBuilder, VReg, XReg};

/// Largest unroll factor whose accumulator groups and metadata
/// registers fit below the resident tile: at the quantized widths the
/// widening accumulator takes `32/SEW` registers per unrolled row, so
/// `u * (widen + 2) <= tile_vreg_base`.
pub fn max_unroll(layout: &GemmLayout) -> usize {
    let widen = layout.elem.widen();
    if widen == 1 {
        MAX_UNROLL
    } else {
        (layout.tile_vreg_base as usize / (widen + 2)).min(MAX_UNROLL)
    }
}

/// Builds the proposed vindexmac kernel for `layout`.
///
/// `params.dataflow` is ignored: Algorithm 3 is inherently B-stationary.
/// Quantized layouts ([`indexmac_sparse::ElemType::I8`]/`I16`) emit the
/// widening variant: B tiles, metadata loads and the slide walk run at
/// the narrow SEW, while the C accumulators are `32/SEW`-register
/// groups loaded and stored at `e32,m{32/SEW}`.
///
/// # Errors
///
/// Returns [`KernelError::BadUnroll`] when `params.unroll` is zero or
/// exceeds [`max_unroll`] for the layout's precision.
pub fn build(layout: &GemmLayout, params: &KernelParams) -> Result<Program, KernelError> {
    require_ungrouped(layout)?;
    if params.unroll == 0 || params.unroll > max_unroll(layout) {
        return Err(KernelError::BadUnroll {
            unroll: params.unroll,
            max: max_unroll(layout),
        });
    }
    let unroll = params.unroll;
    let sew = layout.sew();
    let widen = layout.elem.widen();
    let acc_grouping = Lmul::from_factor(widen).expect("widen is 1, 2 or 4");
    let mut b = ProgramBuilder::new();
    b.comment("prologue: vl = VLMAX at the operand SEW, row stride constant");
    emit_vsetvli_sew(&mut b, layout.vl, sew, Lmul::M1);
    b.li(ROW_STRIDE, layout.row_stride_bytes as i64);

    let groups: Vec<(usize, usize)> = (0..layout.dims.rows.div_ceil(unroll))
        .map(|g| {
            let row0 = g * unroll;
            (row0, unroll.min(layout.dims.rows - row0))
        })
        .collect();

    b.li(CTR_KTILES, layout.num_ktiles as i64);
    for kt in 0..layout.num_ktiles {
        b.li(CTR_COLTILES, layout.num_coltiles as i64);
        for ct in 0..layout.num_coltiles {
            emit_tile_preload(&mut b, layout, kt, ct);
            b.li(CTR_ROWS, groups.len() as i64);
            for &(row0, u_eff) in &groups {
                // Per-row metadata + C loads (paper lines 6–8).
                for r in 0..u_eff {
                    let row = row0 + r;
                    b.li(c_addr_xreg(r), layout.c_addr(row, ct * layout.vl) as i64);
                    emit_vload_abs_sew(
                        &mut b,
                        values_vreg_w(r, unroll, widen),
                        layout.values_addr(row, kt),
                        sew,
                    );
                    emit_vload_abs_sew(
                        &mut b,
                        colidx_vreg_w(r, unroll, widen),
                        layout.colidx_vregs_addr(row, kt),
                        sew,
                    );
                }
                // The widening accumulator is an e32 group of `widen`
                // registers: load it under e32,m{widen}, then return to
                // the operand SEW for the MAC walk.
                if widen > 1 {
                    emit_vsetvli_sew(&mut b, layout.vl, indexmac_isa::Sew::E32, acc_grouping);
                }
                for r in 0..u_eff {
                    b.push(Instruction::Vle32 {
                        vd: c_vreg_w(r, widen),
                        rs1: c_addr_xreg(r),
                    });
                }
                if widen > 1 {
                    emit_vsetvli_sew(&mut b, layout.vl, sew, Lmul::M1);
                }
                // Inner loop over the fixed N*L/M slots (lines 9–14).
                b.li(CTR_NNZ, layout.slots_per_tile as i64);
                for _q in 0..layout.slots_per_tile {
                    for r in 0..u_eff {
                        b.push(Instruction::VmvXs {
                            rd: scratch_xreg(r),
                            vs2: colidx_vreg_w(r, unroll, widen),
                        });
                    }
                    for r in 0..u_eff {
                        b.push(Instruction::VindexmacVx {
                            vd: c_vreg_w(r, widen),
                            vs2: values_vreg_w(r, unroll, widen),
                            rs: scratch_xreg(r),
                        });
                    }
                    for r in 0..u_eff {
                        b.push(Instruction::Vslide1downVx {
                            vd: values_vreg_w(r, unroll, widen),
                            vs2: values_vreg_w(r, unroll, widen),
                            rs1: XReg::ZERO,
                        });
                        b.push(Instruction::Vslide1downVx {
                            vd: colidx_vreg_w(r, unroll, widen),
                            vs2: colidx_vreg_w(r, unroll, widen),
                            rs1: XReg::ZERO,
                        });
                    }
                    emit_loop_step(&mut b, CTR_NNZ);
                }
                // Store the updated C slices (line 15).
                if widen > 1 {
                    emit_vsetvli_sew(&mut b, layout.vl, indexmac_isa::Sew::E32, acc_grouping);
                }
                for r in 0..u_eff {
                    b.push(Instruction::Vse32 {
                        vs3: c_vreg_w(r, widen),
                        rs1: c_addr_xreg(r),
                    });
                }
                if widen > 1 {
                    emit_vsetvli_sew(&mut b, layout.vl, sew, Lmul::M1);
                }
                emit_loop_step(&mut b, CTR_ROWS);
            }
            emit_loop_step(&mut b, CTR_COLTILES);
        }
        emit_loop_step(&mut b, CTR_KTILES);
    }
    b.halt();
    Ok(finish(b, layout))
}

/// Pre-loads the `L x VL` tile `B[kt*L .., ct*VL ..]` into the top of
/// the vector register file (paper Algorithm 3 lines 2–4), at the
/// operand element width.
fn emit_tile_preload(b: &mut ProgramBuilder, layout: &GemmLayout, kt: usize, ct: usize) {
    b.comment(format!(
        "preload B tile kt={kt} ct={ct} into v{}..v31",
        layout.tile_vreg_base
    ));
    b.li(
        ADDR_SCRATCH,
        layout.b_addr(kt * layout.tile_rows, ct * layout.vl) as i64,
    );
    for l in 0..layout.tile_rows {
        b.push(vload_instr(
            layout.sew(),
            VReg::new(layout.tile_vreg_base + l as u8),
            ADDR_SCRATCH,
        ));
        if l + 1 < layout.tile_rows {
            b.add(ADDR_SCRATCH, ADDR_SCRATCH, ROW_STRIDE);
        }
    }
}

/// Static count of `vindexmac.vx` instructions in a program.
pub fn count_indexmacs(program: &Program) -> usize {
    program.count(|i| matches!(i, Instruction::VindexmacVx { .. }))
}

/// Static count of B-tile preload loads (any-width unit-stride loads
/// into the tile range — `vle8`/`vle16`/`vle32` per the layout's SEW).
pub fn count_preloads(program: &Program, layout: &GemmLayout) -> usize {
    program.count(|i| {
        matches!(
            i,
            Instruction::Vle8 { vd, .. }
                | Instruction::Vle16 { vd, .. }
                | Instruction::Vle32 { vd, .. }
            if vd.index() >= layout.tile_vreg_base
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowwise;
    use indexmac_sparse::{prune, NmPattern};
    use indexmac_vpu::SimConfig;

    fn layout(pattern: NmPattern) -> GemmLayout {
        let a = prune::random_structured(6, 32, pattern, 11);
        GemmLayout::plan(&a, 20, &SimConfig::table_i(), 16).unwrap()
    }

    #[test]
    fn instruction_counts_match_structure() {
        let l = layout(NmPattern::P1_4);
        let p = build(&l, &KernelParams::default()).unwrap();
        // One vindexmac per (row, slot, ktile, coltile).
        let expected = l.dims.rows * l.slots_per_tile * l.num_ktiles * l.num_coltiles;
        assert_eq!(count_indexmacs(&p), expected);
        // L preloads per (ktile, coltile).
        assert_eq!(
            count_preloads(&p, &l),
            l.tile_rows * l.num_ktiles * l.num_coltiles
        );
    }

    #[test]
    fn no_per_nonzero_b_loads() {
        let l = layout(NmPattern::P2_4);
        let p = build(&l, &KernelParams::default()).unwrap();
        // The only vector loads are tile preloads, metadata and C rows —
        // none through the per-row scratch registers.
        assert_eq!(rowwise::count_b_loads(&p), 0);
    }

    #[test]
    fn fewer_static_instructions_than_rowwise_inner() {
        // The paper: 3 instructions (lines 8-10 of Alg2) become 2
        // (lines 10-11 of Alg3). Compare per-nonzero op counts.
        let l = layout(NmPattern::P1_4);
        let p3 = build(&l, &KernelParams::default()).unwrap();
        let p2 = rowwise::build(&l, &KernelParams::default()).unwrap();
        let nnz_ops = l.dims.rows * l.slots_per_tile * l.num_ktiles * l.num_coltiles;
        // Alg2 per nonzero: vmv.x.s + vle32 + vfmv.f.s + vfmacc + 2 slides = 6
        // Alg3 per nonzero: vmv.x.s + vindexmac + 2 slides = 4
        let vec_ops =
            |p: &Program| p.count(|i| i.is_vector() && !matches!(i, Instruction::Vsetvli { .. }));
        let diff = vec_ops(&p2) as i64 - vec_ops(&p3) as i64;
        // Alg3 adds preloads; Alg2 has 2 extra ops per nonzero plus the
        // per-group address adjust.
        let preloads = (l.tile_rows * l.num_ktiles * l.num_coltiles) as i64;
        let adjusts = (l.dims.rows * l.num_ktiles * l.num_coltiles) as i64;
        assert_eq!(diff, 2 * nnz_ops as i64 + adjusts - preloads);
    }

    #[test]
    fn rejects_bad_unroll() {
        let l = layout(NmPattern::P1_4);
        assert!(matches!(
            build(
                &l,
                &KernelParams {
                    unroll: 9,
                    ..Default::default()
                }
            ),
            Err(KernelError::BadUnroll { .. })
        ));
    }

    #[test]
    fn smaller_tile_rows_supported() {
        let a = prune::random_structured(4, 32, NmPattern::P1_4, 3);
        let l = GemmLayout::plan(&a, 16, &SimConfig::table_i(), 8).unwrap();
        assert_eq!(l.tile_vreg_base, 24);
        let p = build(&l, &KernelParams::default()).unwrap();
        assert!(count_preloads(&p, &l) > 0);
    }
}
