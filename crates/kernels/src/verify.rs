//! Running kernels on the simulator and checking results against the
//! reference product.

use crate::layout::GemmLayout;
use indexmac_isa::Program;
use indexmac_sparse::{quant, DenseMatrix, IntMatrix, StructuredSparseMatrix};
use indexmac_vpu::{Analysis, DecodedProgram, RunReport, SimConfig, SimError, Simulator, Verified};
use std::error::Error;
use std::fmt;

/// Tolerance for comparing simulated and reference products on a GEMM
/// with inner dimension `inner`.
///
/// The kernels and reference accumulate the same terms, but not always
/// in the same grouping (tiling changes the association), so rounding
/// error grows with the length of the reduction. A flat bound (the old
/// `1e-4`) is both needlessly slack for tiny GEMMs and — because the
/// worst-case drift of a `k`-term float32 reduction is `O(k · eps ·
/// |partial sums|)` — a flake waiting to happen at `k` in the
/// thousands. This bound scales linearly with `k`, floored so tiny
/// reductions keep a workable allowance:
/// `max(k, 64) * 8 * f32::EPSILON` (≈ `6.1e-5` up to `k = 64`,
/// ≈ `3.9e-3` at `k = 4096`).
pub fn default_tolerance(inner: usize) -> f32 {
    (inner.max(64) as f32) * 8.0 * f32::EPSILON
}

/// Result of one simulated kernel execution.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// The computed product, read back from simulated memory. On the
    /// quantized paths this is the i32 accumulator converted to `f32`
    /// for display — exactness lives in [`KernelRun::c_int`].
    pub c: DenseMatrix,
    /// The i32 accumulator-domain product of a quantized run (`None`
    /// for f32 layouts). Compared with `==` against the exact integer
    /// reference — no tolerance.
    pub c_int: Option<IntMatrix>,
    /// Timing/traffic measurements.
    pub report: RunReport,
    /// Static program length in instructions.
    pub static_instructions: usize,
}

/// Verification errors.
#[derive(Debug)]
pub enum VerifyError {
    /// The simulator faulted.
    Sim(SimError),
    /// The computed product diverged from the reference.
    Mismatch {
        /// Largest absolute element difference.
        max_abs_diff: f32,
        /// Tolerance that was exceeded.
        tolerance: f32,
    },
    /// A quantized product diverged from the exact i32 reference —
    /// integer arithmetic admits no tolerance, so a single-LSB error is
    /// reported with its position and both values.
    IntMismatch {
        /// Row of the first mismatching element.
        row: usize,
        /// Column of the first mismatching element.
        col: usize,
        /// The kernel's value.
        got: i32,
        /// The reference value.
        want: i32,
    },
    /// Operand shapes disagree with the layout.
    ShapeMismatch,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Sim(e) => write!(f, "simulation failed: {e}"),
            VerifyError::Mismatch {
                max_abs_diff,
                tolerance,
            } => write!(
                f,
                "kernel result differs from reference by {max_abs_diff} (tolerance {tolerance})"
            ),
            VerifyError::IntMismatch {
                row,
                col,
                got,
                want,
            } => write!(
                f,
                "quantized kernel result differs from the exact i32 reference at \
                 ({row},{col}): got {got}, want {want}"
            ),
            VerifyError::ShapeMismatch => write!(f, "operand shapes disagree with the layout"),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> Self {
        VerifyError::Sim(e)
    }
}

/// Places the operands, runs `program` with full timing, and returns the
/// product and measurements.
///
/// # Errors
///
/// Returns [`VerifyError::ShapeMismatch`] on inconsistent operands and
/// [`VerifyError::Sim`] on simulator faults.
pub fn run_kernel(
    program: &Program,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    layout: &GemmLayout,
    cfg: &SimConfig,
) -> Result<KernelRun, VerifyError> {
    let mut sim = Simulator::new(*cfg);
    run_decoded_kernel(&mut sim, &DecodedProgram::decode(program), a, b, layout)
}

/// The warm-execution counterpart of [`run_kernel`]: places the
/// operands and runs an **already-decoded** program on a **reusable**
/// simulator. The simulator is reset in place (state and memory, both
/// allocations retained), so an experiment driver can run thousands of
/// cells through one `Simulator` with a `ProgramCache` of decoded
/// kernels, decoding each distinct kernel exactly once. Results are
/// bit-identical to [`run_kernel`] — a reset simulator and a fresh one
/// are indistinguishable, and the timing model is rebuilt cold per run.
///
/// # Errors
///
/// Returns [`VerifyError::ShapeMismatch`] on inconsistent operands and
/// [`VerifyError::Sim`] on simulator faults.
pub fn run_decoded_kernel(
    sim: &mut Simulator,
    program: &DecodedProgram,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    layout: &GemmLayout,
) -> Result<KernelRun, VerifyError> {
    place_operands(sim, a, b, layout)?;
    let report = sim.run_decoded(program)?;
    Ok(read_back(sim, layout, report, program.len()))
}

/// [`run_decoded_kernel`] through the **check-elided fast path**: the
/// caller presents a [`Verified`] token minted by the static analyzer
/// for this exact program and VLEN (see [`analyze_kernel`]), and the
/// engine skips the per-µop fault checks the analysis already proved
/// can never fire. Results are bit-identical to the checked path.
///
/// # Errors
///
/// Returns [`VerifyError::ShapeMismatch`] on inconsistent operands and
/// [`VerifyError::Sim`] on simulator faults (resource limits — the
/// token rules out architectural faults).
pub fn run_decoded_kernel_verified(
    sim: &mut Simulator,
    program: &DecodedProgram,
    token: Verified,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    layout: &GemmLayout,
) -> Result<KernelRun, VerifyError> {
    place_operands(sim, a, b, layout)?;
    let report = sim.run_decoded_verified(program, token)?;
    Ok(read_back(sim, layout, report, program.len()))
}

/// [`run_decoded_kernel`] through the **sharded counting engine**
/// ([`Simulator::run_sharded`]): the run is split at instruction-count
/// checkpoints, each shard is replayed in parallel under a counting
/// observer, and the merged report carries instruction counts and
/// program-issued traffic (sequential metrics — cycles, stalls, hit
/// rates — are zero; see `indexmac_vpu::CountingObserver`). With
/// `token` the shards execute check-elided; without it, fully checked.
/// Returns the run together with the number of shards executed.
///
/// # Errors
///
/// Returns [`VerifyError::ShapeMismatch`] on inconsistent operands and
/// [`VerifyError::Sim`] on simulator faults — the same error, at the
/// same point in the instruction stream, the unsharded run would hit.
pub fn run_decoded_kernel_sharded(
    sim: &mut Simulator,
    program: &DecodedProgram,
    token: Option<Verified>,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    layout: &GemmLayout,
    shard_size: u64,
) -> Result<(KernelRun, usize), VerifyError> {
    place_operands(sim, a, b, layout)?;
    let sharded = sim.run_sharded(program, token, shard_size)?;
    let run = read_back(sim, layout, sharded.report, program.len());
    Ok((run, sharded.shards))
}

/// Statically analyzes a decoded kernel against its layout's memory
/// contract at the configuration's VLEN. `.verified()` on the result
/// yields the [`Verified`] token the fast path consumes; a shipped
/// builder's program always mints one (enforced in debug builds by
/// emission itself).
pub fn analyze_kernel(program: &DecodedProgram, layout: &GemmLayout, cfg: &SimConfig) -> Analysis {
    indexmac_vpu::analyze_with_contract(program, cfg.vlen_bits, Some(&layout.analysis_contract()))
}

fn place_operands(
    sim: &mut Simulator,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    layout: &GemmLayout,
) -> Result<(), VerifyError> {
    if a.shape() != (layout.dims.rows, layout.dims.inner)
        || b.shape() != (layout.dims.inner, layout.dims.cols)
    {
        return Err(VerifyError::ShapeMismatch);
    }
    sim.reset();
    layout.write_operands(a, b, sim.memory_mut());
    Ok(())
}

fn read_back(
    sim: &Simulator,
    layout: &GemmLayout,
    report: RunReport,
    static_instructions: usize,
) -> KernelRun {
    let (c, c_int) = if layout.elem.is_int() {
        let ci = layout.read_c_i32(sim.memory());
        let c = DenseMatrix::from_fn(layout.dims.rows, layout.dims.cols, |r, j| {
            ci.get(r, j) as f32
        });
        (c, Some(ci))
    } else {
        (layout.read_c(sim.memory()), None)
    };
    KernelRun {
        c,
        c_int,
        report,
        static_instructions,
    }
}

/// Checks a kernel run against the structured-sparse reference product.
///
/// # Errors
///
/// Returns [`VerifyError::Mismatch`] when any element differs by more
/// than `tolerance`.
pub fn check_against_reference(
    run: &KernelRun,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    tolerance: f32,
) -> Result<(), VerifyError> {
    let reference = a
        .spmm_reference(b)
        .map_err(|_| VerifyError::ShapeMismatch)?;
    let max_abs_diff = run.c.max_abs_diff(&reference);
    if max_abs_diff > tolerance {
        return Err(VerifyError::Mismatch {
            max_abs_diff,
            tolerance,
        });
    }
    Ok(())
}

/// Checks a quantized kernel run **bit-exactly** against the i32
/// reference product: integer results must match with `==` — the float
/// `default_tolerance` path never applies, so a ±1 LSB error is caught.
///
/// # Errors
///
/// Returns [`VerifyError::IntMismatch`] at the first differing element
/// and [`VerifyError::ShapeMismatch`] when the run carries no integer
/// result (an f32 run routed to the integer checker) or the operands
/// disagree.
pub fn check_int_exact(
    run: &KernelRun,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
) -> Result<(), VerifyError> {
    let got = run.c_int.as_ref().ok_or(VerifyError::ShapeMismatch)?;
    let reference = quant::spmm_reference_i32(a, b).map_err(|_| VerifyError::ShapeMismatch)?;
    if got.shape() != reference.shape() {
        return Err(VerifyError::ShapeMismatch);
    }
    if let Some((row, col, got, want)) = got.first_mismatch(&reference) {
        return Err(VerifyError::IntMismatch {
            row,
            col,
            got,
            want,
        });
    }
    Ok(())
}

/// Convenience: run and verify in one call. Quantized layouts verify
/// bit-exactly via [`check_int_exact`]; f32 layouts use the `k`-scaled
/// tolerance.
///
/// # Errors
///
/// Any of the [`VerifyError`] conditions.
pub fn run_and_check(
    program: &Program,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    layout: &GemmLayout,
    cfg: &SimConfig,
) -> Result<KernelRun, VerifyError> {
    let mut sim = Simulator::new(*cfg);
    run_and_check_decoded(&mut sim, &DecodedProgram::decode(program), a, b, layout)
}

/// [`run_and_check`] over a reusable simulator and a decoded program —
/// the warm-path combination [`run_decoded_kernel`] + the precision's
/// checker.
///
/// # Errors
///
/// Any of the [`VerifyError`] conditions.
pub fn run_and_check_decoded(
    sim: &mut Simulator,
    program: &DecodedProgram,
    a: &StructuredSparseMatrix,
    b: &DenseMatrix,
    layout: &GemmLayout,
) -> Result<KernelRun, VerifyError> {
    let run = run_decoded_kernel(sim, program, a, b, layout)?;
    if layout.elem.is_int() {
        check_int_exact(&run, a, b)?;
    } else {
        check_against_reference(&run, a, b, default_tolerance(layout.dims.inner))?;
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dense, indexmac, indexmac2, rowwise, scalar_idx, Dataflow, KernelParams};
    use indexmac_sparse::{prune, NmPattern};

    fn cfg() -> SimConfig {
        SimConfig::table_i()
    }

    fn fixture(
        rows: usize,
        inner: usize,
        cols: usize,
        pattern: NmPattern,
        seed: u64,
    ) -> (StructuredSparseMatrix, DenseMatrix, GemmLayout) {
        let a = prune::random_structured(rows, inner, pattern, seed);
        let b = DenseMatrix::random(inner, cols, seed + 1);
        let layout = GemmLayout::plan(&a, cols, &cfg(), 16).unwrap();
        (a, b, layout)
    }

    #[test]
    fn rowwise_computes_reference_product() {
        for pattern in NmPattern::ALL {
            let (a, b, layout) = fixture(6, 32, 20, pattern, 42);
            let p = rowwise::build(&layout, &KernelParams::default()).unwrap();
            run_and_check(&p, &a, &b, &layout, &cfg())
                .unwrap_or_else(|e| panic!("pattern {pattern}: {e}"));
        }
    }

    #[test]
    fn rowwise_all_dataflows_agree() {
        let (a, b, layout) = fixture(7, 48, 18, NmPattern::P2_4, 5);
        for df in Dataflow::ALL {
            let p = rowwise::build(
                &layout,
                &KernelParams {
                    unroll: 4,
                    dataflow: df,
                },
            )
            .unwrap();
            run_and_check(&p, &a, &b, &layout, &cfg()).unwrap_or_else(|e| panic!("{df}: {e}"));
        }
    }

    #[test]
    fn indexmac_computes_reference_product() {
        for pattern in NmPattern::ALL {
            let (a, b, layout) = fixture(6, 32, 20, pattern, 43);
            let p = indexmac::build(&layout, &KernelParams::default()).unwrap();
            run_and_check(&p, &a, &b, &layout, &cfg())
                .unwrap_or_else(|e| panic!("pattern {pattern}: {e}"));
        }
    }

    #[test]
    fn indexmac2_computes_reference_product() {
        for pattern in NmPattern::ALL {
            let (a, b, layout) = fixture(6, 32, 20, pattern, 52);
            let p = indexmac2::build(&layout, &KernelParams::default()).unwrap();
            run_and_check(&p, &a, &b, &layout, &cfg())
                .unwrap_or_else(|e| panic!("pattern {pattern}: {e}"));
        }
    }

    #[test]
    fn indexmac2_grouped_computes_reference_product() {
        for (lmul, tile_rows, unroll) in [(2, 8, 4), (4, 4, 2)] {
            let a = prune::random_structured(6, 32, NmPattern::P2_4, 53);
            let b = DenseMatrix::random(32, 40, 54);
            let layout = GemmLayout::plan_grouped(&a, 40, &cfg(), tile_rows, lmul).unwrap();
            let p = indexmac2::build(
                &layout,
                &KernelParams {
                    unroll,
                    ..Default::default()
                },
            )
            .unwrap();
            run_and_check(&p, &a, &b, &layout, &cfg())
                .unwrap_or_else(|e| panic!("lmul {lmul}: {e}"));
        }
    }

    #[test]
    fn second_generation_beats_algorithm_3() {
        let (a, b, layout) = fixture(16, 64, 64, NmPattern::P1_4, 55);
        let v1 = run_and_check(
            &indexmac::build(&layout, &KernelParams::default()).unwrap(),
            &a,
            &b,
            &layout,
            &cfg(),
        )
        .unwrap();
        let v2 = run_and_check(
            &indexmac2::build(&layout, &KernelParams::default()).unwrap(),
            &a,
            &b,
            &layout,
            &cfg(),
        )
        .unwrap();
        assert!(
            v2.report.cycles < v1.report.cycles,
            "vvi {} cycles vs vx {}",
            v2.report.cycles,
            v1.report.cycles
        );
        assert!(
            v2.report.instructions < v1.report.instructions,
            "vvi {} instret vs vx {}",
            v2.report.instructions,
            v1.report.instructions
        );
        assert_eq!(v2.report.v2s_syncs, 0, "no cross-domain coupling left");
        assert!(v1.report.v2s_syncs > 0);
    }

    #[test]
    fn indexmac_all_unrolls_agree() {
        let (a, b, layout) = fixture(5, 32, 33, NmPattern::P1_4, 44);
        for unroll in [1, 2, 3, 4] {
            let p = indexmac::build(
                &layout,
                &KernelParams {
                    unroll,
                    ..Default::default()
                },
            )
            .unwrap();
            run_and_check(&p, &a, &b, &layout, &cfg())
                .unwrap_or_else(|e| panic!("unroll {unroll}: {e}"));
        }
    }

    #[test]
    fn dense_computes_reference_product() {
        let (a, b, layout) = fixture(4, 24, 20, NmPattern::P2_4, 45);
        let p = dense::build(&layout, &KernelParams::default()).unwrap();
        let run = run_kernel(&p, &a, &b, &layout, &cfg()).unwrap();
        let reference = a.to_dense().matmul(&b).unwrap();
        assert!(
            run.c.approx_eq(&reference, default_tolerance(24)),
            "max diff {}",
            run.c.max_abs_diff(&reference)
        );
    }

    #[test]
    fn scalar_idx_computes_reference_product() {
        let (a, b, layout) = fixture(6, 32, 20, NmPattern::P2_4, 46);
        let p = scalar_idx::build(&layout, &KernelParams::default()).unwrap();
        run_and_check(&p, &a, &b, &layout, &cfg()).unwrap();
    }

    #[test]
    fn proposed_beats_baseline_on_cycles_and_traffic() {
        let (a, b, layout) = fixture(16, 64, 64, NmPattern::P1_4, 47);
        let base = run_and_check(
            &rowwise::build(&layout, &KernelParams::default()).unwrap(),
            &a,
            &b,
            &layout,
            &cfg(),
        )
        .unwrap();
        let prop = run_and_check(
            &indexmac::build(&layout, &KernelParams::default()).unwrap(),
            &a,
            &b,
            &layout,
            &cfg(),
        )
        .unwrap();
        assert!(
            prop.report.cycles < base.report.cycles,
            "proposed {} cycles vs baseline {}",
            prop.report.cycles,
            base.report.cycles
        );
        assert!(prop.report.mem.total_accesses() < base.report.mem.total_accesses());
    }

    #[test]
    fn ragged_shapes_still_verify() {
        // Deliberately awkward dims: rows % unroll != 0, inner % L != 0,
        // cols % VL != 0.
        let (a, b, layout) = fixture(5, 19, 21, NmPattern::P1_4, 48);
        for p in [
            rowwise::build(&layout, &KernelParams::default()).unwrap(),
            indexmac::build(&layout, &KernelParams::default()).unwrap(),
        ] {
            run_and_check(&p, &a, &b, &layout, &cfg()).unwrap();
        }
    }

    #[test]
    fn mismatch_detected() {
        let (a, b, layout) = fixture(3, 16, 8, NmPattern::P1_4, 49);
        let p = indexmac::build(&layout, &KernelParams::default()).unwrap();
        let mut run = run_kernel(&p, &a, &b, &layout, &cfg()).unwrap();
        run.c.set(0, 0, run.c.get(0, 0) + 1.0);
        assert!(matches!(
            check_against_reference(&run, &a, &b, default_tolerance(16)),
            Err(VerifyError::Mismatch { .. })
        ));
    }

    #[test]
    fn tolerance_scales_with_inner_dimension() {
        // Tiny reductions get a *tighter* bound than the old flat 1e-4;
        // k = 4096 gets a *looser* one (the flat bound would flake).
        assert!(default_tolerance(16) < 1e-4);
        assert!(default_tolerance(64) < 1e-4);
        assert!(default_tolerance(4096) > 1e-4);
        // Monotone in k above the floor.
        assert!(default_tolerance(8192) > default_tolerance(4096));
        assert_eq!(default_tolerance(1), default_tolerance(64));
    }

    #[test]
    fn deep_reduction_verifies_under_scaled_tolerance() {
        // Regression for the k = 4096 flake: a reduction 256 k-tiles
        // deep must still verify, which the k-scaled bound guarantees
        // headroom for.
        let (a, b, layout) = fixture(2, 4096, 8, NmPattern::P1_4, 51);
        assert_eq!(layout.num_ktiles, 256);
        let p = indexmac::build(&layout, &KernelParams::default()).unwrap();
        run_and_check(&p, &a, &b, &layout, &cfg()).unwrap();
    }

    fn int_fixture(
        rows: usize,
        inner: usize,
        cols: usize,
        pattern: NmPattern,
        elem: indexmac_sparse::ElemType,
        seed: u64,
    ) -> (StructuredSparseMatrix, DenseMatrix, GemmLayout) {
        use indexmac_sparse::quant;
        let a = quant::random_structured_int(rows, inner, pattern, seed, elem);
        let b = quant::random_dense_int(inner, cols, seed + 1, elem);
        let layout = GemmLayout::plan_elem(&a, cols, &cfg(), 16, 1, elem).unwrap();
        (a, b, layout)
    }

    #[test]
    fn quantized_indexmac_kernels_are_bit_exact() {
        use indexmac_sparse::ElemType;
        for elem in [ElemType::I8, ElemType::I16] {
            for pattern in NmPattern::EVALUATED {
                let (a, b, layout) = int_fixture(5, 32, 70, pattern, elem, 60);
                let unroll = crate::indexmac::max_unroll(&layout);
                let params = KernelParams {
                    unroll,
                    ..Default::default()
                };
                let r1 = run_and_check(
                    &crate::indexmac::build(&layout, &params).unwrap(),
                    &a,
                    &b,
                    &layout,
                    &cfg(),
                )
                .unwrap_or_else(|e| panic!("{elem} {pattern} vx: {e}"));
                assert!(r1.c_int.is_some(), "quantized runs carry the i32 product");
                let params2 = KernelParams {
                    unroll: indexmac2::max_unroll(&layout),
                    ..Default::default()
                };
                run_and_check(
                    &indexmac2::build(&layout, &params2).unwrap(),
                    &a,
                    &b,
                    &layout,
                    &cfg(),
                )
                .unwrap_or_else(|e| panic!("{elem} {pattern} vvi: {e}"));
            }
        }
    }

    #[test]
    fn quantized_verification_catches_one_lsb_errors() {
        // Regression: the integer path must compare with `==`, not the
        // float tolerance — a ±1 LSB error anywhere is a hard failure.
        use indexmac_sparse::ElemType;
        let (a, b, layout) = int_fixture(3, 16, 8, NmPattern::P1_4, ElemType::I8, 61);
        let params = KernelParams {
            unroll: indexmac2::max_unroll(&layout),
            ..Default::default()
        };
        let p = indexmac2::build(&layout, &params).unwrap();
        let mut run = run_kernel(&p, &a, &b, &layout, &cfg()).unwrap();
        check_int_exact(&run, &a, &b).expect("unperturbed product is exact");
        let ci = run.c_int.as_mut().unwrap();
        let old = ci.get(1, 3);
        ci.set(1, 3, old + 1); // one LSB off
        match check_int_exact(&run, &a, &b) {
            Err(VerifyError::IntMismatch {
                row: 1,
                col: 3,
                got,
                want,
            }) => {
                assert_eq!(got, want + 1);
            }
            other => panic!("±1 LSB error must be caught, got {other:?}"),
        }
        // -1 LSB equally.
        run.c_int.as_mut().unwrap().set(1, 3, old - 1);
        assert!(matches!(
            check_int_exact(&run, &a, &b),
            Err(VerifyError::IntMismatch { row: 1, col: 3, .. })
        ));
    }

    #[test]
    fn float_runs_reject_the_integer_checker() {
        let (a, b, layout) = fixture(3, 16, 8, NmPattern::P1_4, 62);
        let p = indexmac::build(&layout, &KernelParams::default()).unwrap();
        let run = run_kernel(&p, &a, &b, &layout, &cfg()).unwrap();
        assert!(run.c_int.is_none());
        assert!(matches!(
            check_int_exact(&run, &a, &b),
            Err(VerifyError::ShapeMismatch)
        ));
    }

    #[test]
    fn walk_kernels_reject_quantized_layouts() {
        use crate::KernelError;
        use indexmac_sparse::ElemType;
        let (_, _, layout) = int_fixture(4, 16, 8, NmPattern::P1_4, ElemType::I8, 63);
        for (name, err) in [
            (
                "dense",
                dense::build(&layout, &KernelParams::default()).unwrap_err(),
            ),
            (
                "rowwise",
                rowwise::build(&layout, &KernelParams::default()).unwrap_err(),
            ),
            (
                "scalar_idx",
                scalar_idx::build(&layout, &KernelParams::default()).unwrap_err(),
            ),
        ] {
            assert!(
                matches!(err, KernelError::UnsupportedPrecision { .. }),
                "{name}: {err}"
            );
        }
    }

    #[test]
    fn e8_beats_e32_on_cycles_and_vector_instructions() {
        // The headline of the refactor: at equal dims the e8 datapath
        // covers a column tile with 4x fewer instructions, so IndexMAC2
        // wins on cycles AND dynamic vector instructions, with >= 2x
        // fewer vector instructions in steady state.
        use indexmac_sparse::{prune, ElemType};
        let dims = (16usize, 64usize, 64usize);
        let f_a = prune::random_structured(dims.0, dims.1, NmPattern::P1_4, 70);
        let f_b = DenseMatrix::random(dims.1, dims.2, 71);
        let f_layout = GemmLayout::plan(&f_a, dims.2, &cfg(), 16).unwrap();
        let e32 = run_and_check(
            &indexmac2::build(&f_layout, &KernelParams::default()).unwrap(),
            &f_a,
            &f_b,
            &f_layout,
            &cfg(),
        )
        .unwrap();
        let (a, b, layout) = int_fixture(dims.0, dims.1, dims.2, NmPattern::P1_4, ElemType::I8, 70);
        let params = KernelParams {
            unroll: indexmac2::max_unroll(&layout),
            ..Default::default()
        };
        let e8 = run_and_check(
            &indexmac2::build(&layout, &params).unwrap(),
            &a,
            &b,
            &layout,
            &cfg(),
        )
        .unwrap();
        assert!(
            e8.report.cycles < e32.report.cycles,
            "e8 {} cycles vs e32 {}",
            e8.report.cycles,
            e32.report.cycles
        );
        assert!(
            e8.report.counts.vector_total() * 2 <= e32.report.counts.vector_total(),
            "e8 {} vector instructions vs e32 {}",
            e8.report.counts.vector_total(),
            e32.report.counts.vector_total()
        );
    }

    #[test]
    fn warm_simulator_reuse_is_bit_identical_to_fresh_runs() {
        // One simulator + one decoded program, run across different
        // operand sets, must reproduce the cold per-run path exactly —
        // the contract the core experiment layer's warm path rests on.
        let mut sim = Simulator::new(cfg());
        let (a1, b1, layout) = fixture(6, 32, 20, NmPattern::P1_4, 80);
        let p = indexmac2::build(&layout, &KernelParams::default()).unwrap();
        let decoded = DecodedProgram::decode(&p);

        let warm1 = run_and_check_decoded(&mut sim, &decoded, &a1, &b1, &layout).unwrap();
        let cold1 = run_and_check(&p, &a1, &b1, &layout, &cfg()).unwrap();
        assert_eq!(warm1.report, cold1.report);
        assert_eq!(warm1.c.as_slice(), cold1.c.as_slice());

        // Different operands through the SAME simulator and program:
        // no leakage from the previous run.
        let a2 = prune::random_structured(6, 32, NmPattern::P1_4, 81);
        let b2 = DenseMatrix::random(32, 20, 82);
        let warm2 = run_and_check_decoded(&mut sim, &decoded, &a2, &b2, &layout).unwrap();
        let cold2 = run_and_check(&p, &a2, &b2, &layout, &cfg()).unwrap();
        assert_eq!(warm2.report, cold2.report);
        assert_eq!(warm2.c.as_slice(), cold2.c.as_slice());
        assert_ne!(warm1.c.as_slice(), warm2.c.as_slice());
        assert_eq!(warm2.static_instructions, p.len());
    }

    #[test]
    fn verified_fast_path_is_bit_identical_and_all_builders_mint_tokens() {
        let (a, b, layout) = fixture(6, 32, 20, NmPattern::P2_4, 90);
        let builds: Vec<(&str, Program)> = vec![
            (
                "dense",
                dense::build(&layout, &KernelParams::default()).unwrap(),
            ),
            (
                "rowwise",
                rowwise::build(&layout, &KernelParams::default()).unwrap(),
            ),
            (
                "scalar_idx",
                scalar_idx::build(&layout, &KernelParams::default()).unwrap(),
            ),
            (
                "indexmac",
                indexmac::build(&layout, &KernelParams::default()).unwrap(),
            ),
            (
                "indexmac2",
                indexmac2::build(&layout, &KernelParams::default()).unwrap(),
            ),
        ];
        let mut sim = Simulator::new(cfg());
        for (name, p) in &builds {
            let decoded = DecodedProgram::decode(p);
            let analysis = analyze_kernel(&decoded, &layout, &cfg());
            assert!(
                analysis.diagnostics().is_empty(),
                "{name}: shipped kernels must analyze clean:\n{:?}",
                analysis.diagnostics()
            );
            let token = analysis.verified().expect("clean analysis mints a token");
            let fast = run_decoded_kernel_verified(&mut sim, &decoded, token, &a, &b, &layout)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let checked = run_decoded_kernel(&mut sim, &decoded, &a, &b, &layout).unwrap();
            assert_eq!(fast.report, checked.report, "{name}: reports must match");
            assert_eq!(fast.c.as_slice(), checked.c.as_slice(), "{name}");
        }
    }

    #[test]
    fn sharded_kernel_run_matches_the_timed_run() {
        // The sharded counting engine must reproduce the timed run's
        // architectural results and event counts at any shard size,
        // with and without the check-elision token.
        let (a, b, layout) = fixture(6, 32, 20, NmPattern::P1_4, 91);
        let p = indexmac2::build(&layout, &KernelParams::default()).unwrap();
        let decoded = DecodedProgram::decode(&p);
        let token = analyze_kernel(&decoded, &layout, &cfg())
            .verified()
            .expect("shipped kernel analyzes clean");
        let mut sim = Simulator::new(cfg());
        let timed =
            run_decoded_kernel_verified(&mut sim, &decoded, token, &a, &b, &layout).unwrap();
        for shard_size in [7u64, 1000, u64::MAX] {
            let (sharded, shards) = run_decoded_kernel_sharded(
                &mut sim,
                &decoded,
                Some(token),
                &a,
                &b,
                &layout,
                shard_size,
            )
            .unwrap();
            assert_eq!(
                sharded.report.instructions, timed.report.instructions,
                "shard size {shard_size}"
            );
            assert_eq!(sharded.report.counts, timed.report.counts);
            assert_eq!(sharded.report.v2s_syncs, timed.report.v2s_syncs);
            assert_eq!(sharded.report.cycles, 0, "counting engine has no clock");
            assert_eq!(sharded.c.as_slice(), timed.c.as_slice());
            if shard_size == u64::MAX {
                assert_eq!(shards, 1, "one shard covers the whole run");
            } else {
                assert!(shards >= 1);
            }
        }
        // The fully checked (tokenless) sharded path agrees too.
        let (checked, _) =
            run_decoded_kernel_sharded(&mut sim, &decoded, None, &a, &b, &layout, 777).unwrap();
        assert_eq!(checked.c.as_slice(), timed.c.as_slice());
        assert_eq!(checked.report.instructions, timed.report.instructions);
    }

    #[test]
    fn shape_mismatch_detected() {
        let (a, b, layout) = fixture(3, 16, 8, NmPattern::P1_4, 50);
        let wrong_b = DenseMatrix::random(16, 9, 1);
        let p = indexmac::build(&layout, &KernelParams::default()).unwrap();
        assert!(matches!(
            run_kernel(&p, &a, &wrong_b, &layout, &cfg()),
            Err(VerifyError::ShapeMismatch)
        ));
        let _ = b;
    }
}
