//! **Algorithm 2** — "Row-Wise-SpMM": row-wise vector sparse x dense
//! matrix multiplication on the structured `values`/`col_idx` format.
//!
//! Per non-zero slot the kernel executes (paper lines 7–12):
//!
//! ```text
//! vmv.x.s   t, v_colidx      # row address of B (pre-adjusted, line 5/7)
//! vle32.v   v_b, (t)         # load the selected B row slice   (line 8)
//! vfmv.f.s  f, v_values      # value to a scalar register      (line 9)
//! vfmacc.vf v_c, f, v_b      # scalar-vector mul-acc           (line 10)
//! vslide1down v_values       #                                 (line 11)
//! vslide1down v_colidx       #                                 (line 12)
//! ```
//!
//! This is the state-of-the-art baseline the paper speeds up: note the
//! per-nonzero **vector load from memory** and the *two* cross-domain
//! moves. Supports the three dataflows of Section IV-A.

use crate::dataflow::Dataflow;
use crate::emit::{
    bslice_vreg, c_addr_xreg, c_vreg, colidx_vreg, emit_loop_step, emit_prologue, emit_vload_abs,
    finish, require_f32, require_ungrouped, scratch_xreg, value_freg, values_vreg, B_COLTILE_BASE,
    CTR_COLTILES, CTR_KTILES, CTR_NNZ, CTR_ROWS, MAX_UNROLL,
};
use crate::error::KernelError;
use crate::layout::GemmLayout;
use crate::KernelParams;
use indexmac_isa::{Instruction, Program, ProgramBuilder, XReg};

/// Builds the Row-Wise-SpMM program for `layout`.
///
/// # Errors
///
/// Returns [`KernelError::BadUnroll`] when `params.unroll` is outside
/// `1..=4`.
pub fn build(layout: &GemmLayout, params: &KernelParams) -> Result<Program, KernelError> {
    require_ungrouped(layout)?;
    require_f32(layout)?;
    if params.unroll == 0 || params.unroll > MAX_UNROLL {
        return Err(KernelError::BadUnroll {
            unroll: params.unroll,
            max: MAX_UNROLL,
        });
    }
    let mut b = ProgramBuilder::new();
    emit_prologue(&mut b, layout.vl, layout.row_stride_bytes);
    match params.dataflow {
        Dataflow::BStationary => emit_b_stationary(&mut b, layout, params.unroll),
        Dataflow::AStationary => emit_a_stationary(&mut b, layout, params.unroll),
        Dataflow::CStationary => emit_c_stationary(&mut b, layout, params.unroll),
    }
    b.halt();
    Ok(finish(b, layout))
}

fn row_groups(rows: usize, unroll: usize) -> Vec<(usize, usize)> {
    (0..rows.div_ceil(unroll))
        .map(|g| {
            let row0 = g * unroll;
            (row0, unroll.min(rows - row0))
        })
        .collect()
}

/// Loads the per-row metadata (`values`, address-adjusted `col_idx`) and
/// optionally the C row slices for one unrolled row group.
fn emit_group_loads(
    b: &mut ProgramBuilder,
    layout: &GemmLayout,
    row0: usize,
    u_eff: usize,
    kt: usize,
    ct: usize,
    setup_c: bool,
) {
    for r in 0..u_eff {
        let row = row0 + r;
        if setup_c {
            b.li(c_addr_xreg(r), layout.c_addr(row, ct * layout.vl) as i64);
        }
        emit_vload_abs(b, values_vreg(r), layout.values_addr(row, kt));
        emit_vload_abs(b, colidx_vreg(r), layout.colidx_offsets_addr(row, kt));
        // Paper Algorithm 2 line 5: col_idx += B address (tile-adjusted).
        b.push(Instruction::VaddVx {
            vd: colidx_vreg(r),
            vs2: colidx_vreg(r),
            rs1: B_COLTILE_BASE,
        });
        if setup_c {
            b.push(Instruction::Vle32 {
                vd: c_vreg(r),
                rs1: c_addr_xreg(r),
            });
        }
    }
}

/// The per-nonzero inner loop (paper lines 7–12) for one row group.
fn emit_inner_loop(b: &mut ProgramBuilder, layout: &GemmLayout, u_eff: usize) {
    b.li(CTR_NNZ, layout.slots_per_tile as i64);
    for _q in 0..layout.slots_per_tile {
        for r in 0..u_eff {
            b.push(Instruction::VmvXs {
                rd: scratch_xreg(r),
                vs2: colidx_vreg(r),
            });
        }
        for r in 0..u_eff {
            b.push(Instruction::Vle32 {
                vd: bslice_vreg(r),
                rs1: scratch_xreg(r),
            });
        }
        for r in 0..u_eff {
            b.push(Instruction::VfmvFs {
                fd: value_freg(r),
                vs2: values_vreg(r),
            });
        }
        for r in 0..u_eff {
            b.push(Instruction::VfmaccVf {
                vd: c_vreg(r),
                fs1: value_freg(r),
                vs2: bslice_vreg(r),
            });
        }
        for r in 0..u_eff {
            b.push(Instruction::Vslide1downVx {
                vd: values_vreg(r),
                vs2: values_vreg(r),
                rs1: XReg::ZERO,
            });
            b.push(Instruction::Vslide1downVx {
                vd: colidx_vreg(r),
                vs2: colidx_vreg(r),
                rs1: XReg::ZERO,
            });
        }
        emit_loop_step(b, CTR_NNZ);
    }
}

fn emit_group_stores(b: &mut ProgramBuilder, u_eff: usize) {
    for r in 0..u_eff {
        b.push(Instruction::Vse32 {
            vs3: c_vreg(r),
            rs1: c_addr_xreg(r),
        });
    }
}

fn emit_coltile_base(b: &mut ProgramBuilder, layout: &GemmLayout, ct: usize) {
    b.li(
        B_COLTILE_BASE,
        (layout.b_base + (ct * layout.vl * 4) as u64) as i64,
    );
}

fn emit_b_stationary(b: &mut ProgramBuilder, layout: &GemmLayout, unroll: usize) {
    let groups = row_groups(layout.dims.rows, unroll);
    b.li(CTR_KTILES, layout.num_ktiles as i64);
    for kt in 0..layout.num_ktiles {
        b.li(CTR_COLTILES, layout.num_coltiles as i64);
        for ct in 0..layout.num_coltiles {
            emit_coltile_base(b, layout, ct);
            b.li(CTR_ROWS, groups.len() as i64);
            for &(row0, u_eff) in &groups {
                emit_group_loads(b, layout, row0, u_eff, kt, ct, true);
                emit_inner_loop(b, layout, u_eff);
                emit_group_stores(b, u_eff);
                emit_loop_step(b, CTR_ROWS);
            }
            emit_loop_step(b, CTR_COLTILES);
        }
        emit_loop_step(b, CTR_KTILES);
    }
}

fn emit_a_stationary(b: &mut ProgramBuilder, layout: &GemmLayout, unroll: usize) {
    let groups = row_groups(layout.dims.rows, unroll);
    b.li(CTR_ROWS, groups.len() as i64);
    for &(row0, u_eff) in &groups {
        b.li(CTR_KTILES, layout.num_ktiles as i64);
        for kt in 0..layout.num_ktiles {
            b.li(CTR_COLTILES, layout.num_coltiles as i64);
            for ct in 0..layout.num_coltiles {
                emit_coltile_base(b, layout, ct);
                emit_group_loads(b, layout, row0, u_eff, kt, ct, true);
                emit_inner_loop(b, layout, u_eff);
                emit_group_stores(b, u_eff);
                emit_loop_step(b, CTR_COLTILES);
            }
            emit_loop_step(b, CTR_KTILES);
        }
        emit_loop_step(b, CTR_ROWS);
    }
}

fn emit_c_stationary(b: &mut ProgramBuilder, layout: &GemmLayout, unroll: usize) {
    let groups = row_groups(layout.dims.rows, unroll);
    b.li(CTR_ROWS, groups.len() as i64);
    for &(row0, u_eff) in &groups {
        b.li(CTR_COLTILES, layout.num_coltiles as i64);
        for ct in 0..layout.num_coltiles {
            // C row slices stay resident across the whole k dimension.
            for r in 0..u_eff {
                b.li(
                    c_addr_xreg(r),
                    layout.c_addr(row0 + r, ct * layout.vl) as i64,
                );
                b.push(Instruction::Vle32 {
                    vd: c_vreg(r),
                    rs1: c_addr_xreg(r),
                });
            }
            b.li(CTR_KTILES, layout.num_ktiles as i64);
            for kt in 0..layout.num_ktiles {
                emit_coltile_base(b, layout, ct);
                emit_group_loads(b, layout, row0, u_eff, kt, ct, false);
                emit_inner_loop(b, layout, u_eff);
                emit_loop_step(b, CTR_KTILES);
            }
            emit_group_stores(b, u_eff);
            emit_loop_step(b, CTR_COLTILES);
        }
        emit_loop_step(b, CTR_ROWS);
    }
}

/// Static count of per-nonzero B-row vector loads in the built program —
/// used by tests to confirm the baseline's traffic profile.
pub fn count_b_loads(program: &Program) -> usize {
    program.count(|i| {
        matches!(i, Instruction::Vle32 { rs1, .. }
            if [XReg::T0, XReg::T1, XReg::T2, XReg::T3].contains(rs1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_sparse::{prune, NmPattern};
    use indexmac_vpu::SimConfig;

    fn small_layout(pattern: NmPattern) -> GemmLayout {
        let a = prune::random_structured(6, 32, pattern, 11);
        GemmLayout::plan(&a, 20, &SimConfig::table_i(), 16).unwrap()
    }

    #[test]
    fn builds_all_dataflows() {
        let layout = small_layout(NmPattern::P1_4);
        for df in Dataflow::ALL {
            let p = build(
                &layout,
                &KernelParams {
                    unroll: 4,
                    dataflow: df,
                },
            )
            .unwrap();
            assert!(p.len() > 50, "{df} kernel suspiciously small");
            assert_eq!(p.fetch(p.len() - 1), Some(&Instruction::Halt));
        }
    }

    #[test]
    fn rejects_bad_unroll() {
        let layout = small_layout(NmPattern::P1_4);
        assert!(matches!(
            build(
                &layout,
                &KernelParams {
                    unroll: 0,
                    dataflow: Dataflow::BStationary
                }
            ),
            Err(KernelError::BadUnroll { .. })
        ));
        assert!(matches!(
            build(
                &layout,
                &KernelParams {
                    unroll: 5,
                    dataflow: Dataflow::BStationary
                }
            ),
            Err(KernelError::BadUnroll { .. })
        ));
    }

    #[test]
    fn per_nonzero_loads_present() {
        let layout = small_layout(NmPattern::P2_4);
        let p = build(&layout, &KernelParams::default()).unwrap();
        // One B load per (group-row, slot, ktile, coltile).
        let groups: usize = 2; // 6 rows / 4 -> groups of 4 and 2
        let _ = groups;
        let expected: usize =
            layout.num_ktiles * layout.num_coltiles * layout.slots_per_tile * layout.dims.rows;
        assert_eq!(count_b_loads(&p), expected);
    }

    #[test]
    fn c_stationary_has_fewer_stores() {
        let layout = small_layout(NmPattern::P1_4);
        let b_st = build(
            &layout,
            &KernelParams {
                unroll: 4,
                dataflow: Dataflow::BStationary,
            },
        )
        .unwrap();
        let c_st = build(
            &layout,
            &KernelParams {
                unroll: 4,
                dataflow: Dataflow::CStationary,
            },
        )
        .unwrap();
        let stores = |p: &Program| p.count(|i| matches!(i, Instruction::Vse32 { .. }));
        assert!(stores(&c_st) < stores(&b_st));
        // B-stationary stores once per (row, ktile, coltile); C-stationary
        // once per (row, coltile).
        assert_eq!(stores(&c_st) * layout.num_ktiles, stores(&b_st));
    }

    #[test]
    fn unroll_reduces_loop_control() {
        let layout = small_layout(NmPattern::P1_4);
        let u1 = build(
            &layout,
            &KernelParams {
                unroll: 1,
                dataflow: Dataflow::BStationary,
            },
        )
        .unwrap();
        let u4 = build(
            &layout,
            &KernelParams {
                unroll: 4,
                dataflow: Dataflow::BStationary,
            },
        )
        .unwrap();
        let branches = |p: &Program| p.count(|i| matches!(i, Instruction::Bne { .. }));
        assert!(
            branches(&u4) < branches(&u1),
            "x4 unrolling must amortise loop control ({} vs {})",
            branches(&u4),
            branches(&u1)
        );
    }
}
