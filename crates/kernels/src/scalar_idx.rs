//! Extension ablation: a `vindexmac` kernel whose per-nonzero metadata
//! comes from **scalar loads** instead of `vmv.x.s` + `vslide1down`.
//!
//! The paper's Algorithm 3 walks `values`/`col_idx` inside the vector
//! register file, paying one vector-to-scalar synchronisation per
//! non-zero. An alternative micro-architecture-friendly formulation
//! fetches the index with an `lw` (L1-resident metadata) and injects the
//! value via `vmv.s.x`, avoiding the engine-to-core round trip entirely:
//!
//! ```text
//! lw        t, idx_off(base)     # vreg number from L1
//! lw        a, val_off(base)     # value bits from L1
//! vmv.s.x   v_val, a             # value into element 0
//! vindexmac.vx v_c, v_val, t
//! ```
//!
//! The `ablate_scalar_idx` bench quantifies how much of the remaining
//! Algorithm 3 time is cross-domain synchronisation.

use crate::emit::{
    c_addr_xreg, c_vreg, emit_loop_step, emit_prologue, finish, require_f32, require_ungrouped,
    scratch_xreg, values_vreg, ADDR_SCRATCH, CTR_COLTILES, CTR_KTILES, CTR_NNZ, CTR_ROWS,
    MAX_UNROLL, ROW_STRIDE,
};
use crate::error::KernelError;
use crate::layout::GemmLayout;
use crate::KernelParams;
use indexmac_isa::{Instruction, Program, ProgramBuilder, VReg, XReg};

/// Scalar registers holding loaded value bits, one per unrolled row.
fn value_xreg(r: usize) -> XReg {
    [XReg::A5, XReg::A6, XReg::A7, XReg::S7][r]
}

/// Builds the scalar-indexed vindexmac kernel.
///
/// # Errors
///
/// Returns [`KernelError::BadUnroll`] when `params.unroll` is outside
/// `1..=4`.
pub fn build(layout: &GemmLayout, params: &KernelParams) -> Result<Program, KernelError> {
    require_ungrouped(layout)?;
    require_f32(layout)?;
    if params.unroll == 0 || params.unroll > MAX_UNROLL {
        return Err(KernelError::BadUnroll {
            unroll: params.unroll,
            max: MAX_UNROLL,
        });
    }
    let unroll = params.unroll;
    let mut b = ProgramBuilder::new();
    emit_prologue(&mut b, layout.vl, layout.row_stride_bytes);

    let groups: Vec<(usize, usize)> = (0..layout.dims.rows.div_ceil(unroll))
        .map(|g| {
            let row0 = g * unroll;
            (row0, unroll.min(layout.dims.rows - row0))
        })
        .collect();

    b.li(CTR_KTILES, layout.num_ktiles as i64);
    for kt in 0..layout.num_ktiles {
        b.li(CTR_COLTILES, layout.num_coltiles as i64);
        for ct in 0..layout.num_coltiles {
            // Tile preload identical to Algorithm 3.
            b.li(
                ADDR_SCRATCH,
                layout.b_addr(kt * layout.tile_rows, ct * layout.vl) as i64,
            );
            for l in 0..layout.tile_rows {
                b.push(Instruction::Vle32 {
                    vd: VReg::new(layout.tile_vreg_base + l as u8),
                    rs1: ADDR_SCRATCH,
                });
                if l + 1 < layout.tile_rows {
                    b.add(ADDR_SCRATCH, ADDR_SCRATCH, ROW_STRIDE);
                }
            }
            b.li(CTR_ROWS, groups.len() as i64);
            for &(row0, u_eff) in &groups {
                for r in 0..u_eff {
                    let row = row0 + r;
                    b.li(c_addr_xreg(r), layout.c_addr(row, ct * layout.vl) as i64);
                    b.push(Instruction::Vle32 {
                        vd: c_vreg(r),
                        rs1: c_addr_xreg(r),
                    });
                }
                b.li(CTR_NNZ, layout.slots_per_tile as i64);
                for q in 0..layout.slots_per_tile {
                    // Scalar fetch of index and value bits (L1 path).
                    for r in 0..u_eff {
                        let row = row0 + r;
                        b.li(
                            ADDR_SCRATCH,
                            (layout.colidx_vregs_addr(row, kt) + (q * 4) as u64) as i64,
                        );
                        b.push(Instruction::Lw {
                            rd: scratch_xreg(r),
                            rs1: ADDR_SCRATCH,
                            imm: 0,
                        });
                        b.li(
                            ADDR_SCRATCH,
                            (layout.values_addr(row, kt) + (q * 4) as u64) as i64,
                        );
                        b.push(Instruction::Lw {
                            rd: value_xreg(r),
                            rs1: ADDR_SCRATCH,
                            imm: 0,
                        });
                    }
                    for r in 0..u_eff {
                        b.push(Instruction::VmvSx {
                            vd: values_vreg(r),
                            rs1: value_xreg(r),
                        });
                    }
                    for r in 0..u_eff {
                        b.push(Instruction::VindexmacVx {
                            vd: c_vreg(r),
                            vs2: values_vreg(r),
                            rs: scratch_xreg(r),
                        });
                    }
                    emit_loop_step(&mut b, CTR_NNZ);
                }
                for r in 0..u_eff {
                    b.push(Instruction::Vse32 {
                        vs3: c_vreg(r),
                        rs1: c_addr_xreg(r),
                    });
                }
                emit_loop_step(&mut b, CTR_ROWS);
            }
            emit_loop_step(&mut b, CTR_COLTILES);
        }
        emit_loop_step(&mut b, CTR_KTILES);
    }
    b.halt();
    Ok(finish(b, layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_sparse::{prune, NmPattern};
    use indexmac_vpu::SimConfig;

    #[test]
    fn no_cross_domain_moves() {
        let a = prune::random_structured(4, 32, NmPattern::P1_4, 8);
        let l = GemmLayout::plan(&a, 16, &SimConfig::table_i(), 16).unwrap();
        let p = build(&l, &KernelParams::default()).unwrap();
        assert_eq!(p.count(|i| matches!(i, Instruction::VmvXs { .. })), 0);
        assert_eq!(
            p.count(|i| matches!(i, Instruction::Vslide1downVx { .. })),
            0
        );
        assert!(p.count(|i| matches!(i, Instruction::Lw { .. })) > 0);
        assert!(p.count(|i| matches!(i, Instruction::VindexmacVx { .. })) > 0);
    }

    #[test]
    fn rejects_bad_unroll() {
        let a = prune::random_structured(2, 16, NmPattern::P1_4, 8);
        let l = GemmLayout::plan(&a, 8, &SimConfig::table_i(), 16).unwrap();
        assert!(build(
            &l,
            &KernelParams {
                unroll: 7,
                ..Default::default()
            }
        )
        .is_err());
    }
}
