//! Kernel generators for the IndexMAC reproduction: the paper's three
//! matrix-multiplication algorithms compiled to instruction streams for
//! the simulated decoupled vector processor.
//!
//! * [`dense`] — **Algorithm 1**: dense row-wise vectorized matmul.
//! * [`rowwise`] — **Algorithm 2** ("Row-Wise-SpMM"): row-wise sparse x
//!   dense using the structured `values`/`col_idx` format; per non-zero
//!   it loads the selected B row from memory. Supports A-, B- and
//!   C-stationary dataflows (Section IV-A of the paper).
//! * [`indexmac`] — **Algorithm 3** ("Proposed"): pre-loads an `L x VL`
//!   tile of B into the vector register file and replaces the per-nonzero
//!   vector load + value move + MAC with one index move + `vindexmac.vx`.
//! * [`indexmac2`] — the **second-generation** kernel (after arXiv
//!   2501.10189): `vindexmac.vvi` consumes the column index directly
//!   from the vector register file, collapsing the per-nonzero inner
//!   loop to a single instruction and enabling register-grouped
//!   (`LMUL ∈ {1,2,4}`) B tiles.
//! * [`scalar_idx`] — an extension variant that fetches per-nonzero
//!   metadata with scalar loads instead of `vmv.x.s` + slides (ablation).
//!
//! All kernels share one [`layout::GemmLayout`]: a planned placement of
//! the operand arrays in simulated memory, including the two
//! pre-processed index arrays (byte offsets for Algorithm 2, VRF register
//! numbers for Algorithm 3) that the paper's format conversion produces
//! offline.
//!
//! # Example
//!
//! ```
//! use indexmac_kernels::{GemmLayout, KernelParams, rowwise, indexmac, verify};
//! use indexmac_sparse::{prune, DenseMatrix, NmPattern};
//! use indexmac_vpu::SimConfig;
//!
//! let cfg = SimConfig::table_i();
//! let a = prune::random_structured(8, 32, NmPattern::P1_4, 1);
//! let b = DenseMatrix::random(32, 16, 2);
//! let layout = GemmLayout::plan(&a, b.cols(), &cfg, 16)?;
//! let params = KernelParams::default();
//!
//! let baseline = verify::run_kernel(&rowwise::build(&layout, &params)?, &a, &b, &layout, &cfg)?;
//! let proposed = verify::run_kernel(&indexmac::build(&layout, &params)?, &a, &b, &layout, &cfg)?;
//! assert!(proposed.report.mem.total_accesses() < baseline.report.mem.total_accesses());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod dataflow;
pub mod dense;
pub mod emit;
pub mod error;
pub mod indexmac;
pub mod indexmac2;
pub mod layout;
pub mod rowwise;
pub mod scalar_idx;
pub mod verify;

pub use dataflow::Dataflow;
pub use error::KernelError;
pub use indexmac_sparse::ElemType;
pub use layout::{GemmDims, GemmLayout};

/// Tunables shared by every kernel builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Output rows produced per inner iteration (the paper applies x4
    /// loop unrolling to both kernels).
    pub unroll: usize,
    /// Loop order / operand residency (Algorithm 2 only; Algorithm 3 is
    /// B-stationary by construction).
    pub dataflow: Dataflow,
}

impl Default for KernelParams {
    fn default() -> Self {
        Self {
            unroll: 4,
            dataflow: Dataflow::BStationary,
        }
    }
}
